"""pytest-benchmark wrapper for Figure 12 (watermark interval / epoch size).

Runs the experiment once at the ``small`` scale (seconds of wall clock) and
records the wall-clock time of the whole figure regeneration.  Run
``python -m repro.bench --figure fig12 --scale paper`` for the full-size sweep.
"""

import pytest

from repro.bench import ALL_EXPERIMENTS, SCALES


@pytest.mark.benchmark(group="durability")
def test_fig12_interval(benchmark):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["fig12"], args=(SCALES["small"],), iterations=1, rounds=1
    )
    assert result  # the experiment returns a non-empty result dictionary
