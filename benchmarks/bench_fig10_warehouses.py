"""pytest-benchmark wrapper for Figure 10 (impact of warehouses, TPC-C).

Runs the experiment once at the ``small`` scale (seconds of wall clock) and
records the wall-clock time of the whole figure regeneration.  Run
``python -m repro.bench --figure fig10 --scale paper`` for the full-size sweep.
"""

import pytest

from repro.bench import ALL_EXPERIMENTS, SCALES


@pytest.mark.benchmark(group="tpcc-sweeps")
def test_fig10_warehouses(benchmark):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["fig10"], args=(SCALES["small"],), iterations=1, rounds=1
    )
    assert result  # the experiment returns a non-empty result dictionary
