"""pytest-benchmark wrapper for Figure 5 (TPC-C overall performance).

Runs the experiment once at the ``small`` scale (seconds of wall clock) and
records the wall-clock time of the whole figure regeneration.  Run
``python -m repro.bench --figure fig05 --scale paper`` for the full-size sweep.
"""

import pytest

from repro.bench import ALL_EXPERIMENTS, SCALES


@pytest.mark.benchmark(group="overall")
def test_fig05_tpcc_overall(benchmark):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["fig05"], args=(SCALES["small"],), iterations=1, rounds=1
    )
    assert result  # the experiment returns a non-empty result dictionary
