"""pytest-benchmark wrapper for Figure 13 (watermark/epoch lagging).

Runs the experiment once at the ``small`` scale (seconds of wall clock) and
records the wall-clock time of the whole figure regeneration.  Run
``python -m repro.bench --figure fig13 --scale paper`` for the full-size sweep.
"""

import pytest

from repro.bench import ALL_EXPERIMENTS, SCALES


@pytest.mark.benchmark(group="durability")
def test_fig13_lagging(benchmark):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["fig13"], args=(SCALES["small"],), iterations=1, rounds=1
    )
    assert result  # the experiment returns a non-empty result dictionary
