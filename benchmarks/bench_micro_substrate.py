"""Micro-benchmarks of the substrate the protocols run on.

These are not paper figures; they guard against performance regressions in
the discrete-event engine, the lock manager and the Zipf generator, all of
which dominate the wall-clock cost of regenerating the figures.
"""

import pytest

from repro.sim.engine import Environment
from repro.sim.randgen import DeterministicRandom, ZipfGenerator
from repro.storage.lock import LockManager, LockMode, LockPolicy
from repro.storage.record import Record
from repro.txn.transaction import TxnId


@pytest.mark.benchmark(group="micro")
def test_engine_timeout_throughput(benchmark):
    """Schedule and drain 20k timeout events."""

    def run():
        env = Environment()

        def proc():
            for _ in range(20_000):
                yield env.timeout(1.0)

        env.process(proc())
        env.run(until=30_000)
        return env.now

    assert benchmark(run) > 0


@pytest.mark.benchmark(group="micro")
def test_lock_manager_grant_release(benchmark):
    """Uncontended exclusive grant + release cycles."""
    env = Environment()
    manager = LockManager(env, LockPolicy.WAIT_DIE)
    records = [Record(i, {"v": 0}) for i in range(64)]

    def run():
        for sequence in range(2_000):
            tid = TxnId(sequence, 0)
            for record in records[:8]:
                assert manager.try_acquire(tid, record, LockMode.EXCLUSIVE)
            manager.release_all(tid)
        return manager.stats["grants"]

    assert benchmark(run) > 0


@pytest.mark.benchmark(group="micro")
def test_zipf_generation(benchmark):
    """Draw 100k Zipf keys at the default skew."""
    rng = DeterministicRandom(7)
    zipf = ZipfGenerator(100_000, 0.6, rng)

    def run():
        return sum(zipf.next() for _ in range(100_000))

    assert benchmark(run) >= 0


@pytest.mark.benchmark(group="micro")
def test_zipf_generation_million_keys(benchmark):
    """Draw 50k Zipf keys from a 1M-key population (gate: ``zipf_1m``)."""
    from repro.bench.micro import bench_zipf_1m

    benchmark(bench_zipf_1m, 50_000)


@pytest.mark.benchmark(group="micro")
def test_engine_zero_delay_dispatch(benchmark):
    """Drain 100k immediate succeed() chains through the fast-dispatch lane.

    Shares its body with ``scripts/bench_gate.py`` (``engine_dispatch``):
    process kick-offs, lock grants and local completions all take this path.
    """
    from repro.bench.micro import bench_engine_dispatch

    benchmark(bench_engine_dispatch, 100_000)


@pytest.mark.benchmark(group="micro")
def test_process_spawn_throughput(benchmark):
    """Spawn-and-await 20k trivial child processes (gate: ``process_spawn``)."""
    from repro.bench.micro import bench_process_spawn

    benchmark(bench_process_spawn, 20_000)


@pytest.mark.benchmark(group="micro")
def test_network_rpc_roundtrips(benchmark):
    """20k local RPC round trips with a plain handler (gate: ``network_rpc``)."""
    from repro.bench.micro import bench_network_rpc

    benchmark(bench_network_rpc, 20_000)


@pytest.mark.benchmark(group="micro")
def test_network_one_way_sends(benchmark):
    """50k one-way sends with a plain handler (gate: ``network_send``)."""
    from repro.bench.micro import bench_network_send

    benchmark(bench_network_send, 50_000)


@pytest.mark.benchmark(group="micro")
def test_ycsb_end_to_end_small(benchmark):
    """A complete (tiny) fixed-seed YCSB cluster run through the full stack."""
    from repro.cluster.cluster import Cluster
    from repro.cluster.config import SystemConfig
    from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

    def run():
        config = SystemConfig.for_protocol(
            "primo",
            n_partitions=2,
            workers_per_partition=2,
            inflight_per_worker=1,
            duration_us=10_000.0,
            warmup_us=2_000.0,
            epoch_length_us=2_000.0,
            seed=7,
        )
        workload = YCSBWorkload(
            YCSBConfig(keys_per_partition=2_000, zipf_theta=0.6, distributed_pct=0.2)
        )
        result = Cluster(config, workload).run()
        return result.metrics.committed

    assert benchmark(run) > 0
