"""Micro-benchmarks of the substrate the protocols run on.

These are not paper figures; they guard against performance regressions in
the discrete-event engine, the lock manager and the Zipf generator, all of
which dominate the wall-clock cost of regenerating the figures.
"""

import pytest

from repro.sim.engine import Environment
from repro.sim.randgen import DeterministicRandom, ZipfGenerator
from repro.storage.lock import LockManager, LockMode, LockPolicy
from repro.storage.record import Record
from repro.txn.transaction import TxnId


@pytest.mark.benchmark(group="micro")
def test_engine_timeout_throughput(benchmark):
    """Schedule and drain 20k timeout events."""

    def run():
        env = Environment()

        def proc():
            for _ in range(20_000):
                yield env.timeout(1.0)

        env.process(proc())
        env.run(until=30_000)
        return env.now

    assert benchmark(run) > 0


@pytest.mark.benchmark(group="micro")
def test_lock_manager_grant_release(benchmark):
    """Uncontended exclusive grant + release cycles."""
    env = Environment()
    manager = LockManager(env, LockPolicy.WAIT_DIE)
    records = [Record(i, {"v": 0}) for i in range(64)]

    def run():
        for sequence in range(2_000):
            tid = TxnId(sequence, 0)
            for record in records[:8]:
                assert manager.try_acquire(tid, record, LockMode.EXCLUSIVE)
            manager.release_all(tid)
        return manager.stats["grants"]

    assert benchmark(run) > 0


@pytest.mark.benchmark(group="micro")
def test_zipf_generation(benchmark):
    """Draw 100k Zipf keys at the default skew."""
    rng = DeterministicRandom(7)
    zipf = ZipfGenerator(100_000, 0.6, rng)

    def run():
        return sum(zipf.next() for _ in range(100_000))

    assert benchmark(run) >= 0
