"""pytest-benchmark wrapper for Figure 14 (scalability).

Runs the experiment once at the ``small`` scale (seconds of wall clock) and
records the wall-clock time of the whole figure regeneration.  Run
``python -m repro.bench --figure fig14 --scale paper`` for the full-size sweep.
"""

import pytest

from repro.bench import ALL_EXPERIMENTS, SCALES


@pytest.mark.benchmark(group="scalability")
def test_fig14_scalability(benchmark):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["fig14"], args=(SCALES["small"],), iterations=1, rounds=1
    )
    assert result  # the experiment returns a non-empty result dictionary
