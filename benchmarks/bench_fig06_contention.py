"""pytest-benchmark wrapper for Figure 6 (impact of contention).

Runs the experiment once at the ``small`` scale (seconds of wall clock) and
records the wall-clock time of the whole figure regeneration.  Run
``python -m repro.bench --figure fig06 --scale paper`` for the full-size sweep.
"""

import pytest

from repro.bench import ALL_EXPERIMENTS, SCALES


@pytest.mark.benchmark(group="ycsb-sweeps")
def test_fig06_contention(benchmark):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["fig06"], args=(SCALES["small"],), iterations=1, rounds=1
    )
    assert result  # the experiment returns a non-empty result dictionary
