"""pytest-benchmark wrapper for Appendix A (analytical model).

Runs the experiment once at the ``small`` scale (seconds of wall clock) and
records the wall-clock time of the whole figure regeneration.  Run
``python -m repro.bench --figure appendix --scale paper`` for the full-size sweep.
"""

import pytest

from repro.bench import ALL_EXPERIMENTS, SCALES


@pytest.mark.benchmark(group="analysis")
def test_appendix_analysis(benchmark):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["appendix"], args=(SCALES["small"],), iterations=1, rounds=1
    )
    assert result  # the experiment returns a non-empty result dictionary
