"""pytest-benchmark wrapper for Figure 9 (impact of blind writes).

Runs the experiment once at the ``small`` scale (seconds of wall clock) and
records the wall-clock time of the whole figure regeneration.  Run
``python -m repro.bench --figure fig09 --scale paper`` for the full-size sweep.
"""

import pytest

from repro.bench import ALL_EXPERIMENTS, SCALES


@pytest.mark.benchmark(group="ycsb-sweeps")
def test_fig09_blind_writes(benchmark):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["fig09"], args=(SCALES["small"],), iterations=1, rounds=1
    )
    assert result  # the experiment returns a non-empty result dictionary
