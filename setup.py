"""Packaging entry point: pure-Python package + optional compiled kernel.

The library itself is dependency-free pure Python; the one native piece is
the optional scheduler kernel ``repro.sim._ckernel`` (see ``repro/sim/
engine.py`` for how it is selected at import).  The extension is built
best-effort: a missing compiler or failed compile degrades to the pure-Python
reference kernel instead of failing the install.  ``python
scripts/build_ckernel.py`` builds it in place for source checkouts.
"""

import re
from pathlib import Path

from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext
from setuptools.errors import CCompilerError, ExecError, PlatformError

REPO_ROOT = Path(__file__).resolve().parent


def _version() -> str:
    text = (REPO_ROOT / "src" / "repro" / "__init__.py").read_text(encoding="utf-8")
    return re.search(r'^__version__ = "([^"]+)"', text, re.MULTILINE).group(1)


class optional_build_ext(build_ext):
    """Build the C kernel if we can; fall back to pure Python if we can't."""

    _BUILD_ERRORS = (CCompilerError, ExecError, PlatformError, OSError)

    def run(self):
        try:
            super().run()
        except self._BUILD_ERRORS as exc:
            self._warn(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except self._BUILD_ERRORS as exc:
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        print(
            "WARNING: building repro.sim._ckernel failed; the pure-Python "
            f"scheduler kernel will be used instead ({exc})"
        )


setup(
    name="repro-primo",
    version=_version(),
    package_dir={"": "src"},
    packages=find_packages("src"),
    ext_modules=[
        Extension(
            "repro.sim._ckernel",
            sources=["src/repro/sim/_ckernel.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)
