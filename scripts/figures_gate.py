#!/usr/bin/env python
"""Figure-orchestrator gate: cached, pooled and inline cells must agree.

The orchestrator (``repro.bench.orchestrator``) promises that a cell returns
bit-identical commit/abort counts whether it is simulated inline, in a pool
worker, or served from the on-disk cache — and that a warm cache executes
zero new simulations.  This gate proves both on a couple of representative
figures:

1. plan the cells of the chosen figures at the chosen scale;
2. run them **inline** (``jobs=1``) with no cache — the reference results;
3. run them through a **process pool** (``--jobs``, default 2) into a fresh
   cache directory — every cell must match the reference exactly and the
   sweep must report ``executed == unique cells, cache_hits == 0``;
4. run them again against the now-**warm cache** — the sweep must report
   ``executed == 0`` and every result must still match the reference.

Exit status is non-zero on any mismatch.  Run it after touching the bench,
cluster or sim layers; CI runs it in the ``figures-smoke`` job.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.experiments import FIGURES  # noqa: E402
from repro.bench.orchestrator import ResultCache, run_cells  # noqa: E402
from repro.bench.runner import SCALES, TINY_SCALE  # noqa: E402

#: Small but representative default: a knob sweep (blind writes) and a
#: durability-scheme matrix, covering workload and config overrides.
DEFAULT_FIGURES = ("fig09", "fig11")

#: Tiny scale so the gate finishes in well under a minute.
GATE_SCALE = TINY_SCALE


def fingerprint(result) -> tuple:
    """The fields that must be bit-identical across execution paths."""
    return (
        result.committed,
        result.aborted,
        result.metrics.crash_aborted,
        result.network_messages,
        tuple(result.metrics.latency.samples),
        tuple(sorted(result.abort_reasons.items())),
    )


def compare(reference: dict, candidate: dict, label: str) -> int:
    failures = 0
    for cell, ref in reference.items():
        got = candidate[cell]
        if fingerprint(ref) != fingerprint(got):
            failures += 1
            print(
                f"GATE FAIL [{label}] {cell.cell_id}: "
                f"committed/aborted {got.committed}/{got.aborted} "
                f"!= reference {ref.committed}/{ref.aborted} "
                "(or latency/message streams differ)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--figures", nargs="+", default=list(DEFAULT_FIGURES),
        choices=sorted(FIGURES), metavar="FIG",
        help=f"figures to check (default: {' '.join(DEFAULT_FIGURES)})",
    )
    parser.add_argument(
        "--scale", default="gate", choices=["gate"] + sorted(SCALES),
        help="bench scale (default: a tiny gate-only scale)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="pool width for the parallel pass (default: 2)",
    )
    args = parser.parse_args(argv)
    scale = GATE_SCALE if args.scale == "gate" else SCALES[args.scale]

    cells = [
        cell for name in args.figures for cell in FIGURES[name].plan(scale)
    ]
    unique = len({cell.cache_key() for cell in cells})
    print(
        f"figures gate: {len(cells)} cells ({unique} unique) from "
        f"{', '.join(args.figures)} at scale {scale.name!r}"
    )

    start = time.perf_counter()
    inline = run_cells(cells, jobs=1, cache=None)
    inline_s = time.perf_counter() - start
    print(f"  inline pass: {inline.executed} simulations in {inline_s:.1f}s")

    failures = 0
    with tempfile.TemporaryDirectory(prefix="figures-gate-") as cache_dir:
        cache = ResultCache(cache_dir)

        start = time.perf_counter()
        pooled = run_cells(cells, jobs=args.jobs, cache=cache)
        pooled_s = time.perf_counter() - start
        print(
            f"  pooled pass (--jobs {args.jobs}): {pooled.executed} simulations "
            f"in {pooled_s:.1f}s"
        )
        if pooled.executed != unique or pooled.cache_hits != 0:
            failures += 1
            print(
                f"GATE FAIL [pool] expected {unique} executions and 0 cache "
                f"hits on a cold cache, got {pooled.executed}/{pooled.cache_hits}"
            )
        failures += compare(inline.results, pooled.results, "pool vs inline")

        cached = run_cells(cells, jobs=args.jobs, cache=cache)
        if cached.executed != 0 or cached.cache_hits != unique:
            failures += 1
            print(
                f"GATE FAIL [cache] warm cache should execute 0 simulations "
                f"and hit {unique} entries, got {cached.executed} executions "
                f"and {cached.cache_hits} hits"
            )
        else:
            print(f"  warm-cache pass: 0 simulations, {cached.cache_hits} hits")
        failures += compare(inline.results, cached.results, "cache vs inline")

    if failures:
        print(f"figures gate: {failures} failure(s)")
        return 1
    print("figures gate: OK (inline == pooled == cached, warm cache ran nothing)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
