#!/usr/bin/env python
"""Substrate benchmark gate: measure, record, and check for regressions.

Runs the simulation-substrate micro-benchmarks (engine dispatch, timeouts,
process spawn, network rpc/send, Zipf sampling) plus a fixed-seed end-to-end
YCSB run, and writes the samples to ``BENCH_substrate.json`` at the repo
root.  The JSON file is committed so every PR leaves a perf trajectory the
next one can compare against.

Modes
-----

``python scripts/bench_gate.py``
    Measure and (over)write ``BENCH_substrate.json``.

``python scripts/bench_gate.py --check``
    Measure and compare against the committed ``BENCH_substrate.json``:

    * **correctness** (commit/abort counts and final simulated clock of the
      fixed-seed YCSB run) must match exactly — mismatch exits non-zero.
      A PR that intentionally changes simulation semantics must regenerate
      the baseline in the same commit.
    * **performance** is advisory (machines differ): regressions beyond
      ``--tolerance`` (default 30%) are reported as warnings but do not
      fail the gate.

Wall-clock numbers are machine-specific; the committed baseline records the
machine's samples at the time the baseline was refreshed.  The correctness
block is machine-independent and is the part the gate enforces.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.micro import MICRO_BENCHMARKS  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_substrate.json"
SCHEMA_VERSION = 1


def run_ycsb_small() -> dict:
    """Fixed-seed small-scale YCSB end-to-end run (perf + correctness)."""
    from repro.bench.runner import SCALES, build_workload
    from repro.cluster.cluster import Cluster
    from repro.cluster.config import SystemConfig

    scale = SCALES["small"]
    config = SystemConfig.for_protocol(
        "primo",
        duration_us=scale.duration_us,
        warmup_us=scale.warmup_us,
        workers_per_partition=scale.workers_per_partition,
        inflight_per_worker=scale.inflight_per_worker,
    )
    cluster = Cluster(config, build_workload(scale, "ycsb"))
    start = time.perf_counter()
    result = cluster.run()
    wall_s = time.perf_counter() - start
    return {
        "wall_s": round(wall_s, 4),
        "committed": result.metrics.committed,
        "aborted": result.metrics.aborted,
        "network_messages": result.network_messages,
        "final_env_now": cluster.env.now,
    }


def measure(repeats: int) -> dict:
    samples: dict = {"micro": {}, "ycsb_small": None}
    for name, (fn, n) in MICRO_BENCHMARKS.items():
        best = 0.0
        for _ in range(repeats):
            start = time.perf_counter()
            fn(n)
            elapsed = time.perf_counter() - start
            best = max(best, n / elapsed)
        samples["micro"][name] = {"ops_per_s": round(best, 1), "n": n}
        print(f"  {name:<16} {best:>14,.0f} ops/s")
    ycsb = run_ycsb_small()
    samples["ycsb_small"] = ycsb
    print(
        f"  {'ycsb_small':<16} {ycsb['wall_s']:>12.3f} s   "
        f"(committed={ycsb['committed']}, aborted={ycsb['aborted']})"
    )
    return samples


def check(current: dict, baseline: dict, tolerance: float) -> int:
    """Compare a fresh measurement against the committed baseline.

    Returns the process exit code: non-zero only for correctness mismatches.
    """
    failures = 0
    base_ycsb = baseline.get("ycsb_small", {})
    cur_ycsb = current["ycsb_small"]
    for key in ("committed", "aborted", "network_messages", "final_env_now"):
        if base_ycsb.get(key) != cur_ycsb[key]:
            failures += 1
            print(
                f"CORRECTNESS FAIL: ycsb_small.{key} = {cur_ycsb[key]}, "
                f"baseline has {base_ycsb.get(key)} — simulation semantics changed. "
                "If intentional, regenerate BENCH_substrate.json in this commit."
            )
    if failures == 0:
        print(
            "correctness: OK (fixed-seed YCSB counts, message totals and "
            "final clock match the baseline)"
        )

    base_micro = baseline.get("micro", {})
    for name, sample in current["micro"].items():
        base = base_micro.get(name)
        if not base:
            print(f"perf: {name} has no baseline sample (new benchmark) — skipping")
            continue
        ratio = sample["ops_per_s"] / base["ops_per_s"] if base["ops_per_s"] else 1.0
        status = "ok" if ratio >= 1.0 - tolerance else "REGRESSION (soft)"
        print(f"perf: {name:<16} {ratio:6.2f}x vs baseline — {status}")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline instead of overwriting it")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"baseline file (default: {DEFAULT_OUTPUT.name})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurement repeats per micro-benchmark (best-of)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional perf regression before warning (default 0.30)")
    args = parser.parse_args()

    print(f"bench_gate: measuring substrate benchmarks (best of {args.repeats})")
    current = {
        "schema_version": SCHEMA_VERSION,
        "python": platform.python_version(),
        "machine": platform.machine(),
        **measure(args.repeats),
    }

    if args.check:
        if not args.output.exists():
            print(f"no baseline at {args.output} — writing one instead of checking")
            args.output.write_text(json.dumps(current, indent=2) + "\n")
            return 0
        baseline = json.loads(args.output.read_text())
        return check(current, baseline, args.tolerance)

    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
