#!/usr/bin/env python
"""Substrate benchmark gate: measure, record, and check for regressions.

Runs the simulation-substrate micro-benchmarks (engine dispatch, timeouts,
process spawn, network rpc/send, Zipf sampling) plus fixed-seed end-to-end
YCSB and TPC-C runs, and writes the samples to ``BENCH_substrate.json`` at
the repo root.  The JSON file is committed so every PR leaves a perf
trajectory the next one can compare against; ``git_sha``, ``generated_at``
and ``engine_backend`` (which scheduler kernel produced the samples — see
``repro/sim/engine.py``) metadata make the committed trajectory
self-describing.  When ``--check`` compares runs from *different* backends,
wall-clock ratios are reported informationally instead of as soft
regressions — they measure the kernel swap, not a code change — while the
fixed-seed correctness fields stay enforced (bit-identity across backends is
the engine contract).

Modes
-----

``python scripts/bench_gate.py``
    Measure and (over)write ``BENCH_substrate.json``.

``python scripts/bench_gate.py --check``
    Measure and compare against the committed ``BENCH_substrate.json``:

    * **correctness** (commit/abort counts, message totals and final
      simulated clock of the fixed-seed end-to-end runs) must match exactly —
      mismatch exits non-zero.  A PR that intentionally changes simulation
      semantics must regenerate the baseline in the same commit.
    * **performance** is advisory (machines differ): regressions beyond
      ``--tolerance`` (default 30%) are reported as warnings but do not
      fail the gate.

    When ``--summary FILE`` is given (or the ``GITHUB_STEP_SUMMARY``
    environment variable is set, as on GitHub Actions), a Markdown summary
    of the correctness verdict and every perf ratio is appended there so
    soft-warn regressions surface on the workflow run page instead of being
    buried in the log.

Wall-clock numbers are machine-specific; end-to-end rows record the best of
``--repeats`` runs to damp scheduler noise, and the correctness fields are
asserted identical across those repeats (they are fixed-seed — divergence
means the simulator lost determinism, which also fails the gate).
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.micro import MICRO_BENCHMARKS  # noqa: E402
from repro.sim.engine import ENGINE_BACKEND  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_substrate.json"
# v4: adds the fixed-seed *open-loop* end-to-end row (Poisson arrivals at
# 0.8x of measured saturation) and stamps each row's arrival mode.  v3 added
# ``engine_backend`` metadata (which scheduler kernel produced the samples);
# perf ratios against a baseline from the other backend are informational,
# not regressions.
SCHEMA_VERSION = 4

#: Fixed-seed end-to-end rows measured next to the micro benches:
#: ``(row_name, workload, arrival)`` — ``arrival=None`` is the closed loop,
#: a dict is an :class:`repro.arrivals.ArrivalSpec` JSON form.
E2E_ROWS = (
    ("ycsb_small", "ycsb", None),
    ("tpcc_small", "tpcc", None),
    ("ycsb_openloop_small", "ycsb", {"kind": "poisson", "rate_tps": 176_000.0}),
)
#: Correctness fields of an end-to-end row (machine-independent, enforced).
E2E_CORRECTNESS_KEYS = ("committed", "aborted", "network_messages", "final_env_now")


def _arrival_stamp(arrival) -> str:
    if arrival is None:
        return "closed"
    rate = arrival.get("rate_tps")
    return f"{arrival['kind']}@{rate:g}tps" if rate else arrival["kind"]


def run_e2e_small(workload: str, arrival=None) -> dict:
    """One fixed-seed small-scale end-to-end run (perf + correctness)."""
    from repro.bench.runner import SCALES, build_workload
    from repro.cluster.cluster import Cluster
    from repro.cluster.config import SystemConfig

    scale = SCALES["small"]
    config = SystemConfig.for_protocol(
        "primo",
        duration_us=scale.duration_us,
        warmup_us=scale.warmup_us,
        workers_per_partition=scale.workers_per_partition,
        inflight_per_worker=scale.inflight_per_worker,
    )
    cluster = Cluster(config, build_workload(scale, workload), arrival=arrival)
    start = time.perf_counter()
    result = cluster.run()
    wall_s = time.perf_counter() - start
    return {
        "wall_s": round(wall_s, 4),
        "arrival": _arrival_stamp(arrival),
        "committed": result.metrics.committed,
        "aborted": result.metrics.aborted,
        "network_messages": result.network_messages,
        "final_env_now": cluster.env.now,
    }


def measure_e2e(row_name: str, workload: str, arrival, repeats: int) -> dict:
    """Best-of-``repeats`` wall clock; correctness fields must not vary."""
    best = None
    for _ in range(max(1, repeats)):
        sample = run_e2e_small(workload, arrival)
        if best is None:
            best = sample
            continue
        for key in E2E_CORRECTNESS_KEYS:
            if best[key] != sample[key]:
                raise SystemExit(
                    f"DETERMINISM FAIL: {row_name}.{key} varied across "
                    f"repeats ({best[key]} vs {sample[key]}) — fixed-seed runs "
                    "must be reproducible within one process."
                )
        best["wall_s"] = min(best["wall_s"], sample["wall_s"])
    return best


def git_sha() -> str:
    """Current HEAD, with a ``-dirty`` marker when the worktree has edits.

    A baseline regenerated before committing (the normal flow: measure, then
    commit code + baseline together) is stamped ``<parent-sha>-dirty``.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
        if out.returncode != 0:
            return "unknown"
        sha = out.stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
        if status.returncode == 0 and status.stdout.strip():
            sha += "-dirty"
        return sha
    except (OSError, subprocess.SubprocessError):
        # Includes TimeoutExpired: the stamp degrades, the gate never dies
        # over metadata.
        return "unknown"


def measure(repeats: int) -> dict:
    samples: dict = {"micro": {}}
    for name, (fn, n) in MICRO_BENCHMARKS.items():
        best = 0.0
        for _ in range(repeats):
            start = time.perf_counter()
            fn(n)
            elapsed = time.perf_counter() - start
            best = max(best, n / elapsed)
        samples["micro"][name] = {"ops_per_s": round(best, 1), "n": n}
        print(f"  {name:<16} {best:>14,.0f} ops/s")
    for row_name, workload, arrival in E2E_ROWS:
        row = measure_e2e(row_name, workload, arrival, repeats)
        samples[row_name] = row
        print(
            f"  {row_name:<20} {row['wall_s']:>12.3f} s   "
            f"(committed={row['committed']}, aborted={row['aborted']}, "
            f"arrival={row['arrival']})"
        )
    return samples


def check(current: dict, baseline: dict, tolerance: float) -> tuple[int, list[str]]:
    """Compare a fresh measurement against the committed baseline.

    Returns ``(exit_code, summary_lines)``; the exit code is non-zero only
    for correctness mismatches, and the summary lines are Markdown rows for
    the optional step summary.
    """
    failures = 0
    summary: list[str] = [
        "### Substrate bench gate",
        "",
        "| check | status |",
        "| --- | --- |",
    ]
    # Wall-clock comparisons across different scheduler kernels measure the
    # backend swap, not a regression: report them informationally.  The
    # correctness fields below are backend-independent (bit-identity is the
    # engine contract) and stay enforced regardless.
    base_backend = baseline.get("engine_backend", "py")
    cur_backend = current.get("engine_backend", "py")
    backend_differs = base_backend != cur_backend
    if backend_differs:
        note = (
            f"engine backend differs from baseline ({base_backend} → "
            f"{cur_backend}); perf ratios below are informational"
        )
        print(f"note: {note}")
        summary.append(f"| engine backend | ℹ️ {note} |")
    for row_name, workload, arrival in E2E_ROWS:
        stamp = _arrival_stamp(arrival)
        base_row = baseline.get(row_name)
        cur_row = current[row_name]
        if base_row is None:
            print(f"correctness: {row_name} has no baseline row (new) — skipping")
            summary.append(
                f"| `{row_name}` ({stamp}) correctness | ➕ no baseline row (new) |"
            )
            continue
        row_failures = 0
        for key in E2E_CORRECTNESS_KEYS:
            if base_row.get(key) != cur_row[key]:
                failures += 1
                row_failures += 1
                print(
                    f"CORRECTNESS FAIL: {row_name}.{key} = {cur_row[key]}, "
                    f"baseline has {base_row.get(key)} — simulation semantics "
                    "changed. If intentional, regenerate BENCH_substrate.json "
                    "in this commit."
                )
        if row_failures:
            summary.append(
                f"| `{row_name}` ({stamp}) correctness | ❌ **{row_failures} field(s) drifted** |"
            )
        else:
            print(f"correctness: {row_name} OK (counts, message totals and final clock match)")
            summary.append(f"| `{row_name}` ({stamp}) correctness | ✅ match |")
        base_wall = base_row.get("wall_s")
        if base_wall:
            ratio = base_wall / cur_row["wall_s"] if cur_row["wall_s"] else 1.0
            regressed = not backend_differs and ratio < 1.0 - tolerance
            if backend_differs:
                status, marker = "informational (backend differs)", "ℹ️"
            elif regressed:
                status, marker = "REGRESSION (soft)", "⚠️ **soft regression**"
            else:
                status, marker = "ok", "✅"
            print(f"perf: {row_name:<20} {ratio:6.2f}x wall-clock vs baseline — {status}")
            summary.append(f"| `{row_name}` ({stamp}) wall clock | {marker} {ratio:.2f}x vs baseline |")

    base_micro = baseline.get("micro", {})
    for name, sample in current["micro"].items():
        base = base_micro.get(name)
        if not base:
            print(f"perf: {name} has no baseline sample (new benchmark) — skipping")
            summary.append(f"| `{name}` | ➕ no baseline sample |")
            continue
        ratio = sample["ops_per_s"] / base["ops_per_s"] if base["ops_per_s"] else 1.0
        regressed = not backend_differs and ratio < 1.0 - tolerance
        if backend_differs:
            status, marker = "informational (backend differs)", "ℹ️"
        elif regressed:
            status, marker = "REGRESSION (soft)", "⚠️ **soft regression**"
        else:
            status, marker = "ok", "✅"
        print(f"perf: {name:<16} {ratio:6.2f}x vs baseline — {status}")
        summary.append(f"| `{name}` | {marker} {ratio:.2f}x vs baseline |")
    summary.append("")
    summary.append(
        "Perf ratios are advisory (machine-specific); correctness rows are "
        "enforced."
    )
    return (1 if failures else 0), summary


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline instead of overwriting it")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"baseline file (default: {DEFAULT_OUTPUT.name})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurement repeats per benchmark (best-of)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional perf regression before warning (default 0.30)")
    parser.add_argument("--summary", type=Path, default=None,
                        help="append a Markdown check summary to this file "
                             "(default: $GITHUB_STEP_SUMMARY when set)")
    args = parser.parse_args()

    print(f"bench_gate: measuring substrate benchmarks (best of {args.repeats})")
    current = {
        "schema_version": SCHEMA_VERSION,
        "git_sha": git_sha(),
        "generated_at": datetime.datetime.now(datetime.timezone.utc)
                                         .isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "engine_backend": ENGINE_BACKEND,
        **measure(args.repeats),
    }

    if args.check:
        if not args.output.exists():
            print(f"no baseline at {args.output} — writing one instead of checking")
            args.output.write_text(json.dumps(current, indent=2) + "\n")
            return 0
        baseline = json.loads(args.output.read_text())
        code, summary_lines = check(current, baseline, args.tolerance)
        summary_path = args.summary
        if summary_path is None and os.environ.get("GITHUB_STEP_SUMMARY"):
            summary_path = Path(os.environ["GITHUB_STEP_SUMMARY"])
        if summary_path is not None:
            with open(summary_path, "a", encoding="utf-8") as fh:
                fh.write("\n".join(summary_lines) + "\n")
            print(f"wrote check summary to {summary_path}")
        return code

    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
