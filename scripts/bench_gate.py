#!/usr/bin/env python
"""Substrate benchmark gate: measure, record, and check for regressions.

Runs the simulation-substrate micro-benchmarks (engine dispatch, timeouts,
process spawn, network rpc/send, Zipf sampling) plus fixed-seed end-to-end
YCSB and TPC-C runs, and writes the samples to ``BENCH_substrate.json`` at
the repo root.  The JSON file is committed so every PR leaves a perf
trajectory the next one can compare against; ``git_sha``, ``generated_at``
and ``engine_backend`` (which scheduler kernel produced the samples — see
``repro/sim/engine.py``) metadata make the committed trajectory
self-describing.  When ``--check`` compares runs from *different* backends,
wall-clock ratios are reported informationally instead of as soft
regressions — they measure the kernel swap, not a code change — while the
fixed-seed correctness fields stay enforced (bit-identity across backends is
the engine contract).

Modes
-----

``python scripts/bench_gate.py``
    Measure and (over)write ``BENCH_substrate.json``.

``python scripts/bench_gate.py --check``
    Measure and compare against the committed ``BENCH_substrate.json``:

    * **correctness** (commit/abort counts, message totals and final
      simulated clock of the fixed-seed end-to-end runs) must match exactly —
      mismatch exits non-zero.  A PR that intentionally changes simulation
      semantics must regenerate the baseline in the same commit.
    * **performance** is advisory (machines differ): regressions beyond
      ``--tolerance`` (default 30%) are reported as warnings but do not
      fail the gate.

    When ``--summary FILE`` is given (or the ``GITHUB_STEP_SUMMARY``
    environment variable is set, as on GitHub Actions), a Markdown summary
    of the correctness verdict and every perf ratio is appended there so
    soft-warn regressions surface on the workflow run page instead of being
    buried in the log.

Wall-clock numbers are machine-specific; end-to-end rows record the best of
``--repeats`` runs to damp scheduler noise, and the correctness fields are
asserted identical across those repeats (they are fixed-seed — divergence
means the simulator lost determinism, which also fails the gate).

Memory (schema v5)
------------------

Every end-to-end row also records ``mem_peak_mb``: the tracemalloc peak of
one dedicated traced run.  tracemalloc roughly doubles wall-clock, so the
timed repeats run untraced and memory gets its own run (whose correctness
fields are asserted against the timed ones).  ``--check`` compares memory
like wall clock — soft warning beyond ``--tolerance`` — unless
``--enforce-memory`` is given, which turns a memory regression into a hard
failure.  That flag backs the CI ``xlarge-smoke`` job: it runs just the
million-key row (``--rows ycsb_xlarge``) and asserts the columnar storage
tier still fits its recorded ceiling.  ``--rows`` restricts the measured
end-to-end rows (micro benches are skipped when it is given).
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import time
import tracemalloc
from pathlib import Path
from typing import NamedTuple, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.micro import MICRO_BENCHMARKS  # noqa: E402
from repro.sim.engine import ENGINE_BACKEND  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_substrate.json"
# v6: a fixed-seed ``ycsb_storm_small`` row runs the curated "standard storm"
# fault plan (replication faults + leader flap + stale reads) and the
# correctness fields gain ``crash_aborted`` and ``stale_reads``, pinning the
# fault scheduler's and the stale-read draw's determinism.  v5: every
# end-to-end row records ``mem_peak_mb`` (tracemalloc peak of a
# dedicated traced run), and a million-key ``ycsb_xlarge`` row (tapir, the
# columnar storage backend's flagship tier) joins the table alongside the
# ``zipf_1m`` micro bench.  v4 added the fixed-seed *open-loop* end-to-end
# row (Poisson arrivals at 0.8x of measured saturation) and stamped each
# row's arrival mode.  v3 added ``engine_backend`` metadata (which scheduler
# kernel produced the samples); perf ratios against a baseline from the
# other backend are informational, not regressions.
SCHEMA_VERSION = 6


class E2ERow(NamedTuple):
    """One fixed-seed end-to-end row measured next to the micro benches."""

    name: str
    protocol: str
    workload: str
    scale: str
    #: ``None`` is the closed loop, a dict is an
    #: :class:`repro.arrivals.ArrivalSpec` JSON form.
    arrival: Optional[dict]
    #: Cap on ``--repeats`` for this row (0 = no cap).  The million-key tier
    #: takes tens of seconds per run; best-of-3 would triple the gate's wall
    #: time for noise-damping the small rows don't need at that duration.
    max_repeats: int
    #: Named fault plan (currently only ``"standard_storm"``); ``None`` is a
    #: fault-free run.
    faults: Optional[str] = None


E2E_ROWS = (
    E2ERow("ycsb_small", "primo", "ycsb", "small", None, 0),
    E2ERow("tpcc_small", "primo", "tpcc", "small", None, 0),
    E2ERow("ycsb_openloop_small", "primo", "ycsb", "small",
           {"kind": "poisson", "rate_tps": 176_000.0}, 0),
    E2ERow("ycsb_xlarge", "tapir", "ycsb", "xlarge", None, 1),
    E2ERow("ycsb_storm_small", "primo", "ycsb", "small", None, 0,
           "standard_storm"),
)
#: Correctness fields of an end-to-end row (machine-independent, enforced).
E2E_CORRECTNESS_KEYS = ("committed", "aborted", "crash_aborted",
                        "network_messages", "final_env_now", "stale_reads")


def _arrival_stamp(arrival) -> str:
    if arrival is None:
        return "closed"
    rate = arrival.get("rate_tps")
    return f"{arrival['kind']}@{rate:g}tps" if rate else arrival["kind"]


def run_e2e(row: E2ERow, traced: bool = False) -> dict:
    """One fixed-seed end-to-end run (perf + correctness).

    With ``traced`` the run happens under tracemalloc and the sample gains
    ``mem_peak_mb``; its wall clock is *not* recorded (tracing roughly
    doubles it).
    """
    from repro.bench.runner import SCALES, build_workload
    from repro.cluster.cluster import Cluster
    from repro.cluster.config import SystemConfig
    from repro.faults import FaultPlan, standard_storm

    scale = SCALES[row.scale]
    config_kwargs = dict(
        duration_us=scale.duration_us,
        warmup_us=scale.warmup_us,
        workers_per_partition=scale.workers_per_partition,
        inflight_per_worker=scale.inflight_per_worker,
    )
    plan = None
    if row.faults == "standard_storm":
        from repro.bench.experiments import storm_duration_us

        # Mirror the storm figure exactly: the fast failure detector (so the
        # leader flap is detected and recovered inside the fixed-seed run)
        # and the stretched >= 60 ms window — at the raw small-scale duration
        # the flap's ~20 ms recovery quiesce would swallow the trailing
        # stale-read window, leaving the stale_reads correctness key vacuous.
        duration = storm_duration_us(scale)
        config_kwargs.update(duration_us=duration,
                             heartbeat_interval_us=500.0,
                             heartbeat_timeout_us=2_000.0)
        plan = FaultPlan(events=tuple(
            standard_storm(scale.warmup_us, duration)))
    elif row.faults is not None:
        raise SystemExit(f"unknown named fault plan {row.faults!r}")
    config = SystemConfig.for_protocol(row.protocol, **config_kwargs)
    if traced:
        tracemalloc.start()
    try:
        cluster = Cluster(config, build_workload(scale, row.workload),
                          arrival=row.arrival, faults=plan)
        start = time.perf_counter()
        result = cluster.run()
        wall_s = time.perf_counter() - start
        sample = {
            "wall_s": round(wall_s, 4),
            "protocol": row.protocol,
            "scale": row.scale,
            "arrival": _arrival_stamp(row.arrival),
            "faults": row.faults or "none",
            "committed": result.metrics.committed,
            "aborted": result.metrics.aborted,
            "crash_aborted": result.metrics.crash_aborted,
            "network_messages": result.network_messages,
            "final_env_now": cluster.env.now,
            "stale_reads": result.metrics.counters.get("stale_reads"),
        }
        if traced:
            _, peak = tracemalloc.get_traced_memory()
            sample["mem_peak_mb"] = round(peak / 2**20, 1)
            del sample["wall_s"]
    finally:
        if traced:
            tracemalloc.stop()
    return sample


def measure_e2e(row: E2ERow, repeats: int) -> dict:
    """Best-of-``repeats`` wall clock plus one traced run for ``mem_peak_mb``.

    Correctness fields must not vary across any of the runs (traced
    included) — they are fixed-seed, so divergence means lost determinism.
    """
    if row.max_repeats:
        repeats = min(repeats, row.max_repeats)
    samples = [run_e2e(row) for _ in range(max(1, repeats))]
    samples.append(run_e2e(row, traced=True))
    best = samples[0]
    for sample in samples[1:]:
        for key in E2E_CORRECTNESS_KEYS:
            if best[key] != sample[key]:
                raise SystemExit(
                    f"DETERMINISM FAIL: {row.name}.{key} varied across "
                    f"repeats ({best[key]} vs {sample[key]}) — fixed-seed runs "
                    "must be reproducible within one process."
                )
        if "wall_s" in sample:
            best["wall_s"] = min(best["wall_s"], sample["wall_s"])
    best["mem_peak_mb"] = samples[-1]["mem_peak_mb"]
    return best


def git_sha() -> str:
    """Current HEAD, with a ``-dirty`` marker when the worktree has edits.

    A baseline regenerated before committing (the normal flow: measure, then
    commit code + baseline together) is stamped ``<parent-sha>-dirty``.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
        if out.returncode != 0:
            return "unknown"
        sha = out.stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
        if status.returncode == 0 and status.stdout.strip():
            sha += "-dirty"
        return sha
    except (OSError, subprocess.SubprocessError):
        # Includes TimeoutExpired: the stamp degrades, the gate never dies
        # over metadata.
        return "unknown"


def measure(repeats: int, rows: Optional[tuple] = None,
            include_micro: bool = True) -> dict:
    samples: dict = {"micro": {}}
    if include_micro:
        for name, (fn, n) in MICRO_BENCHMARKS.items():
            best = 0.0
            for _ in range(repeats):
                start = time.perf_counter()
                fn(n)
                elapsed = time.perf_counter() - start
                best = max(best, n / elapsed)
            samples["micro"][name] = {"ops_per_s": round(best, 1), "n": n}
            print(f"  {name:<16} {best:>14,.0f} ops/s")
    for e2e_row in (rows if rows is not None else E2E_ROWS):
        row = measure_e2e(e2e_row, repeats)
        samples[e2e_row.name] = row
        print(
            f"  {e2e_row.name:<20} {row['wall_s']:>12.3f} s  "
            f"{row['mem_peak_mb']:>8.1f} MB peak   "
            f"(committed={row['committed']}, aborted={row['aborted']}, "
            f"arrival={row['arrival']})"
        )
    return samples


def check(current: dict, baseline: dict, tolerance: float,
          enforce_memory: bool = False) -> tuple[int, list[str]]:
    """Compare a fresh measurement against the committed baseline.

    Returns ``(exit_code, summary_lines)``; the exit code is non-zero only
    for correctness mismatches — and, with ``enforce_memory``, for memory
    ceilings blown beyond ``tolerance`` — and the summary lines are Markdown
    rows for the optional step summary.
    """
    failures = 0
    summary: list[str] = [
        "### Substrate bench gate",
        "",
        "| check | status |",
        "| --- | --- |",
    ]
    # Wall-clock comparisons across different scheduler kernels measure the
    # backend swap, not a regression: report them informationally.  The
    # correctness fields below are backend-independent (bit-identity is the
    # engine contract) and stay enforced regardless.
    base_backend = baseline.get("engine_backend", "py")
    cur_backend = current.get("engine_backend", "py")
    backend_differs = base_backend != cur_backend
    if backend_differs:
        note = (
            f"engine backend differs from baseline ({base_backend} → "
            f"{cur_backend}); perf ratios below are informational"
        )
        print(f"note: {note}")
        summary.append(f"| engine backend | ℹ️ {note} |")
    for row in E2E_ROWS:
        row_name = row.name
        if row_name not in current:
            continue  # filtered out with --rows
        stamp = _arrival_stamp(row.arrival)
        base_row = baseline.get(row_name)
        cur_row = current[row_name]
        if base_row is None:
            print(f"correctness: {row_name} has no baseline row (new) — skipping")
            summary.append(
                f"| `{row_name}` ({stamp}) correctness | ➕ no baseline row (new) |"
            )
            continue
        row_failures = 0
        for key in E2E_CORRECTNESS_KEYS:
            if base_row.get(key) != cur_row[key]:
                failures += 1
                row_failures += 1
                print(
                    f"CORRECTNESS FAIL: {row_name}.{key} = {cur_row[key]}, "
                    f"baseline has {base_row.get(key)} — simulation semantics "
                    "changed. If intentional, regenerate BENCH_substrate.json "
                    "in this commit."
                )
        if row_failures:
            summary.append(
                f"| `{row_name}` ({stamp}) correctness | ❌ **{row_failures} field(s) drifted** |"
            )
        else:
            print(f"correctness: {row_name} OK (counts, message totals and final clock match)")
            summary.append(f"| `{row_name}` ({stamp}) correctness | ✅ match |")
        base_wall = base_row.get("wall_s")
        if base_wall:
            ratio = base_wall / cur_row["wall_s"] if cur_row["wall_s"] else 1.0
            regressed = not backend_differs and ratio < 1.0 - tolerance
            if backend_differs:
                status, marker = "informational (backend differs)", "ℹ️"
            elif regressed:
                status, marker = "REGRESSION (soft)", "⚠️ **soft regression**"
            else:
                status, marker = "ok", "✅"
            print(f"perf: {row_name:<20} {ratio:6.2f}x wall-clock vs baseline — {status}")
            summary.append(f"| `{row_name}` ({stamp}) wall clock | {marker} {ratio:.2f}x vs baseline |")
        base_mem = base_row.get("mem_peak_mb")
        cur_mem = cur_row.get("mem_peak_mb")
        if base_mem and cur_mem:
            # Memory verdict.  tracemalloc peaks are far more machine-stable
            # than wall clock (they count Python-allocator bytes, not time),
            # so a blown ceiling is meaningful anywhere — but still soft by
            # default; --enforce-memory (the xlarge-smoke CI job) hardens it.
            mem_ratio = cur_mem / base_mem
            regressed = mem_ratio > 1.0 + tolerance
            if regressed and enforce_memory:
                failures += 1
                status = "MEMORY CEILING EXCEEDED (enforced)"
                marker = "❌ **memory ceiling exceeded**"
                print(
                    f"MEMORY FAIL: {row_name} peaked at {cur_mem} MB, "
                    f"baseline ceiling is {base_mem} MB (+{tolerance:.0%} "
                    "tolerance). If the growth is intentional, regenerate "
                    "BENCH_substrate.json in this commit."
                )
            elif regressed:
                status, marker = "REGRESSION (soft)", "⚠️ **soft regression**"
            else:
                status, marker = "ok", "✅"
            print(
                f"mem:  {row_name:<20} {mem_ratio:6.2f}x peak vs baseline "
                f"({cur_mem} MB vs {base_mem} MB) — {status}"
            )
            summary.append(
                f"| `{row_name}` ({stamp}) memory peak | {marker} "
                f"{mem_ratio:.2f}x vs baseline ({cur_mem} MB vs {base_mem} MB) |"
            )

    base_micro = baseline.get("micro", {})
    for name, sample in current["micro"].items():
        base = base_micro.get(name)
        if not base:
            print(f"perf: {name} has no baseline sample (new benchmark) — skipping")
            summary.append(f"| `{name}` | ➕ no baseline sample |")
            continue
        ratio = sample["ops_per_s"] / base["ops_per_s"] if base["ops_per_s"] else 1.0
        regressed = not backend_differs and ratio < 1.0 - tolerance
        if backend_differs:
            status, marker = "informational (backend differs)", "ℹ️"
        elif regressed:
            status, marker = "REGRESSION (soft)", "⚠️ **soft regression**"
        else:
            status, marker = "ok", "✅"
        print(f"perf: {name:<16} {ratio:6.2f}x vs baseline — {status}")
        summary.append(f"| `{name}` | {marker} {ratio:.2f}x vs baseline |")
    summary.append("")
    summary.append(
        "Perf and memory ratios are advisory (soft warnings) unless "
        "`--enforce-memory` is set; correctness rows are always enforced."
    )
    return (1 if failures else 0), summary


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline instead of overwriting it")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"baseline file (default: {DEFAULT_OUTPUT.name})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurement repeats per benchmark (best-of)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional perf regression before warning (default 0.30)")
    parser.add_argument("--summary", type=Path, default=None,
                        help="append a Markdown check summary to this file "
                             "(default: $GITHUB_STEP_SUMMARY when set)")
    parser.add_argument("--rows", type=str, default=None,
                        help="comma-separated end-to-end row names to measure "
                             "(skips the micro benches; default: all rows)")
    parser.add_argument("--enforce-memory", action="store_true",
                        help="fail (not just warn) when an end-to-end row's "
                             "mem_peak_mb exceeds the baseline by --tolerance")
    args = parser.parse_args()

    rows = None
    if args.rows is not None:
        wanted = [name.strip() for name in args.rows.split(",") if name.strip()]
        by_name = {row.name: row for row in E2E_ROWS}
        unknown = sorted(set(wanted) - set(by_name))
        if unknown:
            parser.error(
                f"unknown --rows name(s) {', '.join(unknown)}; "
                f"known rows: {', '.join(by_name)}"
            )
        rows = tuple(by_name[name] for name in wanted)

    print(f"bench_gate: measuring substrate benchmarks (best of {args.repeats})")
    current = {
        "schema_version": SCHEMA_VERSION,
        "git_sha": git_sha(),
        "generated_at": datetime.datetime.now(datetime.timezone.utc)
                                         .isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "engine_backend": ENGINE_BACKEND,
        **measure(args.repeats, rows=rows, include_micro=rows is None),
    }

    if args.check:
        if not args.output.exists():
            if rows is not None:
                raise SystemExit(
                    f"no baseline at {args.output} — a --rows subset cannot "
                    "seed one (it would commit a partial baseline)"
                )
            print(f"no baseline at {args.output} — writing one instead of checking")
            args.output.write_text(json.dumps(current, indent=2) + "\n")
            return 0
        baseline = json.loads(args.output.read_text())
        code, summary_lines = check(current, baseline, args.tolerance,
                                    enforce_memory=args.enforce_memory)
        summary_path = args.summary
        if summary_path is None and os.environ.get("GITHUB_STEP_SUMMARY"):
            summary_path = Path(os.environ["GITHUB_STEP_SUMMARY"])
        if summary_path is not None:
            with open(summary_path, "a", encoding="utf-8") as fh:
                fh.write("\n".join(summary_lines) + "\n")
            print(f"wrote check summary to {summary_path}")
        return code

    if rows is not None:
        raise SystemExit(
            "--rows without --check would overwrite the committed baseline "
            "with a partial measurement; regenerate the full file instead"
        )
    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
