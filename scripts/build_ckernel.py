#!/usr/bin/env python
"""Build the compiled scheduler kernel in place (for source checkouts).

Runs ``setup.py build_ext --inplace`` so the ``repro.sim._ckernel`` shared
object lands next to ``_ckernel.c`` under ``src/repro/sim/``, where the
``PYTHONPATH=src`` workflow (tests, bench gate, CLI) picks it up.  The build
is best-effort by design — a missing compiler degrades to the pure-Python
kernel — so pass ``--verify`` wherever a silent fallback would be a bug
(CI's backend-matrix job does): it imports the engine and fails loudly
unless the C kernel actually loaded.

Usage::

    python scripts/build_ckernel.py            # build (best-effort)
    python scripts/build_ckernel.py --verify   # build, then assert it loads
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def build() -> int:
    return subprocess.run(
        [sys.executable, "setup.py", "build_ext", "--inplace"],
        cwd=REPO_ROOT,
    ).returncode


def verify() -> int:
    """Import the engine in a clean interpreter and require the C backend."""
    code = (
        "import os; os.environ['REPRO_ENGINE'] = 'c'\n"
        "from repro.sim import engine\n"
        "assert engine.ENGINE_BACKEND == 'c', engine.C_IMPORT_ERROR\n"
        "env = engine.Environment()\n"
        "def ping():\n"
        "    yield env.timeout(1.0)\n"
        "    return 'ok'\n"
        "proc = env.process(ping())\n"
        "env.run_all()\n"
        "assert proc.value == 'ok' and env.now == 1.0\n"
        "print('C kernel loaded and dispatching:', engine.Environment)\n"
    )
    env = {"PYTHONPATH": str(REPO_ROOT / "src")}
    import os

    merged = dict(os.environ)
    merged.update(env)
    return subprocess.run([sys.executable, "-c", code], env=merged).returncode


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--verify",
        action="store_true",
        help="after building, import the engine and fail unless REPRO_ENGINE=c loads",
    )
    args = parser.parse_args()
    code = build()
    if code != 0:
        print("build_ckernel: build_ext failed outright", file=sys.stderr)
        return code
    if args.verify:
        code = verify()
        if code != 0:
            print(
                "build_ckernel: the C kernel did not load (silent fallback "
                "would have occurred)",
                file=sys.stderr,
            )
        return code
    return 0


if __name__ == "__main__":
    sys.exit(main())
