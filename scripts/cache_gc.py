#!/usr/bin/env python
"""Prune version-skewed / orphaned entries from shared result-cache dirs.

Campaigns share one content-keyed cache directory across executors, hosts and
substrate versions (see README "Running campaigns").  Entries written by an
older substrate are already invisible to ``ResultCache.get`` — this tool
reclaims their disk::

    python scripts/cache_gc.py .bench-cache
    python scripts/cache_gc.py my-campaign/cache --dry-run
    python scripts/cache_gc.py my-campaign/cache --claims my-campaign/claims

Removes (per directory): entries whose cache schema or substrate version no
longer matches the running code, files that do not parse, and ``.tmp-*``
debris of executors killed mid-write (older than ``--tmp-age``).  With
``--claims`` it additionally sweeps expired campaign claim files (same rule
the executors apply).  Exit status 0 always; the summary reports bytes
reclaimed per directory.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.orchestrator import collect_cache_garbage  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python scripts/cache_gc.py",
        description="Reclaim stale entries from orchestrator/campaign caches.",
    )
    parser.add_argument("cache_dirs", nargs="+", metavar="DIR",
                        help="result-cache directories to sweep")
    parser.add_argument("--tmp-age", type=float, default=3600.0, metavar="S",
                        help="age in seconds after which .tmp-* files count "
                             "as orphaned (default: 3600)")
    parser.add_argument("--claims", action="append", default=[], metavar="DIR",
                        help="campaign claims directory to sweep expired "
                             "claims from (repeatable)")
    parser.add_argument("--claim-ttl", type=float, default=900.0, metavar="S",
                        help="claim expiry used with --claims (default: 900, "
                             "matching the executor default)")
    parser.add_argument("--dry-run", action="store_true",
                        help="report what would be removed without deleting")
    args = parser.parse_args(argv)

    total = 0
    for cache_dir in args.cache_dirs:
        report = collect_cache_garbage(cache_dir, tmp_age_s=args.tmp_age,
                                       dry_run=args.dry_run)
        total += report.bytes_reclaimed
        print(f"[cache-gc] {report.describe()}")
    if args.claims:
        from repro.campaign.executor import sweep_stale_claims  # noqa: E402

        for claims_dir in args.claims:
            swept, bytes_freed = sweep_stale_claims(
                claims_dir, claim_ttl_s=args.claim_ttl, dry_run=args.dry_run)
            total += bytes_freed
            action = "would sweep" if args.dry_run else "swept"
            print(f"[cache-gc] {claims_dir}: {action} {swept} expired "
                  f"claim(s), {bytes_freed:,} bytes")
    action = "would reclaim" if args.dry_run else "reclaimed"
    print(f"[cache-gc] total: {action} {total:,} bytes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
