#!/usr/bin/env python3
"""TPC-C study: protocol comparison on a realistic OLTP mix.

Runs the full five-transaction TPC-C mix (NewOrder, Payment, OrderStatus,
Delivery, StockLevel) on a simulated 4-partition cluster for several
protocols via the scenario API, then shows how the number of warehouses per
partition changes Primo's advantage (fewer warehouses = more contention =
larger win, paper Figs. 5 and 10) — the warehouse sweep is a one-liner with
:func:`repro.sweep`.

Run with:  python examples/tpcc_study.py
"""

import repro

BASE = dict(
    workload="tpcc",
    scale="small",
    config_overrides={
        "n_partitions": 4,
        "workers_per_partition": 2,
        "inflight_per_worker": 2,
        "duration_us": 30_000.0,
        "warmup_us": 8_000.0,
    },
)


def run(protocol: str, warehouses: int) -> "repro.RunResult":
    spec = repro.ScenarioSpec(
        protocol=protocol,
        workload_overrides={
            "warehouses_per_partition": warehouses,
            "items": 500,
            "customers_per_district": 50,
        },
        **BASE,
    )
    return repro.run(spec)


def main() -> None:
    print("TPC-C, 4 partitions, 8 warehouses/partition, full transaction mix")
    print("-" * 72)
    for protocol in ("2pl_wd", "silo", "sundial", "primo"):
        result = run(protocol, warehouses=8)
        print(
            f"{protocol:8s}  {result.throughput_ktps:8.1f} kTPS   "
            f"abort {result.abort_rate:6.2%}   mix {result.per_txn_type}"
        )

    print()
    print("Impact of the number of warehouses (contention knob, paper Fig. 10)")
    print("-" * 72)
    for warehouses in (1, 4, 16):
        primo = run("primo", warehouses).throughput_ktps
        sundial = run("sundial", warehouses).throughput_ktps
        print(
            f"{warehouses:3d} warehouses/partition:  primo {primo:8.1f} kTPS   "
            f"sundial {sundial:8.1f} kTPS   ratio {primo / max(sundial, 1e-9):.2f}x"
        )


if __name__ == "__main__":
    main()
