#!/usr/bin/env python3
"""TPC-C study: protocol comparison on a realistic OLTP mix.

Runs the full five-transaction TPC-C mix (NewOrder, Payment, OrderStatus,
Delivery, StockLevel) on a simulated 4-partition cluster for several
protocols, and then shows how the number of warehouses per partition changes
Primo's advantage (fewer warehouses = more contention = larger win,
paper Figs. 5 and 10).

Run with:  python examples/tpcc_study.py
"""

from repro import Cluster, SystemConfig, TPCCConfig, TPCCWorkload


def run(protocol: str, warehouses: int) -> "tuple[float, float, dict]":
    config = SystemConfig.for_protocol(
        protocol,
        n_partitions=4,
        workers_per_partition=2,
        inflight_per_worker=2,
        duration_us=30_000.0,
        warmup_us=8_000.0,
    )
    workload = TPCCWorkload(
        TPCCConfig(warehouses_per_partition=warehouses, items=500, customers_per_district=50)
    )
    result = Cluster(config, workload).run()
    return result.throughput_ktps, result.abort_rate, result.per_txn_type


def main() -> None:
    print("TPC-C, 4 partitions, 8 warehouses/partition, full transaction mix")
    print("-" * 72)
    for protocol in ("2pl_wd", "silo", "sundial", "primo"):
        ktps, abort_rate, mix = run(protocol, warehouses=8)
        print(f"{protocol:8s}  {ktps:8.1f} kTPS   abort {abort_rate:6.2%}   mix {mix}")

    print()
    print("Impact of the number of warehouses (contention knob, paper Fig. 10)")
    print("-" * 72)
    for warehouses in (1, 4, 16):
        primo, _, _ = run("primo", warehouses)
        sundial, _, _ = run("sundial", warehouses)
        print(
            f"{warehouses:3d} warehouses/partition:  primo {primo:8.1f} kTPS   "
            f"sundial {sundial:8.1f} kTPS   ratio {primo / max(sundial, 1e-9):.2f}x"
        )


if __name__ == "__main__":
    main()
