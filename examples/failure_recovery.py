#!/usr/bin/env python3
"""Failure and recovery demo: what happens when a partition leader crashes.

Declares the crash as a :class:`repro.FaultPlan` event on the scenario
(``faults=[...]`` — the legacy ``crash_partition``/``crash_time_us`` config
overrides still work and compile to exactly this event), then uses
:func:`repro.build` (rather than :func:`repro.run`) to keep a handle on the
cluster, so the post-run recovery state of §5.2 can be inspected: failure
detection by the membership service, leader re-election, watermark agreement
(every partition publishes its latest partition watermark, the maximum wins),
rollback of the transactions above the agreed watermark, and resumption of
normal processing.

Run with:  python examples/failure_recovery.py
"""

import repro


def main() -> None:
    spec = repro.ScenarioSpec(
        protocol="primo",
        workload="ycsb",
        scale="small",
        config_overrides={
            "n_partitions": 4,
            "workers_per_partition": 2,
            "inflight_per_worker": 2,
            "duration_us": 60_000.0,
            "warmup_us": 10_000.0,
            "epoch_length_us": 5_000.0,
            "heartbeat_interval_us": 1_000.0,
            "heartbeat_timeout_us": 5_000.0,
        },
        workload_overrides={"keys_per_partition": 10_000},
        # Kill partition 2's leader at t = 40 ms; see `--list faults` for the
        # other registered fault kinds (delay windows, partitions, skew, ...).
        faults=[repro.fault("crash", at_us=40_000.0, target=2)],
    )
    cluster = repro.build(spec)
    result = cluster.run()

    print("Primo run with a partition-leader crash at t = 40 ms")
    print("-" * 72)
    print(f"committed transactions       : {result.committed}")
    print(f"aborted (conflict) attempts  : {result.aborted}")
    print(f"crash-induced aborts         : {result.metrics.crash_aborted}")
    print(f"crash-abort rate             : {result.crash_abort_rate:.2%}")
    print(f"throughput                   : {result.throughput_ktps:.1f} kTPS")
    print()
    counters = result.metrics.counters.as_dict()
    print("Recovery protocol trace")
    print("-" * 72)
    print(f"crashes injected             : {counters.get('crashes_injected', 0)}")
    print(f"recoveries completed         : {counters.get('recoveries_completed', 0)}")
    print(f"transactions rolled back     : {counters.get('recovery_rolled_back', 0)}")
    print(f"writes re-delivered          : {counters.get('recovery_redelivered', 0)}")
    term = cluster.membership.current_term
    print(f"recovery TERM-ID             : {term}")
    print(f"published partition marks    : {cluster.membership.published_watermarks(term)}")
    print(f"agreed global watermark      : {cluster.membership.agreed_global_watermark(term)}")
    print()
    print("Transactions whose results had already been returned (ts below the")
    print("agreed watermark) survive the crash; everything above it is rolled")
    print("back and the partition resumes with a consistent prefix (§5.2).")


if __name__ == "__main__":
    main()
