#!/usr/bin/env python3
"""Quickstart: run Primo and the strongest 2PC baseline on YCSB.

Builds a 4-partition simulated cluster, runs the default medium-contention
YCSB mix under Primo (WCF + watermark group commit) and under Sundial
(TicToc + 2PC + COCO group commit), and prints throughput, abort rate and
latency side by side — the small-scale analogue of the paper's Figure 4a.

Run with:  python examples/quickstart.py
"""

from repro import Cluster, SystemConfig, YCSBConfig, YCSBWorkload


def run_protocol(protocol: str) -> None:
    config = SystemConfig.for_protocol(
        protocol,
        n_partitions=4,
        workers_per_partition=2,
        inflight_per_worker=2,
        duration_us=40_000.0,   # 40 ms of simulated time
        warmup_us=10_000.0,
    )
    workload = YCSBWorkload(YCSBConfig(keys_per_partition=20_000, zipf_theta=0.6))
    result = Cluster(config, workload).run()
    print(
        f"{protocol:8s}  {result.throughput_ktps:8.1f} kTPS   "
        f"abort {result.abort_rate:6.2%}   "
        f"latency {result.mean_latency_ms:6.2f} ms (p99 {result.p99_latency_ms:.2f} ms)"
    )


def main() -> None:
    print("YCSB, 4 partitions, skew 0.6, 20% distributed transactions")
    print("-" * 72)
    for protocol in ("sundial", "primo"):
        run_protocol(protocol)
    print()
    print("Primo removes the two 2PC round trips from the contention footprint,")
    print("which is where the throughput difference comes from (paper Fig. 4).")


if __name__ == "__main__":
    main()
