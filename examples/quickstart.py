#!/usr/bin/env python3
"""Quickstart: run Primo and the strongest 2PC baseline on YCSB.

Declares one :class:`repro.ScenarioSpec` per protocol — the package's single
entry point — and runs the default medium-contention YCSB mix under Primo
(WCF + watermark group commit) and under Sundial (TicToc + 2PC + COCO group
commit), printing throughput, abort rate and latency side by side — the
small-scale analogue of the paper's Figure 4a.

A spec validates eagerly: misspell ``"primo"`` or ``"zipf_theta"`` below and
the script fails on the ScenarioSpec line with a did-you-mean suggestion,
before any simulation starts.

Run with:  python examples/quickstart.py
"""

import repro


def run_protocol(protocol: str) -> None:
    spec = repro.ScenarioSpec(
        protocol=protocol,
        workload="ycsb",
        scale="small",
        config_overrides={
            "n_partitions": 4,
            "workers_per_partition": 2,
            "inflight_per_worker": 2,
            "duration_us": 40_000.0,   # 40 ms of simulated time
            "warmup_us": 10_000.0,
        },
        workload_overrides={"keys_per_partition": 20_000, "zipf_theta": 0.6},
    )
    result = repro.run(spec)
    print(
        f"{protocol:8s}  {result.throughput_ktps:8.1f} kTPS   "
        f"abort {result.abort_rate:6.2%}   "
        f"latency {result.mean_latency_ms:6.2f} ms (p99 {result.p99_latency_ms:.2f} ms)"
    )


def main() -> None:
    print("YCSB, 4 partitions, skew 0.6, 20% distributed transactions")
    print("-" * 72)
    for protocol in ("sundial", "primo"):
        run_protocol(protocol)
    print()
    print("Primo removes the two 2PC round trips from the contention footprint,")
    print("which is where the throughput difference comes from (paper Fig. 4).")


if __name__ == "__main__":
    main()
