#!/usr/bin/env python3
"""Contention sweep plus the analytical model of Appendix A.

Uses :func:`repro.scenarios.sweep` to expand one base
:class:`repro.ScenarioSpec` into the (protocol × skew) grid of the paper's
contention study (Fig. 6), runs every point, then evaluates the closed-form
conflict-rate model of Appendix A over the read ratio to show where the model
predicts Primo's advantage to disappear (read-heavy, mostly-distributed
workloads).

Run with:  python examples/contention_sweep.py
"""

import repro
from repro import AnalysisParameters, ConflictRateModel

SKEWS = (0.0, 0.4, 0.6, 0.8)
PROTOCOLS = ("primo", "sundial")


def main() -> None:
    base = repro.ScenarioSpec(
        protocol="primo",
        workload="ycsb",
        scale="small",
        config_overrides={
            "n_partitions": 4,
            "workers_per_partition": 2,
            "inflight_per_worker": 2,
            "duration_us": 25_000.0,
            "warmup_us": 6_000.0,
        },
        workload_overrides={"keys_per_partition": 20_000},
    )
    # One validated spec per (protocol, skew) pair; ``zipf_theta`` is routed
    # to the workload config, ``protocol`` to the spec field.
    grid = repro.sweep(base, protocol=list(PROTOCOLS), zipf_theta=list(SKEWS))
    results = {
        (spec.protocol, dict(spec.workload_overrides)["zipf_theta"]): repro.run(spec)
        for spec in grid
    }

    print("Measured: YCSB contention sweep (paper Fig. 6)")
    print("-" * 72)
    print(f"{'skew':>6} {'primo kTPS':>12} {'sundial kTPS':>14} {'ratio':>8} "
          f"{'primo abort':>12} {'sundial abort':>14}")
    for skew in SKEWS:
        primo = results[("primo", skew)]
        sundial = results[("sundial", skew)]
        print(
            f"{skew:>6.2f} {primo.throughput_ktps:>12.1f} {sundial.throughput_ktps:>14.1f} "
            f"{primo.throughput_tps / max(sundial.throughput_tps, 1e-9):>7.2f}x "
            f"{primo.abort_rate:>12.2%} {sundial.abort_rate:>14.2%}"
        )

    print()
    print("Analytical: conflict-rate model of Appendix A (R_u = 0.6)")
    print("-" * 72)
    print(f"{'read ratio':>10} {'CR_2PC':>10} {'CR_Primo':>10} {'primo wins':>12}")
    for row in ConflictRateModel.sweep_read_ratio(
        AnalysisParameters(), [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0]
    ):
        print(
            f"{row['read_ratio']:>10.2f} {row['cr_2pc']:>10.4f} "
            f"{row['cr_primo']:>10.4f} {str(row['primo_wins']):>12}"
        )
    print()
    print("The measured margin grows with contention, while the model shows the")
    print("read-heavy corner (R_r > 0.8) where Primo would fall back to 2PC (§4.3).")


if __name__ == "__main__":
    main()
