#!/usr/bin/env python3
"""Contention sweep plus the analytical model of Appendix A.

Sweeps the YCSB Zipf skew (the paper's contention knob, Fig. 6) for Primo and
Sundial on the simulator, then evaluates the closed-form conflict-rate model
of Appendix A over the read ratio to show where the model predicts Primo's
advantage to disappear (read-heavy, mostly-distributed workloads).

Run with:  python examples/contention_sweep.py
"""

from repro import (
    AnalysisParameters,
    Cluster,
    ConflictRateModel,
    SystemConfig,
    YCSBConfig,
    YCSBWorkload,
)


def run(protocol: str, skew: float) -> tuple[float, float]:
    config = SystemConfig.for_protocol(
        protocol,
        n_partitions=4,
        workers_per_partition=2,
        inflight_per_worker=2,
        duration_us=25_000.0,
        warmup_us=6_000.0,
    )
    workload = YCSBWorkload(YCSBConfig(keys_per_partition=20_000, zipf_theta=skew))
    result = Cluster(config, workload).run()
    return result.throughput_ktps, result.abort_rate


def main() -> None:
    print("Measured: YCSB contention sweep (paper Fig. 6)")
    print("-" * 72)
    print(f"{'skew':>6} {'primo kTPS':>12} {'sundial kTPS':>14} {'ratio':>8} "
          f"{'primo abort':>12} {'sundial abort':>14}")
    for skew in (0.0, 0.4, 0.6, 0.8):
        primo_tps, primo_abort = run("primo", skew)
        sundial_tps, sundial_abort = run("sundial", skew)
        print(
            f"{skew:>6.2f} {primo_tps:>12.1f} {sundial_tps:>14.1f} "
            f"{primo_tps / max(sundial_tps, 1e-9):>7.2f}x "
            f"{primo_abort:>12.2%} {sundial_abort:>14.2%}"
        )

    print()
    print("Analytical: conflict-rate model of Appendix A (R_u = 0.6)")
    print("-" * 72)
    print(f"{'read ratio':>10} {'CR_2PC':>10} {'CR_Primo':>10} {'primo wins':>12}")
    for row in ConflictRateModel.sweep_read_ratio(
        AnalysisParameters(), [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0]
    ):
        print(
            f"{row['read_ratio']:>10.2f} {row['cr_2pc']:>10.4f} "
            f"{row['cr_primo']:>10.4f} {str(row['primo_wins']):>12}"
        )
    print()
    print("The measured margin grows with contention, while the model shows the")
    print("read-heavy corner (R_r > 0.8) where Primo would fall back to 2PC (§4.3).")


if __name__ == "__main__":
    main()
