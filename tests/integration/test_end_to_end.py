"""End-to-end directional checks of the paper's main claims.

These are scaled-down versions of the evaluation: they assert *directions*
(who wins, how latency compares), not absolute numbers, so they stay robust
to the small configurations used in CI.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import SystemConfig
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload


def run(protocol, durability=None, ycsb=None, **overrides):
    config = SystemConfig.for_protocol(
        protocol,
        **({"durability": durability} if durability else {}),
        n_partitions=overrides.pop("n_partitions", 4),
        workers_per_partition=overrides.pop("workers_per_partition", 2),
        inflight_per_worker=overrides.pop("inflight_per_worker", 2),
        duration_us=overrides.pop("duration_us", 20_000.0),
        warmup_us=overrides.pop("warmup_us", 5_000.0),
        seed=overrides.pop("seed", 11),
        **overrides,
    )
    params = dict(keys_per_partition=5_000, zipf_theta=0.6, distributed_pct=0.2)
    params.update(ycsb or {})
    cluster = Cluster(config, YCSBWorkload(YCSBConfig(**params)))
    return cluster.run()


@pytest.fixture(scope="module")
def overall_results():
    """Shared runs for the headline-comparison assertions."""
    return {
        "primo": run("primo"),
        "sundial": run("sundial"),
        "2pl_nw": run("2pl_nw"),
        "silo": run("silo"),
    }


def test_primo_beats_every_2pc_baseline_on_default_ycsb(overall_results):
    primo = overall_results["primo"].throughput_tps
    for name in ("sundial", "2pl_nw", "silo"):
        assert primo > overall_results[name].throughput_tps, (
            f"Primo should outperform {name} on the default YCSB mix"
        )


def test_primo_improvement_factor_is_in_a_plausible_range(overall_results):
    """The paper reports 1.91x over the best baseline on YCSB; accept a broad band."""
    best_baseline = max(
        overall_results[name].throughput_tps for name in ("sundial", "2pl_nw", "silo")
    )
    factor = overall_results["primo"].throughput_tps / best_baseline
    assert 1.1 < factor < 4.0


def test_primo_has_lower_abort_rate_than_2pl(overall_results):
    assert overall_results["primo"].abort_rate <= overall_results["2pl_nw"].abort_rate


def test_group_commit_latency_is_millisecond_scale(overall_results):
    """Both Primo (WM) and the COCO-based baselines trade latency for throughput."""
    assert 1.0 < overall_results["primo"].mean_latency_ms < 60.0
    assert 1.0 < overall_results["sundial"].mean_latency_ms < 60.0


def test_contention_amplifies_primos_advantage():
    """Fig. 6: Primo's margin over a 2PC-based scheme grows with the Zipf skew."""
    low = {"zipf_theta": 0.0, "keys_per_partition": 5_000}
    high = {"zipf_theta": 0.95, "keys_per_partition": 2_000}
    low_ratio = (
        run("primo", ycsb=low).throughput_tps
        / run("2pl_nw", ycsb=low).throughput_tps
    )
    high_ratio = (
        run("primo", ycsb=high).throughput_tps
        / run("2pl_nw", ycsb=high).throughput_tps
    )
    assert high_ratio > low_ratio


def test_write_heavy_workloads_favour_primo():
    """Fig. 8: baselines degrade with more writes, Primo stays comparatively stable."""
    primo_heavy = run("primo", ycsb={"write_pct": 0.9})
    sundial_heavy = run("sundial", ycsb={"write_pct": 0.9})
    assert primo_heavy.throughput_tps > sundial_heavy.throughput_tps * 1.2


def test_wm_scales_better_than_coco_with_many_partitions():
    """Fig. 14: with WCF fixed, the WM scheme beats COCO at higher partition counts."""
    wm = run("primo", n_partitions=8, workers_per_partition=2)
    coco = run("primo", durability="coco", n_partitions=8, workers_per_partition=2)
    assert wm.throughput_tps >= coco.throughput_tps


def test_wm_throughput_is_insensitive_to_watermark_message_delay():
    """Fig. 13a: delaying one partition's watermark broadcasts leaves throughput intact."""
    config = SystemConfig.for_protocol(
        "primo", n_partitions=4, workers_per_partition=2, inflight_per_worker=2,
        duration_us=20_000.0, warmup_us=5_000.0, seed=11,
    )
    workload = YCSBWorkload(YCSBConfig(keys_per_partition=5_000))
    baseline_cluster = Cluster(config, workload)
    baseline = baseline_cluster.run()

    delayed_cluster = Cluster(config.with_overrides(), YCSBWorkload(YCSBConfig(keys_per_partition=5_000)))
    delayed_cluster.durability.set_message_delay(1, 10_000.0)
    delayed = delayed_cluster.run()
    assert delayed.throughput_tps > baseline.throughput_tps * 0.7
    # Latency, however, must rise because the global watermark lags.
    assert delayed.mean_latency_ms > baseline.mean_latency_ms


def test_tapir_latency_vs_primo_throughput_tradeoff():
    """Fig. 15: Primo wins on throughput, TAPIR wins on latency (1 worker/server)."""
    primo = run("primo", workers_per_partition=1, inflight_per_worker=3,
                ycsb={"distributed_pct": 0.8, "zipf_theta": 0.9})
    tapir = run("tapir", workers_per_partition=1, inflight_per_worker=3,
                ycsb={"distributed_pct": 0.8, "zipf_theta": 0.9})
    assert primo.throughput_tps > tapir.throughput_tps
    assert tapir.mean_latency_ms < primo.mean_latency_ms
