"""Integration tests for the million-key scale tiers and the columnar backend.

Pins the plumbing the ``xlarge``/``web`` tiers depend on: the tiers are
registered scales, fixed-schema workloads get columnar tables (and TPC-C
keeps the dict reference), ``storage_backend="dict"`` forces a bit-identical
A/B run, and fault-free runs drop log history (the other half of the memory
budget) while faulted runs keep it for recovery.
"""

import pytest

from repro.scales import SCALES, resolve_scale
from repro.scenario import ScenarioSpec, build, run
from repro.storage.columnar import ColumnarTable
from repro.storage.table import Table
from repro.workloads.ycsb import TABLE as YCSB_TABLE


def tiny(workload: str, **kwargs) -> ScenarioSpec:
    return ScenarioSpec(protocol="primo", workload=workload, scale="tiny", **kwargs)


# -- tier registration ---------------------------------------------------------

def test_million_key_tiers_are_registered_scales():
    assert "xlarge" in SCALES and "web" in SCALES
    xlarge, web = resolve_scale("xlarge"), resolve_scale("web")
    # 4 partitions x keys_per_partition = 1M / 5M YCSB keys.
    assert xlarge.ycsb_keys_per_partition == 250_000
    assert web.ycsb_keys_per_partition == 1_250_000
    # 200 / 500 concurrent clients across the default 4 partitions.
    assert 4 * xlarge.workers_per_partition * xlarge.inflight_per_worker == 200
    assert 4 * web.workers_per_partition * web.inflight_per_worker == 500


def test_scenario_spec_accepts_the_new_tiers():
    spec = ScenarioSpec(protocol="primo", workload="ycsb", scale="xlarge")
    assert resolve_scale(spec.scale).name == "xlarge"


# -- backend selection ---------------------------------------------------------

def test_fixed_schema_workloads_get_columnar_tables():
    cluster = build(tiny("ycsb"))
    for server in cluster.servers.values():
        assert isinstance(server.store.table(YCSB_TABLE), ColumnarTable)
    cluster = build(tiny("smallbank"))
    for server in cluster.servers.values():
        assert isinstance(server.store.table("checking"), ColumnarTable)
        assert isinstance(server.store.table("savings"), ColumnarTable)


def test_dynamic_schema_workload_keeps_dict_tables():
    cluster = build(tiny("tpcc"))
    for server in cluster.servers.values():
        for name in server.store.table_names():
            assert isinstance(server.store.table(name), Table), name


def test_dict_override_forces_reference_tables_everywhere():
    cluster = build(tiny("ycsb", config_overrides={"storage_backend": "dict"}))
    for server in cluster.servers.values():
        assert isinstance(server.store.table(YCSB_TABLE), Table)


def test_unknown_storage_backend_rejected():
    with pytest.raises(ValueError, match="storage_backend"):
        run(tiny("ycsb", config_overrides={"storage_backend": "rowstore"}))


# -- backend parity ------------------------------------------------------------

@pytest.mark.parametrize("workload", ["ycsb", "smallbank"])
def test_columnar_and_dict_backends_are_bit_identical(workload):
    """The columnar backend must not change simulation semantics at all."""
    auto = run(tiny(workload)).to_json_dict()
    ref = run(tiny(workload,
                   config_overrides={"storage_backend": "dict"})).to_json_dict()
    # The embedded config legitimately differs by the one knob under test.
    assert auto["extra"]["config"].pop("storage_backend") == "auto"
    assert ref["extra"]["config"].pop("storage_backend") == "dict"
    assert auto == ref


# -- log retention (the other half of the memory budget) -----------------------

def test_fault_free_runs_drop_log_history():
    cluster = build(tiny("ycsb"))
    cluster.run()
    for server in cluster.servers.values():
        assert not server.log.retain_history
        assert not server.replication.retain_entries
        with pytest.raises(RuntimeError, match="log history was not retained"):
            server.log.records()


def test_faulted_runs_keep_log_history_for_recovery():
    spec = tiny("ycsb", faults=[{"kind": "crash", "at_us": 4_000, "target": 1}])
    cluster = build(spec)
    for server in cluster.servers.values():
        assert server.log.retain_history
        assert server.replication.retain_entries
    cluster.run()
    # The recovery sweep consumed the retained history without tripping the
    # fault-free guard.
    assert cluster.servers[1].log.records() is not None
