"""Fixed-seed determinism regression tests.

The perf work on the simulation substrate (slotted events, the zero-delay
fast-dispatch lane, the network delivery fast paths) must not change *what*
is simulated — only how fast.  These tests pin that down two ways:

* run-to-run: the same configuration run twice in one process produces
  byte-identical commit/abort counts and final clock; and
* golden values: a fixed-seed tiny YCSB run must keep producing the exact
  numbers recorded when the fast-dispatch lane landed.  Seed-derivation goes
  through :func:`repro.sim.randgen.stable_hash`, so these hold across
  interpreter processes (``PYTHONHASHSEED`` does not leak in).

If a PR changes these numbers it has changed event ordering or workload
sampling semantics — that may be intentional, but it must be explicit:
re-capture the goldens in the same commit and say so in the PR description.
``scripts/bench_gate.py --check`` enforces the same invariant against the
committed ``BENCH_substrate.json``.
"""

import pytest

from repro.arrivals import arrival
from repro.cluster.cluster import Cluster
from tests.conftest import run_tiny, tiny_config, tiny_ycsb

# protocol -> (committed, aborted, final simulated time).
GOLDEN = {
    "primo": (420, 43, 23_000.0),
    "sundial": (254, 14, 23_000.0),
    "2pl_nw": (62, 16, 23_000.0),
}

# Closed loop with 1 ms interactive think time (arrival={"kind": "closed",
# "think_time_us": 1000}) over the same tiny configuration: protocol ->
# (committed, aborted, final simulated time).  Think time throttles each
# worker fiber, so the counts sit far below the back-to-back GOLDEN ones.
THINK_TIME_GOLDEN = {
    "primo": (57, 0, 23_000.0),
    "sundial": (47, 1, 23_000.0),
    "2pl_nw": (45, 6, 23_000.0),
}

# Open-loop Poisson arrivals at 50k tps over the same tiny configuration:
# protocol -> (committed, aborted, arrivals offered, final simulated time).
# The offered count is identical across protocols because the arrival streams
# draw their gaps from their own seed-derived RNGs, independent of service.
OPENLOOP_GOLDEN = {
    "primo": (449, 42, 875, 23_000.0),
    "sundial": (264, 15, 875, 23_000.0),
    "2pl_nw": (193, 30, 875, 23_000.0),
}


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_fixed_seed_run_matches_golden_counts(protocol):
    cluster, result = run_tiny(protocol)
    committed, aborted, final_now = GOLDEN[protocol]
    assert result.metrics.committed == committed
    assert result.metrics.aborted == aborted
    assert cluster.env.now == final_now


@pytest.mark.parametrize("protocol", sorted(THINK_TIME_GOLDEN))
def test_fixed_seed_think_time_run_matches_golden_counts(protocol):
    cluster = Cluster(tiny_config(protocol), tiny_ycsb(),
                      arrival=arrival("closed", think_time_us=1_000.0))
    result = cluster.run()
    committed, aborted, final_now = THINK_TIME_GOLDEN[protocol]
    assert result.metrics.committed == committed
    assert result.metrics.aborted == aborted
    assert cluster.env.now == final_now


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_zero_think_time_stays_bit_identical_to_the_closed_loop(protocol):
    """The think-time knob at 0 must not perturb the legacy worker loop."""
    cluster = Cluster(tiny_config(protocol), tiny_ycsb(),
                      arrival=arrival("closed", think_time_us=0.0))
    result = cluster.run()
    committed, aborted, final_now = GOLDEN[protocol]
    assert cluster.arrival is None  # the trivial closed form normalizes away
    assert result.metrics.committed == committed
    assert result.metrics.aborted == aborted
    assert cluster.env.now == final_now


@pytest.mark.parametrize("protocol", sorted(OPENLOOP_GOLDEN))
def test_fixed_seed_open_loop_run_matches_golden_counts(protocol):
    cluster = Cluster(tiny_config(protocol), tiny_ycsb(),
                      arrival=arrival("poisson", 50_000))
    result = cluster.run()
    committed, aborted, offered, final_now = OPENLOOP_GOLDEN[protocol]
    assert result.metrics.committed == committed
    assert result.metrics.aborted == aborted
    assert result.metrics.counters.get("arrivals_offered") == offered
    assert cluster.env.now == final_now


def test_same_config_is_deterministic_within_a_process():
    first_cluster, first = run_tiny("primo")
    second_cluster, second = run_tiny("primo")
    assert first.metrics.committed == second.metrics.committed
    assert first.metrics.aborted == second.metrics.aborted
    assert first.network_messages == second.network_messages
    assert first_cluster.env.now == second_cluster.env.now


def test_seed_changes_the_outcome():
    """Guards against the seed being silently ignored somewhere."""
    _, baseline = run_tiny("primo")
    _, reseeded = run_tiny("primo", seed=12345)
    assert (baseline.metrics.committed, baseline.metrics.aborted) != (
        reseeded.metrics.committed,
        reseeded.metrics.aborted,
    )


# Replication-layer fault kinds and geo topologies over the same tiny primo
# configuration: scenario -> (committed, aborted, crash_aborted, final time).
# ``replicas_per_partition=2`` leaves a single follower per partition, so the
# follower faults sit on the quorum critical path instead of hiding behind a
# faster sibling.  Counter expectations pin that each fault actually fired.
REPLICATION_FAULT_GOLDEN = {
    "follower_lag": (450, 43, 0, 23_000.0),
    "follower_crash": (415, 44, 0, 23_000.0),
    "leader_flap": (271, 33, 0, 23_000.0),
    "stale_read": (420, 43, 0, 23_000.0),
}

GEO_GOLDEN = (263, 27, 0, 23_000.0)


def _replication_fault_cluster(kind):
    from repro.faults import FaultPlan, fault

    if kind == "follower_lag":
        plan = FaultPlan(events=(
            fault("follower_lag", at_us=3_000.0, duration_us=6_000.0,
                  target=0, follower=0, delay_us=400.0),
        ))
        return Cluster(tiny_config("primo", replicas_per_partition=2),
                       tiny_ycsb(), faults=plan)
    if kind == "follower_crash":
        # A windowed crash on partition 0 plus a crash on partition 1 whose
        # stall is cut short by an explicit follower_recover at 8 ms.
        plan = FaultPlan(events=(
            fault("follower_crash", at_us=3_000.0, duration_us=4_000.0,
                  target=0, follower=0),
            fault("follower_crash", at_us=4_000.0, duration_us=8_000.0,
                  target=1, follower=0),
            fault("follower_recover", at_us=8_000.0, target=1, follower=0),
        ))
        return Cluster(tiny_config("primo", replicas_per_partition=2),
                       tiny_ycsb(), faults=plan)
    if kind == "leader_flap":
        plan = FaultPlan(events=(
            fault("leader_flap", at_us=3_000.0, target=1,
                  cycles=2, interval_us=5_000.0),
        ))
        return Cluster(
            tiny_config("primo", heartbeat_interval_us=500.0,
                        heartbeat_timeout_us=2_000.0),
            tiny_ycsb(), faults=plan)
    assert kind == "stale_read"
    from repro.faults import ALL_PARTITIONS

    plan = FaultPlan(events=(
        fault("stale_read", at_us=3_000.0, duration_us=8_000.0,
              target=ALL_PARTITIONS, fraction=0.3),
    ))
    return Cluster(tiny_config("primo"), tiny_ycsb(), faults=plan)


@pytest.mark.parametrize("kind", sorted(REPLICATION_FAULT_GOLDEN))
def test_fixed_seed_replication_fault_runs_match_golden_counts(kind):
    cluster = _replication_fault_cluster(kind)
    result = cluster.run()
    committed, aborted, crash_aborted, final_now = REPLICATION_FAULT_GOLDEN[kind]
    assert result.metrics.committed == committed
    assert result.metrics.aborted == aborted
    assert result.metrics.crash_aborted == crash_aborted
    assert cluster.env.now == final_now
    counters = result.metrics.counters
    if kind == "follower_crash":
        assert counters.get("follower_crashes_injected") == 2
    elif kind == "leader_flap":
        assert counters.get("leader_flaps") == 2
        assert counters.get("crashes_injected") == 2
        assert counters.get("recoveries_completed") == 2
    elif kind == "stale_read":
        assert counters.get("stale_reads") == 662
    # Fault-plan runs carry the degradation timeline; its totals track the
    # surviving (non-crash-aborted) commits exactly.
    assert result.timeline is not None
    assert result.timeline.total_count == committed


def test_fixed_seed_geo_topology_run_matches_golden_counts():
    from repro.sim.topology import RegionTopology

    topology = RegionTopology(
        regions=("east", "west"),
        latency_us=((5.0, 120.0), (120.0, 5.0)),
        partition_regions=("east", "west"),
        follower_regions=(("east", "west"),),
    )
    cluster = Cluster(tiny_config("primo"), tiny_ycsb(), topology=topology)
    result = cluster.run()
    assert (result.metrics.committed, result.metrics.aborted,
            result.metrics.crash_aborted, cluster.env.now) == GEO_GOLDEN
    # Topology changes the simulated timing, so the counts must differ from
    # the scalar-latency golden (which pins the no-topology fast path).
    assert (result.metrics.committed, result.metrics.aborted) != GOLDEN["primo"][:2]
    # Fault-free runs — topology or not — record no timeline.
    assert result.timeline is None
