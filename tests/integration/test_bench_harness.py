"""Smoke tests of the benchmark harness (runner, sweeps, CLI plumbing)."""

import pytest

from repro.bench import ALL_EXPERIMENTS, SCALES, build_workload, run_config
from repro.bench.runner import TINY_SCALE, sweep_values
from repro.bench.report import format_ratio, print_header, print_table


#: An even smaller scale than "small" so harness tests run in a few seconds.
TEST_SCALE = TINY_SCALE


def test_all_figures_are_registered():
    expected = {f"fig{i:02d}" for i in range(4, 16)} | {"appendix", "openloop", "storm"}
    assert set(ALL_EXPERIMENTS) == expected
    # SCALES is a live view of the scale registry; the built-in presets
    # (including the test-oriented "tiny") are always present.
    assert {"tiny", "small", "medium", "paper"} <= set(SCALES)


def test_figures_registry_mirrors_all_experiments():
    from repro.bench import FIGURES

    assert set(FIGURES) == set(ALL_EXPERIMENTS)
    for name, spec in FIGURES.items():
        assert spec.name == name
        assert callable(spec.plan) and callable(spec.render)


def test_every_figure_plan_declares_valid_cells():
    from repro.bench import FIGURES

    for name, spec in FIGURES.items():
        cells = spec.plan(TEST_SCALE)
        assert isinstance(cells, list)
        keys = [cell.key for cell in cells]
        assert len(keys) == len(set(keys)), f"{name} has duplicate cell keys"
        for cell in cells:
            assert cell.figure == name
            assert cell.cache_key()  # hashable, stable spec


def test_figure_functions_render_from_preexecuted_results():
    from repro.bench import FIGURES
    from repro.bench.orchestrator import run_cells

    cells = FIGURES["fig09"].plan(TEST_SCALE)
    outcome = run_cells(cells, jobs=1)
    data = ALL_EXPERIMENTS["fig09"](TEST_SCALE, results=outcome.by_key(cells))
    inline = ALL_EXPERIMENTS["fig09"](TEST_SCALE)
    assert data == inline  # rendering is a pure function of the results


def test_run_config_returns_a_result_for_every_protocol():
    result = run_config("primo", TEST_SCALE, workload="ycsb")
    assert result.protocol == "primo"
    assert result.committed > 0


def test_run_config_applies_workload_and_config_overrides():
    result = run_config(
        "sundial", TEST_SCALE, workload="ycsb",
        workload_overrides={"zipf_theta": 0.0},
        n_partitions=2,
    )
    assert result.n_partitions == 2


def test_build_workload_supports_all_four_workloads():
    assert build_workload(TEST_SCALE, "ycsb").name == "ycsb"
    assert build_workload(TEST_SCALE, "tpcc").name == "tpcc"
    assert build_workload(TEST_SCALE, "tatp").name == "tatp"
    assert build_workload(TEST_SCALE, "smallbank").name == "smallbank"
    with pytest.raises(ValueError):
        build_workload(TEST_SCALE, "tpch")


def test_sweep_values_keeps_endpoints():
    values = [1, 2, 4, 8, 12, 16, 20]
    thinned = sweep_values(values, TEST_SCALE)
    assert thinned[0] == 1 and thinned[-1] == 20
    assert len(thinned) == TEST_SCALE.sweep_points
    assert sweep_values([1, 2], TEST_SCALE) == [1, 2]


def test_report_helpers_do_not_crash(capsys):
    print_header("Demo", "paper note")
    print_table(["a", "b"], [[1, 2.5], ["x", 10_000.0]])
    assert format_ratio(1.914) == "1.91x"
    captured = capsys.readouterr()
    assert "Demo" in captured.out and "paper note" in captured.out


def test_appendix_experiment_matches_paper_conclusion():
    rows = ALL_EXPERIMENTS["appendix"](TEST_SCALE)["rows"]
    by_ratio = {row["read_ratio"]: row for row in rows}
    assert by_ratio[0.4]["primo_wins"] is True
    assert by_ratio[1.0]["primo_wins"] is False


def test_blind_write_experiment_runs_at_test_scale(capsys):
    data = ALL_EXPERIMENTS["fig09"](TEST_SCALE)
    assert len(data["primo"]) == len(data["ratios"]) == TEST_SCALE.sweep_points
    assert all(v >= 0 for v in data["primo"])


def test_logging_scheme_experiment_covers_all_schemes(capsys):
    data = ALL_EXPERIMENTS["fig11"](TEST_SCALE, protocols=("primo",))
    assert set(data["throughput_ktps"]["primo"]) == {"clv", "coco", "wm"}


def test_cli_entry_point_runs_a_single_figure(capsys):
    from repro.bench.__main__ import main

    assert main(["--figure", "appendix", "--scale", "small"]) == 0
    out = capsys.readouterr().out
    assert "Appendix A" in out
