"""Smoke tests of the benchmark harness (runner, sweeps, CLI plumbing)."""

import pytest

from repro.bench import ALL_EXPERIMENTS, SCALES, build_workload, run_config
from repro.bench.runner import BenchScale, sweep_values
from repro.bench.report import format_ratio, print_header, print_table


#: An even smaller scale than "small" so harness tests run in a few seconds.
TEST_SCALE = BenchScale(
    name="test",
    duration_us=6_000.0,
    warmup_us=2_000.0,
    workers_per_partition=1,
    inflight_per_worker=2,
    ycsb_keys_per_partition=2_000,
    tpcc_warehouses_per_partition=2,
    tpcc_items=50,
    tpcc_customers_per_district=10,
    sweep_points=2,
)


def test_all_figures_are_registered():
    expected = {f"fig{i:02d}" for i in range(4, 16)} | {"appendix"}
    assert set(ALL_EXPERIMENTS) == expected
    assert set(SCALES) == {"small", "medium", "paper"}


def test_run_config_returns_a_result_for_every_protocol():
    result = run_config("primo", TEST_SCALE, workload="ycsb")
    assert result.protocol == "primo"
    assert result.committed > 0


def test_run_config_applies_workload_and_config_overrides():
    result = run_config(
        "sundial", TEST_SCALE, workload="ycsb",
        workload_overrides={"zipf_theta": 0.0},
        n_partitions=2,
    )
    assert result.n_partitions == 2


def test_build_workload_supports_all_four_workloads():
    assert build_workload(TEST_SCALE, "ycsb").name == "ycsb"
    assert build_workload(TEST_SCALE, "tpcc").name == "tpcc"
    assert build_workload(TEST_SCALE, "tatp").name == "tatp"
    assert build_workload(TEST_SCALE, "smallbank").name == "smallbank"
    with pytest.raises(ValueError):
        build_workload(TEST_SCALE, "tpch")


def test_sweep_values_keeps_endpoints():
    values = [1, 2, 4, 8, 12, 16, 20]
    thinned = sweep_values(values, TEST_SCALE)
    assert thinned[0] == 1 and thinned[-1] == 20
    assert len(thinned) == TEST_SCALE.sweep_points
    assert sweep_values([1, 2], TEST_SCALE) == [1, 2]


def test_report_helpers_do_not_crash(capsys):
    print_header("Demo", "paper note")
    print_table(["a", "b"], [[1, 2.5], ["x", 10_000.0]])
    assert format_ratio(1.914) == "1.91x"
    captured = capsys.readouterr()
    assert "Demo" in captured.out and "paper note" in captured.out


def test_appendix_experiment_matches_paper_conclusion():
    rows = ALL_EXPERIMENTS["appendix"](TEST_SCALE)["rows"]
    by_ratio = {row["read_ratio"]: row for row in rows}
    assert by_ratio[0.4]["primo_wins"] is True
    assert by_ratio[1.0]["primo_wins"] is False


def test_blind_write_experiment_runs_at_test_scale(capsys):
    data = ALL_EXPERIMENTS["fig09"](TEST_SCALE)
    assert len(data["primo"]) == len(data["ratios"]) == TEST_SCALE.sweep_points
    assert all(v >= 0 for v in data["primo"])


def test_logging_scheme_experiment_covers_all_schemes(capsys):
    data = ALL_EXPERIMENTS["fig11"](TEST_SCALE, protocols=("primo",))
    assert set(data["throughput_ktps"]["primo"]) == {"clv", "coco", "wm"}


def test_cli_entry_point_runs_a_single_figure(capsys):
    from repro.bench.__main__ import main

    assert main(["--figure", "appendix", "--scale", "small"]) == 0
    out = capsys.readouterr().out
    assert "Appendix A" in out
