"""Tests for the watermark-based distributed group commit."""


from repro.commit.base import CRASH_ABORTED, DURABLE
from repro.core.watermark import WatermarkGroupCommit

from tests.conftest import run_tiny, tiny_config, tiny_ycsb
from repro.cluster.cluster import Cluster


def make_wm_cluster(**overrides):
    cluster = Cluster(tiny_config("primo", durability="wm", **overrides), tiny_ycsb())
    return cluster, cluster.durability


def test_partition_watermarks_are_monotone_and_global_watermark_is_min():
    cluster, result = run_tiny("primo", durability="wm")
    wm: WatermarkGroupCommit = cluster.durability
    for state in wm._states.values():
        assert state.wp >= 0.0
        assert state.wg == min(state.table.values())
        assert state.wg <= state.wp or state.wg <= max(state.table.values())


def test_transactions_become_durable_below_the_global_watermark():
    cluster, result = run_tiny("primo", durability="wm")
    assert result.committed > 0
    assert cluster.metrics.latency.count > 0
    # Everything acknowledged waited at most a few watermark intervals.
    assert cluster.metrics.latency.max <= cluster.config.epoch_length_us * 10


def test_executed_transaction_below_wg_is_acknowledged_immediately():
    cluster, wm = make_wm_cluster()
    server = cluster.servers[0]
    state = wm._states[0]
    state.wg = 100.0
    txn = server.new_transaction("t")
    txn.ts = 5.0
    event = wm.transaction_executed(server, txn)
    assert event.triggered and event.value == DURABLE


def test_executed_transaction_above_wg_waits_for_watermarks():
    cluster, wm = make_wm_cluster()
    server = cluster.servers[0]
    txn = server.new_transaction("t")
    txn.ts = 50.0
    event = wm.transaction_executed(server, txn)
    assert not event.triggered
    # Watermarks from every partition above the ts release it.
    for partition in range(cluster.config.n_partitions):
        wm._receive_watermark(0, partition, 60.0)
    assert event.triggered and event.value == DURABLE


def test_global_watermark_requires_every_partition():
    cluster, wm = make_wm_cluster()
    server = cluster.servers[0]
    txn = server.new_transaction("t")
    txn.ts = 50.0
    event = wm.transaction_executed(server, txn)
    wm._receive_watermark(0, 0, 100.0)   # only partition 0 has advanced
    assert not event.triggered
    wm._receive_watermark(0, 1, 70.0)
    assert event.triggered


def test_stale_watermark_messages_are_ignored():
    cluster, wm = make_wm_cluster()
    wm._receive_watermark(0, 1, 40.0)
    wm._receive_watermark(0, 1, 10.0)   # out-of-order/stale broadcast
    assert wm._states[0].table[1] == 40.0


def test_force_update_advances_an_idle_partition():
    cluster, wm = make_wm_cluster()
    state = wm._states[0]
    server = cluster.servers[0]
    state.table.update({1: 200.0})
    state.wp = 10.0
    wm._force_update(server, state)
    assert wm.stats["force_updates"] == 1
    assert server.ts_floor >= 200.0
    # With no active transactions and an empty log buffer the watermark jumps.
    assert state.wp >= 200.0


def test_force_update_does_not_touch_leading_partitions():
    cluster, wm = make_wm_cluster()
    state = wm._states[0]
    server = cluster.servers[0]
    state.table.update({1: 5.0})
    state.wp = 50.0
    wm._force_update(server, state)
    assert wm.stats["force_updates"] == 0


def test_resolve_after_crash_splits_pending_by_agreed_watermark():
    cluster, wm = make_wm_cluster()
    server = cluster.servers[0]
    events = []
    for ts in (10.0, 20.0, 30.0):
        txn = server.new_transaction("t")
        txn.ts = ts
        events.append((ts, wm.transaction_executed(server, txn)))
    outcome = wm.resolve_after_crash(agreed_wg=25.0)
    assert outcome == {"durable": 2, "crash_aborted": 1}
    for ts, event in events:
        assert event.triggered
        assert event.value == (DURABLE if ts < 25.0 else CRASH_ABORTED)


def test_watermark_computation_includes_unpersisted_log_records():
    cluster, wm = make_wm_cluster()
    server = cluster.servers[0]
    state = wm._states[0]
    server.highest_ts_seen = 500.0
    from repro.commit.logging import LogRecordKind
    server.log.append(LogRecordKind.WRITESET, txn_ts=42.0)
    candidate = wm._compute_wp(server, state)
    assert candidate <= 42.0
