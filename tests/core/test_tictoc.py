"""Tests for TicToc local execution (commit timestamps, validation, rts extension)."""

import pytest

from repro.txn.transaction import ReadEntry, Transaction, TxnId, WriteEntry
from repro.core.tictoc import compute_commit_ts

from tests.conftest import make_manual_cluster, run_txn


def make_txn() -> Transaction:
    return Transaction(tid=TxnId(1, 0), coordinator=0)


def read_entry(key, wts, rts, partition=0):
    return ReadEntry(partition=partition, table="kv", key=key, value={}, wts=wts, rts=rts)


def write_entry(key, partition=0):
    return WriteEntry(partition=partition, table="kv", key=key, updates={"v": 1})


def test_commit_ts_is_at_least_floor_plus_one():
    txn = make_txn()
    assert compute_commit_ts(txn, ts_floor=10.0) == 11.0


def test_commit_ts_respects_read_wts():
    txn = make_txn()
    txn.add_read(read_entry(1, wts=7.0, rts=9.0))
    assert compute_commit_ts(txn, ts_floor=0.0) == 7.0


def test_commit_ts_exceeds_written_record_rts():
    txn = make_txn()
    txn.add_read(read_entry(1, wts=3.0, rts=8.0))
    txn.add_write(write_entry(1))
    assert compute_commit_ts(txn, ts_floor=0.0) == 9.0


def test_commit_ts_takes_the_max_over_all_constraints():
    txn = make_txn()
    txn.add_read(read_entry(1, wts=3.0, rts=8.0))
    txn.add_read(read_entry(2, wts=20.0, rts=21.0))
    txn.add_write(write_entry(1))
    assert compute_commit_ts(txn, ts_floor=5.0) == 20.0


def test_local_read_only_transaction_commits():
    cluster = make_manual_cluster("primo")

    def logic(ctx):
        value = yield from ctx.read(0, "kv", 1)
        assert value == {"v": 0}

    committed, txn = run_txn(cluster, 0, logic)
    assert committed is True
    assert not txn.is_distributed


def test_local_rmw_installs_value_and_bumps_timestamps():
    cluster = make_manual_cluster("primo")

    def logic(ctx):
        value = yield from ctx.read(0, "kv", 5)
        yield from ctx.update(0, "kv", 5, {"v": value["v"] + 41})

    committed, txn = run_txn(cluster, 0, logic)
    assert committed is True
    record = cluster.servers[0].store.table("kv").get(5)
    assert record.value["v"] == 41
    assert record.wts == txn.ts == record.rts
    assert record.version == 1
    # Locks are fully released after commit.
    assert not cluster.servers[0].store.lock_manager.is_locked(record)


def test_read_own_write_is_visible_inside_the_transaction():
    cluster = make_manual_cluster("primo")

    def logic(ctx):
        value = yield from ctx.read(0, "kv", 2)
        yield from ctx.update(0, "kv", 2, {"v": value["v"] + 1})
        again = yield from ctx.read(0, "kv", 2)
        assert again["v"] == value["v"] + 1

    committed, _ = run_txn(cluster, 0, logic)
    assert committed is True


def test_validation_aborts_when_read_record_changed():
    """A record rewritten between read and validation forces an abort."""
    cluster = make_manual_cluster("primo")
    server = cluster.servers[0]
    record = server.store.table("kv").get(3)

    def logic(ctx):
        yield from ctx.read(0, "kv", 3)
        # Simulate a concurrent writer committing in between: bump wts.
        record.install({"v": 99}, ts=50.0)
        yield from ctx.update(0, "kv", 3, {"v": 1})

    with pytest.raises(Exception):
        # The worker normally catches TxnAborted; here we drive the protocol
        # directly, so the commit returns False instead of raising.
        committed, txn = run_txn(cluster, 0, logic)
        assert committed is False
        raise RuntimeError("expected abort")  # reached only if committed above


def test_validation_extends_rts_when_possible():
    cluster = make_manual_cluster("primo")
    server = cluster.servers[0]
    target = server.store.table("kv").get(7)
    target.install({"v": 1}, ts=5.0)   # wts = rts = 5
    other = server.store.table("kv").get(8)
    other.install({"v": 1}, ts=9.0)    # forces commit_ts >= 10 for writers of 8

    def logic(ctx):
        yield from ctx.read(0, "kv", 7)
        yield from ctx.read(0, "kv", 8)
        yield from ctx.update(0, "kv", 8, {"v": 2})

    committed, txn = run_txn(cluster, 0, logic)
    assert committed is True
    assert txn.ts >= 10.0
    # Record 7 was only read; its validity interval was extended to cover ts.
    assert target.rts >= txn.ts
    assert target.wts == 5.0
