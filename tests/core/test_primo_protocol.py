"""Unit tests for Primo's WCF protocol: mode switch, exclusive read locks,
one-way commit, blind-write handling and abort cleanup."""


from repro.storage.lock import LockMode

from tests.conftest import make_manual_cluster, run_txn


def test_distributed_transaction_commits_without_prepare_round():
    cluster = make_manual_cluster("primo", n_partitions=2)
    before_rpcs = cluster.network.stats.rpc_calls

    def logic(ctx):
        local = yield from ctx.read(0, "kv", 1)
        remote = yield from ctx.read(1, "kv", 2)
        yield from ctx.update(0, "kv", 1, {"v": local["v"] + 1})
        yield from ctx.update(1, "kv", 2, {"v": remote["v"] + 1})

    committed, txn = run_txn(cluster, 0, logic)
    assert committed is True
    assert txn.is_distributed
    # Exactly one RPC (the remote read); the commit is a one-way message.
    assert cluster.network.stats.rpc_calls - before_rpcs == 1
    assert cluster.network.stats.one_way_messages >= 1
    # The remote write was installed at the participant with the same ts.
    remote_record = cluster.servers[1].store.table("kv").get(2)
    assert remote_record.value["v"] == 1
    assert remote_record.wts == txn.ts


def test_remote_read_takes_an_exclusive_lock_until_commit_message():
    cluster = make_manual_cluster("primo", n_partitions=2)
    participant = cluster.servers[1]
    observed = {}

    def logic(ctx):
        yield from ctx.read(0, "kv", 1)
        yield from ctx.read(1, "kv", 9)
        record = participant.store.table("kv").get(9)
        observed["locked_during_execution"] = participant.store.lock_manager.is_locked(record)
        yield from ctx.update(1, "kv", 9, {"v": 7})

    committed, _ = run_txn(cluster, 0, logic)
    assert committed is True
    assert observed["locked_during_execution"] is True
    record = cluster.servers[1].store.table("kv").get(9)
    assert not participant.store.lock_manager.is_locked(record)
    assert record.value["v"] == 7


def test_mode_switch_relocks_and_revalidates_local_reads():
    cluster = make_manual_cluster("primo", n_partitions=2)
    server = cluster.servers[0]

    def logic(ctx):
        yield from ctx.read(0, "kv", 4)           # local mode, no lock
        assert ctx.mode == "local"
        yield from ctx.read(1, "kv", 5)           # triggers the switch
        assert ctx.mode == "distributed"
        record = server.store.table("kv").get(4)
        assert server.store.lock_manager.held_by(ctx.txn.tid, record) is LockMode.EXCLUSIVE

    committed, _ = run_txn(cluster, 0, logic)
    assert committed is True


def test_mode_switch_aborts_if_a_read_record_changed():
    cluster = make_manual_cluster("primo", n_partitions=2)
    server = cluster.servers[0]

    def logic(ctx):
        yield from ctx.read(0, "kv", 6)
        # A concurrent commit changes the record before the remote access.
        server.store.table("kv").get(6).install({"v": 123}, ts=40.0)
        yield from ctx.read(1, "kv", 7)

    committed, txn = run_txn(cluster, 0, logic)
    assert committed is False
    assert txn.abort_reason is not None
    # Nothing may remain locked after the abort.
    assert server.store.lock_manager.locks_held(txn.tid) == set()


def test_blind_remote_write_adds_a_dummy_read_lock():
    cluster = make_manual_cluster("primo", n_partitions=2)

    def logic(ctx):
        yield from ctx.read(0, "kv", 1)
        # Blind write: no prior read of partition 1's key 3.
        yield from ctx.update(1, "kv", 3, {"v": 55})

    committed, txn = run_txn(cluster, 0, logic)
    assert committed is True
    dummy_reads = [e for e in txn.read_set if e.dummy]
    assert len(dummy_reads) == 1
    assert dummy_reads[0].partition == 1
    assert cluster.servers[1].store.table("kv").get(3).value["v"] == 55


def test_local_blind_write_needs_no_dummy_read_in_local_mode():
    cluster = make_manual_cluster("primo", n_partitions=2)

    def logic(ctx):
        yield from ctx.read(0, "kv", 1)
        yield from ctx.update(0, "kv", 2, {"v": 5})  # blind but local + local mode

    committed, txn = run_txn(cluster, 0, logic)
    assert committed is True
    assert not any(e.dummy for e in txn.read_set)
    assert cluster.servers[0].store.table("kv").get(2).value["v"] == 5


def test_abort_notifies_participants_and_releases_their_locks():
    cluster = make_manual_cluster("primo", n_partitions=2)
    participant = cluster.servers[1]

    def logic(ctx):
        yield from ctx.read(1, "kv", 11)
        ctx.abort("user rollback")
        yield  # pragma: no cover

    committed, txn = run_txn(cluster, 0, logic)
    assert committed is False
    # Let the one-way ABORT message arrive at the participant.
    cluster.env.run(until=cluster.env.now + 1_000)
    record = participant.store.table("kv").get(11)
    assert not participant.store.lock_manager.is_locked(record)
    assert len(participant.active_txns) == 0


def test_write_set_subset_of_read_set_after_blind_write_handling():
    """The WCF precondition (write-set ⊆ read-set) is enforced at runtime."""
    cluster = make_manual_cluster("primo", n_partitions=2)

    def logic(ctx):
        yield from ctx.read(0, "kv", 1)
        yield from ctx.update(1, "kv", 2, {"v": 1})
        yield from ctx.update(1, "kv", 3, {"v": 2})

    committed, txn = run_txn(cluster, 0, logic)
    assert committed is True
    read_keys = {(e.partition, e.table, e.key) for e in txn.read_set}
    for write in txn.write_set:
        assert (write.partition, write.table, write.key) in read_keys


def test_commit_timestamp_exceeds_partition_floor():
    cluster = make_manual_cluster("primo", n_partitions=2)
    cluster.servers[0].ts_floor = 100.0

    def logic(ctx):
        value = yield from ctx.read(0, "kv", 1)
        yield from ctx.update(0, "kv", 1, {"v": value["v"] + 1})
        yield from ctx.read(1, "kv", 2)

    committed, txn = run_txn(cluster, 0, logic)
    assert committed is True
    assert txn.ts > 100.0


def test_primo_fallback_delegates_to_sundial():
    cluster = make_manual_cluster("primo", n_partitions=2, primo_fallback_to_2pc=True)
    before_rpcs = cluster.network.stats.rpc_calls

    def logic(ctx):
        local = yield from ctx.read(0, "kv", 1)
        remote = yield from ctx.read(1, "kv", 2)
        yield from ctx.update(1, "kv", 2, {"v": remote["v"] + 1})

    committed, txn = run_txn(cluster, 0, logic)
    assert committed is True
    # The 2PC fallback needs more than one RPC round (read + prepare + commit).
    assert cluster.network.stats.rpc_calls - before_rpcs >= 3
