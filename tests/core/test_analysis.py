"""Tests for the Appendix A analytical conflict-rate model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import AnalysisParameters, ConflictRateModel


def test_parameters_validate_ranges():
    with pytest.raises(ValueError):
        AnalysisParameters(read_ratio=1.5).validate()
    with pytest.raises(ValueError):
        AnalysisParameters(distributed_ratio=-0.1).validate()
    with pytest.raises(ValueError):
        AnalysisParameters(contention=2.0).validate()
    AnalysisParameters().validate()  # defaults are valid


def test_zero_contention_means_zero_conflicts():
    model = ConflictRateModel(AnalysisParameters(contention=0.0))
    assert model.conflict_rate_2pc() == 0.0
    assert model.conflict_rate_primo() == 0.0


def test_local_conflict_probability_matches_2pc():
    model = ConflictRateModel(AnalysisParameters())
    assert model.conflict_with_one_primo_local() == pytest.approx(
        model.conflict_with_one_2pc()
    )


def test_primo_sees_fewer_concurrent_distributed_transactions():
    model = ConflictRateModel(AnalysisParameters())
    assert model.concurrent_distributed_primo() < model.concurrent_distributed_2pc()


def test_primo_wins_at_default_write_heavy_settings():
    model = ConflictRateModel(AnalysisParameters(read_ratio=0.5))
    assert model.primo_wins()
    assert model.improvement_ratio() > 1.0


def test_primo_loses_in_read_heavy_workloads():
    """The paper's crossover: with R_u = 0.6 Primo stops winning above R_r ≈ 0.8."""
    model = ConflictRateModel(AnalysisParameters(read_ratio=0.95))
    assert not model.primo_wins()


def test_sweep_read_ratio_reports_monotone_crossover():
    rows = ConflictRateModel.sweep_read_ratio(
        AnalysisParameters(), [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    )
    wins = [row["primo_wins"] for row in rows]
    # Once Primo stops winning it never wins again at higher read ratios.
    first_loss = wins.index(False) if False in wins else len(wins)
    assert all(not w for w in wins[first_loss:])
    assert wins[0] is True


@settings(max_examples=60, deadline=None)
@given(
    read_ratio=st.floats(min_value=0.0, max_value=1.0),
    distributed=st.floats(min_value=0.0, max_value=1.0),
    contention=st.floats(min_value=0.0, max_value=0.001),
    rts_update=st.floats(min_value=0.0, max_value=1.0),
)
def test_conflict_rates_are_probabilities(read_ratio, distributed, contention, rts_update):
    """Property: both conflict rates stay in [0, 1] over the parameter space."""
    model = ConflictRateModel(
        AnalysisParameters(
            read_ratio=read_ratio,
            distributed_ratio=distributed,
            contention=contention,
            rts_update_ratio=rts_update,
        )
    )
    for value in (model.conflict_rate_2pc(), model.conflict_rate_primo()):
        assert 0.0 <= value <= 1.0


@settings(max_examples=40, deadline=None)
@given(read_ratio=st.floats(min_value=0.0, max_value=1.0))
def test_ru_zero_makes_primo_never_worse(read_ratio):
    """Property (paper's argument): with R_u = 0 Primo's conflict rate is <= 2PC's."""
    model = ConflictRateModel(
        AnalysisParameters(read_ratio=read_ratio, rts_update_ratio=0.0)
    )
    assert model.conflict_rate_primo() <= model.conflict_rate_2pc() + 1e-12
