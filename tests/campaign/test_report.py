"""Statistics helpers and the campaign status/report layer."""

import math

import pytest

from repro.bench.report import (
    confidence_interval_95,
    format_mean_ci,
    sample_mean_std,
    t_critical_95,
)
from repro.campaign import (
    CampaignSpec,
    campaign_report,
    campaign_status,
    compile_campaign,
    render_markdown,
    run_campaign,
)
from repro.campaign.report import resolve_metrics
from repro.scenario import ScenarioSpec


class TestStats:
    def test_t_table_spot_values(self):
        # Standard two-sided 95% Student-t critical values.
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(2) == pytest.approx(4.303)
        assert t_critical_95(9) == pytest.approx(2.262)
        assert t_critical_95(30) == pytest.approx(2.042)
        # Untabulated df fall back conservatively (never narrower).
        assert t_critical_95(35) == pytest.approx(2.042)
        assert t_critical_95(50) == pytest.approx(2.021)
        assert t_critical_95(1000) == pytest.approx(1.96)
        with pytest.raises(ValueError):
            t_critical_95(0)

    def test_sample_mean_std(self):
        mean, std = sample_mean_std([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert mean == pytest.approx(5.0)
        assert std == pytest.approx(math.sqrt(32.0 / 7.0))
        assert sample_mean_std([3.5]) == (3.5, 0.0)
        with pytest.raises(ValueError):
            sample_mean_std([])

    def test_confidence_interval_95(self):
        # n=2: df=1, t=12.706; std = |a-b|/sqrt(2); half = t*std/sqrt(2).
        mean, half = confidence_interval_95([10.0, 14.0])
        assert mean == pytest.approx(12.0)
        assert half == pytest.approx(12.706 * math.sqrt(8.0) / math.sqrt(2))
        # Degenerate cases report a bare mean.
        assert confidence_interval_95([5.0]) == (5.0, 0.0)
        assert confidence_interval_95([5.0, 5.0, 5.0]) == (5.0, 0.0)

    def test_format_mean_ci(self):
        assert format_mean_ci(12.34, 1.23) == "12.3 ± 1.2"
        assert format_mean_ci(12345.6, 78.9) == "12346 ± 79"
        assert format_mean_ci(1.2345, 0.0) == "1.234"
        assert format_mean_ci(1.5, 0.25, precision=2) == "1.50 ± 0.25"

    def test_resolve_metrics_validates_with_suggestions(self):
        assert resolve_metrics(None) == ("throughput_ktps", "abort_rate",
                                         "p99_latency_ms")
        with pytest.raises(ValueError, match=r"throughput_ktp'.*did you mean"):
            resolve_metrics(["throughput_ktp"])


@pytest.fixture(scope="module")
def finished_campaign(tmp_path_factory):
    """One compiled-and-run 2×2-reps campaign shared by the report tests."""
    directory = tmp_path_factory.mktemp("campaign") / "run"
    campaign = CampaignSpec(
        name="report-smoke",
        base=ScenarioSpec(protocol="primo", workload="ycsb", scale="tiny"),
        factors={"protocol": ["primo", "sundial"]},
        seed_reps=2,
    )
    compile_campaign(campaign, directory)
    run_campaign(directory)
    return directory


class TestStatusAndReport:
    def test_status_counts(self, finished_campaign):
        status = campaign_status(finished_campaign)
        assert status.total_cells == 4
        assert status.done == 4
        assert status.claimed == status.pending == 0
        assert status.complete
        assert "4/4" in status.describe()

    def test_report_shape(self, finished_campaign):
        report = campaign_report(finished_campaign,
                                 metrics=["throughput_ktps", "committed"])
        assert report["complete"]
        assert report["rows_total"] == report["rows_complete"] == 2
        assert report["metrics"] == ["throughput_ktps", "committed"]
        protocols = [row["factors"]["protocol"] for row in report["rows"]]
        assert protocols == ["primo", "sundial"]
        for row in report["rows"]:
            assert row["reps_present"] == row["reps_expected"] == 2
            for stats in row["metrics"].values():
                assert stats["n"] == 2
                assert len(stats["values"]) == 2
                assert stats["mean"] == pytest.approx(
                    sum(stats["values"]) / 2)
                assert stats["ci95"] >= 0.0

    def test_report_reflects_seed_variation(self, finished_campaign):
        # Different seeds must actually vary the metric; otherwise the CI
        # machinery is aggregating copies of one run.
        report = campaign_report(finished_campaign, metrics=["committed"])
        for row in report["rows"]:
            values = row["metrics"]["committed"]["values"]
            assert values[0] != values[1]

    def test_markdown_rendering(self, finished_campaign):
        report = campaign_report(finished_campaign)
        markdown = render_markdown(report)
        assert "# Campaign `report-smoke`" in markdown
        assert "| protocol | reps |" in markdown
        assert "| `primo` | 2/2 |" in markdown
        assert "±" in markdown       # intervals are rendered
        assert "⚠" not in markdown   # nothing incomplete

    def test_partial_campaign_reports_cleanly(self, tmp_path):
        campaign = CampaignSpec(
            name="partial",
            base=ScenarioSpec(protocol="primo", workload="ycsb", scale="tiny"),
            factors={"protocol": ["primo", "sundial"]},
            seed_reps=1,
        )
        directory = tmp_path / "partial"
        compile_campaign(campaign, directory)
        run_campaign(directory, shard=(0, 2))  # half the table
        status = campaign_status(directory)
        assert status.done == 1 and status.pending == 1
        report = campaign_report(directory, metrics=["committed"])
        assert not report["complete"]
        assert report["rows_complete"] == 1
        empty = [row for row in report["rows"] if row["reps_present"] == 0]
        assert len(empty) == 1
        assert empty[0]["metrics"]["committed"]["mean"] is None
        markdown = render_markdown(report)
        assert "⚠" in markdown and "—" in markdown
