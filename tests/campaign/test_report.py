"""Statistics helpers and the campaign status/report layer."""

import json
import math
from pathlib import Path

import pytest

from repro.bench.report import (
    confidence_interval_95,
    format_mean_ci,
    sample_mean_std,
    t_critical_95,
)
from repro.campaign import (
    CampaignSpec,
    campaign_report,
    campaign_status,
    compile_campaign,
    render_markdown,
    run_campaign,
)
from repro.campaign.report import resolve_metrics
from repro.scenario import ScenarioSpec


class TestStats:
    def test_t_table_spot_values(self):
        # Standard two-sided 95% Student-t critical values.
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(2) == pytest.approx(4.303)
        assert t_critical_95(9) == pytest.approx(2.262)
        assert t_critical_95(30) == pytest.approx(2.042)
        # Untabulated df fall back conservatively (never narrower): past the
        # table's last row the value clamps to t(120), not the normal 1.96.
        assert t_critical_95(35) == pytest.approx(2.042)
        assert t_critical_95(50) == pytest.approx(2.021)
        assert t_critical_95(121) == pytest.approx(1.980)
        assert t_critical_95(1000) == pytest.approx(1.980)
        with pytest.raises(ValueError):
            t_critical_95(0)

    def test_sample_mean_std(self):
        mean, std = sample_mean_std([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert mean == pytest.approx(5.0)
        assert std == pytest.approx(math.sqrt(32.0 / 7.0))
        assert sample_mean_std([3.5]) == (3.5, 0.0)
        with pytest.raises(ValueError):
            sample_mean_std([])

    def test_confidence_interval_95(self):
        # n=2: df=1, t=12.706; std = |a-b|/sqrt(2); half = t*std/sqrt(2).
        mean, half = confidence_interval_95([10.0, 14.0])
        assert mean == pytest.approx(12.0)
        assert half == pytest.approx(12.706 * math.sqrt(8.0) / math.sqrt(2))
        # Degenerate cases report a bare mean.
        assert confidence_interval_95([5.0]) == (5.0, 0.0)
        assert confidence_interval_95([5.0, 5.0, 5.0]) == (5.0, 0.0)

    def test_format_mean_ci(self):
        assert format_mean_ci(12.34, 1.23) == "12.3 ± 1.2"
        assert format_mean_ci(12345.6, 78.9) == "12346 ± 79"
        assert format_mean_ci(1.2345, 0.0) == "1.234"
        assert format_mean_ci(1.5, 0.25, precision=2) == "1.50 ± 0.25"

    def test_resolve_metrics_validates_with_suggestions(self):
        assert resolve_metrics(None) == ("throughput_ktps", "abort_rate",
                                         "p99_latency_ms")
        with pytest.raises(ValueError, match=r"throughput_ktp'.*did you mean"):
            resolve_metrics(["throughput_ktp"])


@pytest.fixture(scope="module")
def finished_campaign(tmp_path_factory):
    """One compiled-and-run 2×2-reps campaign shared by the report tests."""
    directory = tmp_path_factory.mktemp("campaign") / "run"
    campaign = CampaignSpec(
        name="report-smoke",
        base=ScenarioSpec(protocol="primo", workload="ycsb", scale="tiny"),
        factors={"protocol": ["primo", "sundial"]},
        seed_reps=2,
    )
    compile_campaign(campaign, directory)
    run_campaign(directory)
    return directory


class TestStatusAndReport:
    def test_status_counts(self, finished_campaign):
        status = campaign_status(finished_campaign)
        assert status.total_cells == 4
        assert status.done == 4
        assert status.claimed == status.pending == 0
        assert status.complete
        assert "4/4" in status.describe()

    def test_report_shape(self, finished_campaign):
        report = campaign_report(finished_campaign,
                                 metrics=["throughput_ktps", "committed"])
        assert report["complete"]
        assert report["rows_total"] == report["rows_complete"] == 2
        assert report["metrics"] == ["throughput_ktps", "committed"]
        protocols = [row["factors"]["protocol"] for row in report["rows"]]
        assert protocols == ["primo", "sundial"]
        for row in report["rows"]:
            assert row["reps_present"] == row["reps_expected"] == 2
            for stats in row["metrics"].values():
                assert stats["n"] == 2
                assert len(stats["values"]) == 2
                assert stats["mean"] == pytest.approx(
                    sum(stats["values"]) / 2)
                assert stats["ci95"] >= 0.0

    def test_report_reflects_seed_variation(self, finished_campaign):
        # Different seeds must actually vary the metric; otherwise the CI
        # machinery is aggregating copies of one run.
        report = campaign_report(finished_campaign, metrics=["committed"])
        for row in report["rows"]:
            values = row["metrics"]["committed"]["values"]
            assert values[0] != values[1]

    def test_markdown_rendering(self, finished_campaign):
        report = campaign_report(finished_campaign)
        markdown = render_markdown(report)
        assert "# Campaign `report-smoke`" in markdown
        assert "| protocol | reps |" in markdown
        assert "| `primo` | 2/2 |" in markdown
        assert "±" in markdown       # intervals are rendered
        assert "⚠" not in markdown   # nothing incomplete

    def test_dict_valued_factors_group_and_render(self, tmp_path):
        # Dict levels (arrival specs) flow from cells.jsonl through row
        # grouping to Markdown without collapsing rows or crashing.
        campaign = CampaignSpec(
            name="open-report",
            base=ScenarioSpec(protocol="primo", workload="ycsb", scale="tiny"),
            factors={"arrival": [{"kind": "poisson", "rate_tps": 40_000},
                                 {"kind": "poisson", "rate_tps": 80_000}]},
            seed_reps=1,
        )
        directory = tmp_path / "open-report"
        compile_campaign(campaign, directory)
        run_campaign(directory)
        report = campaign_report(directory, metrics=["committed"])
        assert report["rows_total"] == report["rows_complete"] == 2
        rates = [row["factors"]["arrival"]["rate_tps"]
                 for row in report["rows"]]
        assert rates == [40_000, 80_000]
        markdown = render_markdown(report)
        assert '"rate_tps": 40000' in markdown

    def test_cli_report_artifact_defaults_decouple(self, finished_campaign,
                                                   tmp_path):
        from repro.campaign.__main__ import main as campaign_main

        # Asking for only the JSON copy must not drop the default Markdown
        # artifact (and vice versa) — each defaults independently.
        json_target = tmp_path / "r.json"
        assert campaign_main(["report", str(finished_campaign),
                              "--json", str(json_target)]) == 0
        assert json.loads(json_target.read_text())["complete"] is True
        md_default = Path(finished_campaign) / "reports" / "report.md"
        assert "# Campaign `report-smoke`" in md_default.read_text()

        md_target = tmp_path / "r.md"
        assert campaign_main(["report", str(finished_campaign),
                              "--out", str(md_target)]) == 0
        assert "# Campaign `report-smoke`" in md_target.read_text()
        json_default = Path(finished_campaign) / "reports" / "report.json"
        assert json.loads(json_default.read_text())["complete"] is True

    def test_partial_campaign_reports_cleanly(self, tmp_path):
        campaign = CampaignSpec(
            name="partial",
            base=ScenarioSpec(protocol="primo", workload="ycsb", scale="tiny"),
            factors={"protocol": ["primo", "sundial"]},
            seed_reps=1,
        )
        directory = tmp_path / "partial"
        compile_campaign(campaign, directory)
        run_campaign(directory, shard=(0, 2))  # half the table
        status = campaign_status(directory)
        assert status.done == 1 and status.pending == 1
        report = campaign_report(directory, metrics=["committed"])
        assert not report["complete"]
        assert report["rows_complete"] == 1
        empty = [row for row in report["rows"] if row["reps_present"] == 0]
        assert len(empty) == 1
        assert empty[0]["metrics"]["committed"]["mean"] is None
        markdown = render_markdown(report)
        assert "⚠" in markdown and "—" in markdown
