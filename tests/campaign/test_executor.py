"""Cooperative execution: claims, sharding, crash recovery, idempotence.

The acceptance bar from the campaign design: N executors over one manifest
and one shared cache complete every cell exactly once with results
byte-identical to a single executor; a claim left by an executor killed
mid-cell is re-claimed after its TTL; and re-running a finished campaign
executes zero simulations.
"""

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    compile_campaign,
    load_manifest,
    parse_shard,
    run_campaign,
    sweep_stale_claims,
)
from repro.campaign.executor import release_claim, try_claim
from repro.campaign.manifest import ManifestError
from repro.scenario import ScenarioSpec


def tiny_campaign(name="coop", seed_reps=2) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        base=ScenarioSpec(protocol="primo", workload="ycsb", scale="tiny"),
        factors={"protocol": ["primo", "sundial"], "zipf_theta": [0.2, 0.8]},
        seed_reps=seed_reps,
    )


def cache_bytes(directory) -> dict:
    """Cache-entry file name -> raw bytes, for byte-identity comparison."""
    cache_dir = Path(directory) / "cache"
    return {
        path.name: path.read_bytes()
        for path in sorted(cache_dir.glob("*.json"))
    }


class TestClaims:
    def test_exactly_one_winner(self, tmp_path):
        claims = tmp_path / "claims"
        assert try_claim(claims, "k1") is True
        assert try_claim(claims, "k1") is False      # live claim holds
        release_claim(claims, "k1")
        assert try_claim(claims, "k1") is True       # released: claimable again

    def test_stale_claim_is_reclaimed(self, tmp_path):
        claims = tmp_path / "claims"
        assert try_claim(claims, "k1", claim_ttl_s=1000.0)
        # Age the claim past the TTL, as if its owner died mid-cell.
        path = claims / "k1.claim"
        old = time.time() - 2000.0
        os.utime(path, (old, old))
        assert try_claim(claims, "k1", claim_ttl_s=1000.0) is True
        # The reclaim rewrote the file with a fresh mtime: now it holds.
        assert try_claim(claims, "k1", claim_ttl_s=1000.0) is False

    def test_concurrent_stale_reclaimers_have_one_winner(self, tmp_path):
        # The reclaim path (rename-to-tombstone, then re-create) must pick a
        # single winner just like the fresh-claim path does.
        claims = tmp_path / "claims"
        assert try_claim(claims, "k1", claim_ttl_s=1000.0)
        old = time.time() - 2000.0
        os.utime(claims / "k1.claim", (old, old))
        wins = []
        barrier = threading.Barrier(8)

        def contend():
            barrier.wait()
            if try_claim(claims, "k1", claim_ttl_s=1000.0):
                wins.append(1)

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(wins) == 1
        assert (claims / "k1.claim").exists()  # the winner's fresh claim
        assert len(list(claims.iterdir())) == 1  # no tombstones left behind

    def test_reap_restores_a_claim_that_turned_out_fresh(self, tmp_path):
        from repro.campaign.executor import _reap_claim

        claims = tmp_path / "claims"
        assert try_claim(claims, "k1")
        path = claims / "k1.claim"
        payload = path.read_bytes()
        # A reaper whose stat raced a refresh finds a fresh file once it
        # owns the tombstone: it must rename the claim back, not reap it.
        assert _reap_claim(path, claim_ttl_s=1000.0) is False
        assert path.read_bytes() == payload
        # A genuinely stale claim is reaped, tombstone included.
        old = time.time() - 2000.0
        os.utime(path, (old, old))
        assert _reap_claim(path, claim_ttl_s=1000.0) is True
        assert not list(claims.iterdir())

    def test_concurrent_claimers_have_one_winner(self, tmp_path):
        claims = tmp_path / "claims"
        wins = []
        barrier = threading.Barrier(8)

        def contend():
            barrier.wait()
            if try_claim(claims, "contested"):
                wins.append(1)

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(wins) == 1

    def test_sweep_stale_claims(self, tmp_path):
        claims = tmp_path / "claims"
        try_claim(claims, "fresh")
        try_claim(claims, "dead")
        old = time.time() - 5000.0
        os.utime(claims / "dead.claim", (old, old))
        swept, freed = sweep_stale_claims(claims, claim_ttl_s=1000.0,
                                          dry_run=True)
        assert swept == 1 and (claims / "dead.claim").exists()
        swept, freed = sweep_stale_claims(claims, claim_ttl_s=1000.0)
        assert swept == 1 and freed > 0
        assert not (claims / "dead.claim").exists()
        assert (claims / "fresh.claim").exists()

    def test_sweep_reaps_orphaned_tombstones(self, tmp_path):
        # A reclaimer killed between rename and unlink leaks a tombstone;
        # the eager sweep ages it out like any dead claim.
        claims = tmp_path / "claims"
        claims.mkdir()
        tombstone = claims / "k1.claim.reap42"
        tombstone.write_text("{}")
        old = time.time() - 5000.0
        os.utime(tombstone, (old, old))
        swept, freed = sweep_stale_claims(claims, claim_ttl_s=1000.0)
        assert swept == 1 and freed > 0
        assert not tombstone.exists()

    def test_parse_shard(self):
        assert parse_shard(None) == (0, 1)
        assert parse_shard("1/4") == (1, 4)
        with pytest.raises(ValueError, match="i/n"):
            parse_shard("one/two")
        with pytest.raises(ValueError, match="out of range"):
            parse_shard("4/4")


class TestCooperation:
    def test_two_executors_complete_exactly_once_and_byte_identical(self, tmp_path):
        campaign = tiny_campaign()
        solo_dir = tmp_path / "solo"
        coop_dir = tmp_path / "coop"
        compile_campaign(campaign, solo_dir)
        compile_campaign(campaign, coop_dir)

        solo_stats = run_campaign(solo_dir)
        assert solo_stats.executed == campaign.total_cells

        # Two concurrent executors race over the SAME manifest and cache;
        # claims (not sharding) are the only coordination.
        results = []

        def executor():
            results.append(run_campaign(coop_dir, claim_ttl_s=600.0))

        threads = [threading.Thread(target=executor) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        executed = sum(stats.executed for stats in results)
        assert executed == campaign.total_cells  # exactly once, no dupes
        assert not any(stats.errors for stats in results)
        # Byte-for-byte the same result files as the single executor.
        assert cache_bytes(coop_dir) == cache_bytes(solo_dir)

    def test_disjoint_shards_union_to_the_full_campaign(self, tmp_path):
        campaign = tiny_campaign()
        directory = tmp_path / "sharded"
        compile_campaign(campaign, directory)
        stats0 = run_campaign(directory, shard=(0, 2))
        stats1 = run_campaign(directory, shard=(1, 2))
        assert stats0.executed + stats1.executed == campaign.total_cells
        assert stats0.skipped_shard == stats1.executed
        assert stats1.cache_hits == 0  # disjoint: no overlap to hit

    def test_finished_campaign_reruns_with_zero_executions(self, tmp_path):
        campaign = tiny_campaign()
        directory = tmp_path / "idem"
        compile_campaign(campaign, directory)
        run_campaign(directory)
        before = cache_bytes(directory)
        stats = run_campaign(directory)
        assert stats.executed == 0
        assert stats.cache_hits == campaign.total_cells
        assert cache_bytes(directory) == before

    def test_killed_executor_claim_is_reclaimed_after_ttl(self, tmp_path):
        campaign = tiny_campaign(seed_reps=1)
        directory = tmp_path / "crashy"
        manifest = compile_campaign(campaign, directory)
        victim = next(manifest.iter_cells())
        # Simulate an executor that claimed a cell and died: stale claim, no
        # cache entry.
        assert try_claim(manifest.dirs.claims_dir, victim.key,
                         claim_ttl_s=1000.0)
        old = time.time() - 5000.0
        os.utime(manifest.dirs.claims_dir / f"{victim.key}.claim", (old, old))

        # Under a TTL longer than the claim's age the cell is stranded...
        stats = run_campaign(directory, claim_ttl_s=10_000.0)
        assert stats.skipped_claimed == 1
        assert stats.executed == campaign.total_cells - 1
        # ...and once the claim expires, the next executor reclaims and runs it.
        stats = run_campaign(directory, claim_ttl_s=1000.0)
        assert stats.reclaimed == 1
        assert stats.executed == 1
        assert not list(manifest.dirs.claims_dir.glob("*.claim"))

    def test_dict_valued_factor_levels_survive_compile_then_run(self, tmp_path):
        # Arrival specs (and workload mixes, fault plans) are dict-valued
        # factor levels; they must land in cells.jsonl as plain JSON that
        # derive() accepts, not as the campaign's frozen tuple-of-pairs.
        campaign = CampaignSpec(
            name="open-loop",
            base=ScenarioSpec(protocol="primo", workload="ycsb", scale="tiny"),
            factors={"arrival": [{"kind": "poisson", "rate_tps": 40_000},
                                 {"kind": "poisson", "rate_tps": 80_000}]},
            seed_reps=1,
        )
        directory = tmp_path / "open-loop"
        compile_campaign(campaign, directory)
        manifest = load_manifest(directory)  # full JSON round trip
        assert [cell.factors["arrival"] for cell in manifest.iter_cells()] == [
            {"kind": "poisson", "rate_tps": 40_000},
            {"kind": "poisson", "rate_tps": 80_000},
        ]
        stats = run_campaign(directory)
        assert stats.executed == campaign.total_cells
        assert not stats.errors

    def test_pool_execution_matches_inline_bytes(self, tmp_path):
        campaign = tiny_campaign(seed_reps=1)
        inline_dir = tmp_path / "inline"
        pooled_dir = tmp_path / "pooled"
        compile_campaign(campaign, inline_dir)
        compile_campaign(campaign, pooled_dir)
        run_campaign(inline_dir, jobs=1)
        stats = run_campaign(pooled_dir, jobs=2)
        assert stats.executed == campaign.total_cells
        assert cache_bytes(pooled_dir) == cache_bytes(inline_dir)


class TestManifest:
    def test_load_requires_compile(self, tmp_path):
        with pytest.raises(ManifestError, match="no manifest.json"):
            load_manifest(tmp_path / "nowhere")

    def test_substrate_skew_is_refused(self, tmp_path):
        campaign = tiny_campaign(seed_reps=1)
        directory = tmp_path / "skewed"
        compile_campaign(campaign, directory)
        manifest_path = directory / "manifest.json"
        doc = json.loads(manifest_path.read_text())
        doc["substrate_version"] = "0.0.1"
        manifest_path.write_text(json.dumps(doc))
        with pytest.raises(ManifestError, match="recompile"):
            run_campaign(directory)

    def test_recompiling_a_different_campaign_over_state_is_refused(self, tmp_path):
        directory = tmp_path / "taken"
        compile_campaign(tiny_campaign(seed_reps=1), directory)
        run_campaign(directory)  # leaves cache state behind
        with pytest.raises(ManifestError, match="different campaign"):
            compile_campaign(tiny_campaign(name="other", seed_reps=1), directory)

    def test_recompiling_the_same_campaign_is_fine(self, tmp_path):
        campaign = tiny_campaign(seed_reps=1)
        directory = tmp_path / "same"
        first = compile_campaign(campaign, directory)
        run_campaign(directory)
        second = compile_campaign(campaign, directory)
        assert second.total_cells == first.total_cells
        # Results are content-addressed: the rerun is still free.
        stats = run_campaign(directory)
        assert stats.executed == 0

    def test_derivation_drift_is_detected(self, tmp_path):
        campaign = tiny_campaign(seed_reps=1)
        directory = tmp_path / "drift"
        compile_campaign(campaign, directory)
        # Corrupt one manifest line's content key, as if the checkout's
        # derive() semantics no longer match the compiled table.
        cells_path = directory / "cells.jsonl"
        lines = cells_path.read_text().splitlines()
        doc = json.loads(lines[0])
        doc["key"] = "0" * 32
        lines[0] = json.dumps(doc)
        cells_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ManifestError, match="drifted"):
            run_campaign(directory)
