"""CampaignSpec: eager validation, JSON round trip, lazy cell streams."""

import json

import pytest

from repro.campaign import CampaignSpec
from repro.scenario import ScenarioSpec


def tiny_base(**changes) -> ScenarioSpec:
    spec = ScenarioSpec(protocol="primo", workload="ycsb", scale="tiny")
    return spec.derive(**changes) if changes else spec


def two_by_two(**overrides) -> CampaignSpec:
    kwargs = dict(
        name="study",
        base=tiny_base(),
        factors={"protocol": ["primo", "sundial"], "zipf_theta": [0.2, 0.8]},
        seed_reps=2,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestValidation:
    def test_factor_names_validate_eagerly_with_suggestions(self):
        with pytest.raises(ValueError, match=r"unknown factor 'zipf_thetaa'.*"
                                             r"did you mean 'zipf_theta'"):
            two_by_two(factors={"zipf_thetaa": [0.2]})

    def test_factor_names_cover_spec_config_and_workload_axes(self):
        # One factor from each routing family derive() supports.
        campaign = two_by_two(factors={
            "protocol": ["primo", "sundial"],       # spec field
            "n_partitions": [2, 4],                 # SystemConfig field
            "zipf_theta": [0.2, 0.8],               # workload config field
        })
        assert campaign.grid_points == 8

    def test_a_workload_factor_extends_the_axis_vocabulary(self):
        # write_ratio is a TATP-free YCSB knob; switching workloads via a
        # factor must make *both* workloads' knobs legal factor names.
        campaign = CampaignSpec(
            name="wl", base=tiny_base(),
            factors={"workload": ["ycsb", "tatp"], "n_partitions": [2, 4]},
        )
        assert campaign.grid_points == 4

    def test_typoed_workload_level_points_at_the_factor(self):
        with pytest.raises(ValueError, match=r"factor 'workload'.*ycsbb"):
            CampaignSpec(name="wl", base=tiny_base(),
                         factors={"workload": ["ycsbb"]})

    def test_seed_is_not_a_factor(self):
        with pytest.raises(ValueError, match="seed_reps"):
            two_by_two(factors={"seed": [1, 2]})

    def test_empty_levels_and_duplicates_fail(self):
        with pytest.raises(ValueError, match="no levels"):
            two_by_two(factors={"protocol": []})
        with pytest.raises(ValueError, match="repeats a level"):
            two_by_two(factors={"protocol": ["primo", "primo"]})

    def test_seed_reps_must_be_positive_int(self):
        with pytest.raises(ValueError, match="seed_reps"):
            two_by_two(seed_reps=0)
        with pytest.raises(ValueError, match="seed_reps"):
            two_by_two(seed_reps=True)

    def test_name_is_restricted_to_filesystem_safe_characters(self):
        with pytest.raises(ValueError, match="campaign name"):
            two_by_two(name="bad name/with slash")


class TestShape:
    def test_cell_stream_shape_and_order(self):
        campaign = two_by_two()
        cells = list(campaign.cells())
        assert len(cells) == campaign.total_cells == 8
        assert [cell.index for cell in cells] == list(range(8))
        # Reps are innermost: consecutive cells share a grid point.
        assert cells[0].factor_dict == cells[1].factor_dict
        assert cells[0].seed + 1 == cells[1].seed
        # Last factor (zipf_theta, sorted order) varies fastest across points.
        assert cells[0].factor_dict["zipf_theta"] != cells[2].factor_dict["zipf_theta"]
        assert cells[0].factor_dict["protocol"] == cells[2].factor_dict["protocol"]

    def test_seed0_defaults_to_the_base_override(self):
        campaign = two_by_two(base=tiny_base(seed=100))
        seeds = sorted({cell.seed for cell in campaign.cells()})
        assert seeds == [100, 101]

    def test_explicit_seed0_wins(self):
        campaign = two_by_two(base=tiny_base(seed=100), seed0=7)
        assert sorted({c.seed for c in campaign.cells()}) == [7, 8]

    def test_factorless_campaign_is_just_seed_reps_of_the_base(self):
        campaign = CampaignSpec(name="reps", base=tiny_base(), seed_reps=3)
        cells = list(campaign.cells())
        assert [cell.factor_dict for cell in cells] == [{}, {}, {}]
        assert len({cell.key for cell in cells}) == 3  # seeds change the key

    def test_content_keys_are_seed_and_factor_distinct(self):
        keys = {cell.key for cell in two_by_two().cells()}
        assert len(keys) == 8


class TestJson:
    def test_round_trip(self):
        campaign = two_by_two()
        rebuilt = CampaignSpec.from_json(campaign.to_json())
        assert rebuilt == campaign
        assert rebuilt.canonical_json() == campaign.canonical_json()

    def test_from_json_accepts_plain_base_document(self):
        campaign = CampaignSpec.from_json_dict({
            "name": "doc",
            "base": {"protocol": "primo", "scale": "tiny"},
            "factors": {"zipf_theta": [0.0, 0.5]},
        })
        assert campaign.seed_reps == 1
        assert campaign.grid_points == 2

    def test_unknown_fields_fail_with_suggestions(self):
        with pytest.raises(ValueError, match=r"'seed_rep'.*did you mean 'seed_reps'"):
            CampaignSpec.from_json_dict({
                "name": "x", "base": {"protocol": "primo"}, "seed_rep": 3,
            })

    def test_mix_and_fault_levels_round_trip(self):
        campaign = CampaignSpec(
            name="mixes", base=tiny_base(),
            factors={
                "workload": ["ycsb", {"ycsb": 0.7, "tatp": 0.3}],
                "faults": [None, [{"kind": "crash", "at_us": 40_000.0,
                                   "target": 1}]],
            },
        )
        rebuilt = CampaignSpec.from_json(campaign.to_json())
        assert rebuilt == campaign
        # All four grid specs derive cleanly.
        specs = [cell.spec for cell in rebuilt.cells()]
        assert len(specs) == 4
        assert {spec.workload for spec in specs} == {"ycsb", "mixed"}

    def test_cells_do_not_materialize_the_grid(self, monkeypatch):
        calls = {"n": 0}
        original = ScenarioSpec.derive

        def counting(self, **changes):
            calls["n"] += 1
            return original(self, **changes)

        monkeypatch.setattr(ScenarioSpec, "derive", counting)
        campaign = CampaignSpec(
            name="big", base=tiny_base(),
            factors={"zipf_theta": [i / 1000 for i in range(1000)]},
            seed_reps=2,
        )
        assert calls["n"] == 0  # construction derives nothing
        stream = campaign.cells()
        first = next(stream)
        # One grid derivation + one seed derivation for the first cell only.
        assert calls["n"] == 2
        assert first.index == 0
        assert json.loads(first.spec.canonical_json())  # spec is real
