"""Tests for transaction identifiers, read/write sets and status bookkeeping."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.txn.transaction import (
    AbortReason,
    ReadEntry,
    Transaction,
    TxnAborted,
    TxnId,
    UserAbort,
    WriteEntry,
)


def make_txn(sequence=1, coordinator=0) -> Transaction:
    return Transaction(tid=TxnId(sequence, coordinator), coordinator=coordinator)


def test_txn_id_ordering_by_sequence_then_coordinator():
    assert TxnId(1, 3) < TxnId(2, 0)
    assert TxnId(2, 0) < TxnId(2, 1)
    assert TxnId(5, 2) == TxnId(5, 2)
    assert len({TxnId(5, 2), TxnId(5, 2), TxnId(6, 2)}) == 2


@settings(max_examples=50, deadline=None)
@given(
    a=st.tuples(st.integers(0, 1000), st.integers(0, 16)),
    b=st.tuples(st.integers(0, 1000), st.integers(0, 16)),
)
def test_txn_id_ordering_is_total_and_consistent(a, b):
    """Property: exactly one of <, ==, > holds for any two TIDs."""
    tid_a, tid_b = TxnId(*a), TxnId(*b)
    relations = [tid_a < tid_b, tid_a == tid_b, tid_b < tid_a]
    assert sum(relations) == 1


def test_effective_ts_prefers_assigned_ts():
    txn = make_txn()
    txn.lower_bound_ts = 5.0
    assert txn.effective_ts() == 5.0
    txn.ts = 9.0
    assert txn.effective_ts() == 9.0


def test_add_read_tracks_participants_and_distribution():
    txn = make_txn(coordinator=0)
    txn.add_read(ReadEntry(partition=0, table="t", key=1, value={}, local=True))
    assert not txn.is_distributed
    txn.add_read(ReadEntry(partition=2, table="t", key=7, value={}, local=False))
    assert txn.is_distributed
    assert txn.participants == {2}
    assert txn.all_partitions() == {0, 2}


def test_add_write_merges_updates_for_same_key():
    txn = make_txn()
    txn.add_write(WriteEntry(partition=0, table="t", key=1, updates={"a": 1}))
    txn.add_write(WriteEntry(partition=0, table="t", key=1, updates={"b": 2}))
    assert len(txn.write_set) == 1
    assert txn.write_set[0].updates == {"a": 1, "b": 2}


def test_writes_and_reads_filtered_by_partition():
    txn = make_txn()
    txn.add_read(ReadEntry(partition=0, table="t", key=1, value={}))
    txn.add_read(ReadEntry(partition=1, table="t", key=2, value={}, local=False))
    txn.add_write(WriteEntry(partition=1, table="t", key=2, updates={}, local=False))
    assert len(txn.reads_for_partition(0)) == 1
    assert len(txn.reads_for_partition(1)) == 1
    assert len(txn.writes_for_partition(1)) == 1
    assert txn.writes_for_partition(0) == []


def test_write_covered_by_read():
    txn = make_txn()
    txn.add_read(ReadEntry(partition=0, table="t", key=1, value={}))
    assert txn.write_covered_by_read(0, "t", 1)
    assert not txn.write_covered_by_read(0, "t", 2)
    assert not txn.write_covered_by_read(1, "t", 1)


def test_breakdown_accumulates_and_ignores_non_positive():
    txn = make_txn()
    txn.add_breakdown("execute", 10.0)
    txn.add_breakdown("execute", 5.0)
    txn.add_breakdown("execute", 0.0)
    assert txn.breakdown["execute"] == 15.0


def test_abort_exceptions_carry_reasons():
    error = TxnAborted(AbortReason.LOCK_CONFLICT, "hot key")
    assert error.reason is AbortReason.LOCK_CONFLICT
    assert "hot key" in str(error)
    user = UserAbort("rollback requested")
    assert user.reason is AbortReason.USER
    assert isinstance(user, TxnAborted)
