"""Shared fixtures and helpers for the test suite.

Most tests build tiny clusters (2 partitions, a few hundred keys, tens of
simulated milliseconds) so the whole suite stays fast while still exercising
the full protocol paths.
"""

from __future__ import annotations

from typing import Generator

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import SystemConfig
from repro.workloads.base import TransactionSpec, TxnSource, Workload
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload


def tiny_config(protocol: str = "primo", **overrides) -> SystemConfig:
    """A small, fast configuration for integration-style tests."""
    defaults = dict(
        n_partitions=2,
        workers_per_partition=2,
        inflight_per_worker=1,
        duration_us=15_000.0,
        warmup_us=2_000.0,
        epoch_length_us=2_000.0,
        seed=7,
    )
    defaults.update(overrides)
    return SystemConfig.for_protocol(protocol, **defaults)


def tiny_ycsb(**overrides) -> YCSBWorkload:
    params = dict(keys_per_partition=500, zipf_theta=0.5, distributed_pct=0.3)
    params.update(overrides)
    return YCSBWorkload(YCSBConfig(**params))


def run_tiny(protocol: str = "primo", workload: Workload | None = None, **overrides):
    """Build and run a tiny cluster; returns (cluster, result)."""
    cluster = Cluster(tiny_config(protocol, **overrides), workload or tiny_ycsb())
    result = cluster.run()
    return cluster, result


class TransferWorkload(Workload):
    """Money-transfer workload used by the atomicity/consistency tests.

    Every transaction moves an amount between two accounts (possibly on
    different partitions), so the total balance is invariant under any mix of
    commits and aborts — a violated invariant means a lost update or a
    partially installed distributed transaction.
    """

    name = "transfer"

    def __init__(self, accounts_per_partition: int = 200, initial_balance: float = 100.0,
                 cross_partition_pct: float = 0.4):
        self.accounts_per_partition = accounts_per_partition
        self.initial_balance = initial_balance
        self.cross_partition_pct = cross_partition_pct

    def load(self, cluster) -> None:
        for server in cluster.servers.values():
            table = server.store.create_table("account")
            for account in range(self.accounts_per_partition):
                table.insert(account, {"balance": self.initial_balance})

    def total_balance(self, cluster) -> float:
        total = 0.0
        for server in cluster.servers.values():
            for record in server.store.table("account").records():
                total += record.value["balance"]
        return total

    def expected_total(self, cluster) -> float:
        return (
            self.initial_balance
            * self.accounts_per_partition
            * cluster.config.n_partitions
        )

    def make_source(self, cluster, partition_id: int, stream_id: int):
        workload = self
        rng = self.rng(cluster, partition_id, stream_id)
        n_partitions = cluster.config.n_partitions

        class _Source(TxnSource):
            def next(self) -> TransactionSpec:
                src = rng.uniform_int(0, workload.accounts_per_partition - 1)
                dst = rng.uniform_int(0, workload.accounts_per_partition - 1)
                dst_partition = partition_id
                if n_partitions > 1 and rng.boolean(workload.cross_partition_pct):
                    other = rng.uniform_int(0, n_partitions - 2)
                    dst_partition = other + 1 if other >= partition_id else other
                amount = rng.uniform(1.0, 10.0)

                def logic(ctx) -> Generator:
                    source = yield from ctx.read(partition_id, "account", src)
                    dest = yield from ctx.read(dst_partition, "account", dst)
                    if dst_partition == partition_id and src == dst:
                        return
                    yield from ctx.update(
                        partition_id, "account", src,
                        {"balance": source["balance"] - amount},
                    )
                    yield from ctx.update(
                        dst_partition, "account", dst,
                        {"balance": dest["balance"] + amount},
                    )

                return TransactionSpec(name="transfer", logic=logic)

        return _Source()


@pytest.fixture
def transfer_workload() -> TransferWorkload:
    return TransferWorkload()


class SimpleKVWorkload(Workload):
    """A bare key-value table per partition for protocol unit tests."""

    name = "simplekv"

    def __init__(self, keys_per_partition: int = 100):
        self.keys_per_partition = keys_per_partition

    def load(self, cluster) -> None:
        for server in cluster.servers.values():
            table = server.store.create_table("kv")
            for key in range(self.keys_per_partition):
                table.insert(key, {"v": 0})

    def make_source(self, cluster, partition_id: int, stream_id: int):
        raise NotImplementedError("SimpleKVWorkload is driven manually by tests")


def make_manual_cluster(protocol: str = "primo", n_partitions: int = 2, **overrides) -> Cluster:
    """A cluster whose transactions are driven one by one from the test body."""
    config = tiny_config(protocol, n_partitions=n_partitions,
                         durability=overrides.pop("durability", "none"), **overrides)
    return Cluster(config, SimpleKVWorkload())


def run_txn(cluster: Cluster, partition: int, logic, name: str = "manual"):
    """Run one transaction through the cluster's protocol; returns (committed, txn)."""
    server = cluster.servers[partition]
    txn = server.new_transaction(name)
    process = cluster.env.process(
        cluster.protocol.run_transaction(server, txn, logic), name=name
    )
    cluster.env.run(until=cluster.env.now + 100_000)
    assert process.triggered, "transaction did not finish within the time budget"
    if not process.ok:
        raise process._value
    return process.value, txn
