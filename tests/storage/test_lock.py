"""Tests for the lock manager: modes, policies, fairness and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Environment
from repro.storage.lock import LockManager, LockMode, LockPolicy
from repro.storage.record import Record
from repro.txn.transaction import TxnId


def make_manager(policy=LockPolicy.WAIT_DIE):
    env = Environment()
    return env, LockManager(env, policy)


def acquire(env, manager, tid, record, mode, policy=None):
    """Drive an acquire generator to completion and return its result."""
    proc = env.process(manager.acquire(tid, record, mode, policy))
    env.run(until=env.now + 1_000)
    if not proc.triggered:
        return None  # still waiting
    return proc.value


def test_shared_locks_are_compatible():
    env, manager = make_manager()
    record = Record(1, {})
    assert acquire(env, manager, TxnId(1, 0), record, LockMode.SHARED) is True
    assert acquire(env, manager, TxnId(2, 0), record, LockMode.SHARED) is True
    assert len(manager.holders_of(record)) == 2


def test_exclusive_lock_blocks_everyone():
    env, manager = make_manager(LockPolicy.NO_WAIT)
    record = Record(1, {})
    assert acquire(env, manager, TxnId(1, 0), record, LockMode.EXCLUSIVE) is True
    assert acquire(env, manager, TxnId(2, 0), record, LockMode.SHARED) is False
    assert acquire(env, manager, TxnId(3, 0), record, LockMode.EXCLUSIVE) is False


def test_reentrant_acquisition_is_a_noop():
    env, manager = make_manager()
    record = Record(1, {})
    tid = TxnId(5, 0)
    assert acquire(env, manager, tid, record, LockMode.EXCLUSIVE) is True
    assert acquire(env, manager, tid, record, LockMode.EXCLUSIVE) is True
    assert acquire(env, manager, tid, record, LockMode.SHARED) is True
    assert manager.holders_of(record) == {tid: LockMode.EXCLUSIVE}


def test_upgrade_by_sole_holder_succeeds():
    env, manager = make_manager()
    record = Record(1, {})
    tid = TxnId(1, 0)
    assert acquire(env, manager, tid, record, LockMode.SHARED) is True
    assert acquire(env, manager, tid, record, LockMode.EXCLUSIVE) is True
    assert manager.held_by(tid, record) is LockMode.EXCLUSIVE


def test_no_wait_policy_never_waits():
    env, manager = make_manager(LockPolicy.NO_WAIT)
    record = Record(1, {})
    assert acquire(env, manager, TxnId(2, 0), record, LockMode.EXCLUSIVE) is True
    assert acquire(env, manager, TxnId(1, 0), record, LockMode.EXCLUSIVE) is False
    assert manager.stats["waits"] == 0


def test_wait_die_older_waits_and_gets_lock_on_release():
    env, manager = make_manager(LockPolicy.WAIT_DIE)
    record = Record(1, {})
    young, old = TxnId(10, 0), TxnId(1, 0)
    assert acquire(env, manager, young, record, LockMode.EXCLUSIVE) is True
    waiter = env.process(manager.acquire(old, record, LockMode.EXCLUSIVE))
    env.run(until=env.now + 10)
    assert not waiter.triggered  # still waiting
    manager.release_all(young)
    env.run(until=env.now + 10)
    assert waiter.triggered and waiter.value is True
    assert manager.held_by(old, record) is LockMode.EXCLUSIVE


def test_wait_die_younger_dies():
    env, manager = make_manager(LockPolicy.WAIT_DIE)
    record = Record(1, {})
    old, young = TxnId(1, 0), TxnId(9, 0)
    assert acquire(env, manager, old, record, LockMode.EXCLUSIVE) is True
    assert acquire(env, manager, young, record, LockMode.EXCLUSIVE) is False


def test_new_requests_do_not_overtake_queued_waiters():
    """FIFO fairness: shared readers must not starve a queued upgrade."""
    env, manager = make_manager(LockPolicy.WAIT_DIE)
    record = Record(1, {})
    holder = TxnId(5, 0)
    upgrader = TxnId(1, 0)  # older, so it waits
    assert acquire(env, manager, holder, record, LockMode.SHARED) is True
    waiter = env.process(manager.acquire(upgrader, record, LockMode.EXCLUSIVE))
    env.run(until=env.now + 5)
    assert not waiter.triggered
    # A brand-new shared request (even an old one) must not jump the queue.
    late_reader = TxnId(2, 0)
    assert acquire(env, manager, late_reader, record, LockMode.SHARED) is False
    manager.release_all(holder)
    env.run(until=env.now + 5)
    assert waiter.triggered and waiter.value is True


def test_wait_die_considers_queued_waiters_for_age_check():
    env, manager = make_manager(LockPolicy.WAIT_DIE)
    record = Record(1, {})
    holder = TxnId(10, 0)
    oldest = TxnId(1, 0)
    middle = TxnId(5, 0)
    assert acquire(env, manager, holder, record, LockMode.EXCLUSIVE) is True
    env.process(manager.acquire(oldest, record, LockMode.EXCLUSIVE))
    env.run(until=env.now + 5)
    # ``middle`` is older than the holder but younger than the queued waiter,
    # so it must die (waiting would allow wait-for cycles with parallel 2PC).
    assert acquire(env, manager, middle, record, LockMode.EXCLUSIVE) is False


def test_release_wakes_compatible_shared_waiters_together():
    env, manager = make_manager(LockPolicy.WAIT_DIE)
    record = Record(1, {})
    holder = TxnId(50, 0)
    # Enqueue the younger reader first: the older one may queue behind it
    # (waiting only for younger transactions keeps WAIT_DIE deadlock-free).
    readers = [TxnId(2, 0), TxnId(1, 0)]
    assert acquire(env, manager, holder, record, LockMode.EXCLUSIVE) is True
    procs = [env.process(manager.acquire(r, record, LockMode.SHARED)) for r in readers]
    env.run(until=env.now + 5)
    manager.release_all(holder)
    env.run(until=env.now + 5)
    assert all(p.triggered and p.value for p in procs)
    assert len(manager.holders_of(record)) == 2


def test_release_all_clears_every_lock():
    env, manager = make_manager()
    records = [Record(i, {}) for i in range(5)]
    tid = TxnId(1, 0)
    for record in records:
        assert acquire(env, manager, tid, record, LockMode.EXCLUSIVE) is True
    assert manager.locks_held(tid) == set(records)
    manager.release_all(tid)
    assert manager.locks_held(tid) == set()
    assert not any(manager.is_locked(r) for r in records)


def test_release_is_idempotent_for_non_holders():
    env, manager = make_manager()
    record = Record(1, {})
    manager.release(TxnId(1, 0), record)  # no-op, no error
    assert not manager.is_locked(record)


def test_abort_waiters_fails_queued_requests():
    env, manager = make_manager(LockPolicy.WAIT_DIE)
    record = Record(1, {})
    holder, waiter_tid = TxnId(9, 0), TxnId(1, 0)
    assert acquire(env, manager, holder, record, LockMode.EXCLUSIVE) is True
    waiter = env.process(manager.acquire(waiter_tid, record, LockMode.EXCLUSIVE))
    env.run(until=env.now + 5)
    manager.abort_waiters(record)
    env.run(until=env.now + 5)
    assert waiter.triggered and waiter.value is False


def test_force_release_everything_clears_state():
    env, manager = make_manager()
    records = [Record(i, {}) for i in range(3)]
    for i, record in enumerate(records):
        assert acquire(env, manager, TxnId(i + 1, 0), record, LockMode.EXCLUSIVE) is True
    manager.force_release_everything()
    assert all(not manager.is_locked(r) for r in records)


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=6),   # transaction number
            st.integers(min_value=0, max_value=3),   # record number
            st.booleans(),                            # exclusive?
        ),
        min_size=1,
        max_size=40,
    )
)
def test_lock_invariants_hold_under_random_schedules(ops):
    """Property: never two exclusive holders; shared/exclusive never coexist."""
    env, manager = make_manager(LockPolicy.NO_WAIT)
    records = [Record(i, {}) for i in range(4)]
    held_since_release: dict = {}
    for txn_number, record_number, exclusive in ops:
        tid = TxnId(txn_number, 0)
        record = records[record_number]
        mode = LockMode.EXCLUSIVE if exclusive else LockMode.SHARED
        acquire(env, manager, tid, record, mode)
        holders = manager.holders_of(record)
        exclusive_holders = [t for t, m in holders.items() if m is LockMode.EXCLUSIVE]
        assert len(exclusive_holders) <= 1
        if exclusive_holders:
            assert len(holders) == 1
    for record in records:
        # Releasing everything leaves no lock state behind.
        for tid in list(manager.holders_of(record)):
            manager.release(tid, record)
        assert not manager.is_locked(record)
