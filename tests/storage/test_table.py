"""Tests for tables, records and secondary indexes."""

import pytest

from repro.storage.record import Record
from repro.storage.table import Table, TableError


def test_record_install_updates_timestamps_and_version():
    record = Record("k", {"v": 1})
    assert record.wts == 0.0 and record.rts == 0.0 and record.version == 0
    record.install({"v": 2}, ts=7.0)
    assert record.value == {"v": 2}
    assert record.wts == 7.0 and record.rts == 7.0
    assert record.version == 1


def test_record_install_fields_merges_columns():
    record = Record("k", {"a": 1, "b": 2})
    record.install_fields({"b": 5}, ts=3.0)
    assert record.value == {"a": 1, "b": 5}
    assert record.valid_at(3.0)


def test_record_extend_rts_never_shrinks():
    record = Record("k", {})
    record.install({}, ts=5.0)
    record.extend_rts(3.0)
    assert record.rts == 5.0
    record.extend_rts(9.0)
    assert record.rts == 9.0
    assert record.valid_at(7.0)
    assert not record.valid_at(4.0)


def test_record_snapshot_is_a_copy():
    record = Record("k", {"v": 1})
    snapshot = record.snapshot()
    snapshot["v"] = 99
    assert record.value["v"] == 1


def test_table_insert_get_require():
    table = Table("t")
    table.insert(1, {"x": 1})
    assert table.get(1).value == {"x": 1}
    assert table.get(2) is None
    with pytest.raises(TableError):
        table.require(2)
    assert len(table) == 1
    assert 1 in table and 2 not in table


def test_table_duplicate_insert_rejected():
    table = Table("t")
    table.insert(1, {})
    with pytest.raises(TableError):
        table.insert(1, {})


def test_table_upsert_overwrites():
    table = Table("t")
    table.insert(1, {"x": 1})
    table.upsert(1, {"x": 2})
    assert table.get(1).value == {"x": 2}
    table.upsert(2, {"x": 3})
    assert table.get(2).value == {"x": 3}


def test_table_delete_hides_record():
    table = Table("t")
    table.insert(1, {"x": 1})
    table.delete(1)
    assert table.get(1) is None
    assert 1 not in table
    assert list(table.keys()) == []
    # Re-inserting a deleted key is allowed.
    table.insert(1, {"x": 2})
    assert table.get(1).value == {"x": 2}


def test_table_scan_with_predicate():
    table = Table("t")
    for i in range(10):
        table.insert(i, {"value": i})
    matches = table.scan(lambda row: row["value"] % 2 == 0)
    assert sorted(r.key for r in matches) == [0, 2, 4, 6, 8]


def test_secondary_index_lookup_and_maintenance():
    table = Table("customer")
    index = table.create_index("by_last", lambda row: row["last"])
    table.insert(1, {"last": "SMITH"})
    table.insert(2, {"last": "SMITH"})
    table.insert(3, {"last": "JONES"})
    assert sorted(table.index_lookup("by_last", "SMITH")) == [1, 2]
    assert table.index_lookup("by_last", "DOE") == []
    table.delete(2)
    assert table.index_lookup("by_last", "SMITH") == [1]
    assert index.lookup("JONES") == [3]


def test_index_created_after_data_is_backfilled():
    table = Table("t")
    table.insert(1, {"group": "a"})
    table.insert(2, {"group": "b"})
    table.create_index("by_group", lambda row: row["group"])
    assert table.index_lookup("by_group", "a") == [1]


def test_duplicate_index_name_rejected():
    table = Table("t")
    table.create_index("idx", lambda row: row.get("x"))
    with pytest.raises(TableError):
        table.create_index("idx", lambda row: row.get("x"))
    with pytest.raises(TableError):
        table.index("missing")
