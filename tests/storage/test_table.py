"""Tests for tables, records and secondary indexes."""

import pytest

from repro.storage.record import Record
from repro.storage.table import Table, TableError


def test_record_install_updates_timestamps_and_version():
    record = Record("k", {"v": 1})
    assert record.wts == 0.0 and record.rts == 0.0 and record.version == 0
    record.install({"v": 2}, ts=7.0)
    assert record.value == {"v": 2}
    assert record.wts == 7.0 and record.rts == 7.0
    assert record.version == 1


def test_record_install_fields_merges_columns():
    record = Record("k", {"a": 1, "b": 2})
    record.install_fields({"b": 5}, ts=3.0)
    assert record.value == {"a": 1, "b": 5}
    assert record.valid_at(3.0)


def test_record_extend_rts_never_shrinks():
    record = Record("k", {})
    record.install({}, ts=5.0)
    record.extend_rts(3.0)
    assert record.rts == 5.0
    record.extend_rts(9.0)
    assert record.rts == 9.0
    assert record.valid_at(7.0)
    assert not record.valid_at(4.0)


def test_record_snapshot_is_a_copy():
    record = Record("k", {"v": 1})
    snapshot = record.snapshot()
    snapshot["v"] = 99
    assert record.value["v"] == 1


def test_table_insert_get_require():
    table = Table("t")
    table.insert(1, {"x": 1})
    assert table.get(1).value == {"x": 1}
    assert table.get(2) is None
    with pytest.raises(TableError):
        table.require(2)
    assert len(table) == 1
    assert 1 in table and 2 not in table


def test_table_duplicate_insert_rejected():
    table = Table("t")
    table.insert(1, {})
    with pytest.raises(TableError):
        table.insert(1, {})


def test_table_upsert_overwrites():
    table = Table("t")
    table.insert(1, {"x": 1})
    table.upsert(1, {"x": 2})
    assert table.get(1).value == {"x": 2}
    table.upsert(2, {"x": 3})
    assert table.get(2).value == {"x": 3}


def test_table_delete_hides_record():
    table = Table("t")
    table.insert(1, {"x": 1})
    table.delete(1)
    assert table.get(1) is None
    assert 1 not in table
    assert list(table.keys()) == []
    # Re-inserting a deleted key is allowed.
    table.insert(1, {"x": 2})
    assert table.get(1).value == {"x": 2}


def test_table_scan_with_predicate():
    table = Table("t")
    for i in range(10):
        table.insert(i, {"value": i})
    matches = table.scan(lambda row: row["value"] % 2 == 0)
    assert sorted(r.key for r in matches) == [0, 2, 4, 6, 8]


def test_secondary_index_lookup_and_maintenance():
    table = Table("customer")
    index = table.create_index("by_last", lambda row: row["last"])
    table.insert(1, {"last": "SMITH"})
    table.insert(2, {"last": "SMITH"})
    table.insert(3, {"last": "JONES"})
    assert sorted(table.index_lookup("by_last", "SMITH")) == [1, 2]
    assert table.index_lookup("by_last", "DOE") == []
    table.delete(2)
    assert table.index_lookup("by_last", "SMITH") == [1]
    assert index.lookup("JONES") == [3]


def test_index_created_after_data_is_backfilled():
    table = Table("t")
    table.insert(1, {"group": "a"})
    table.insert(2, {"group": "b"})
    table.create_index("by_group", lambda row: row["group"])
    assert table.index_lookup("by_group", "a") == [1]


def test_duplicate_index_name_rejected():
    table = Table("t")
    table.create_index("idx", lambda row: row.get("x"))
    with pytest.raises(TableError):
        table.create_index("idx", lambda row: row.get("x"))
    with pytest.raises(TableError):
        table.index("missing")


def test_len_is_maintained_across_delete_and_reinsert():
    """__len__ is a maintained counter now, not a scan — pin its bookkeeping."""
    table = Table("t")
    assert len(table) == 0
    for i in range(5):
        table.insert(i, {"x": i})
    assert len(table) == 5
    table.delete(2)
    table.delete(4)
    assert len(table) == 3
    # Re-insert over a deleted key.
    table.insert(2, {"x": 22})
    assert len(table) == 4
    # Upsert over a live key must not change the count...
    table.upsert(0, {"x": 100})
    assert len(table) == 4
    # ...upsert over a deleted key revives it...
    table.upsert(4, {"x": 44})
    assert len(table) == 5
    # ...and upsert of a brand-new key inserts.
    table.upsert(9, {"x": 9})
    assert len(table) == 6
    table.delete(9)
    table.delete(0)
    assert len(table) == 4
    assert len(table) == sum(1 for _ in table.records())  # agrees with a scan


def test_len_agrees_with_scan_under_random_mutation():
    import random

    rng = random.Random(1234)
    table = Table("t")
    live = set()
    for step in range(2_000):
        key = rng.randrange(50)
        action = rng.random()
        if action < 0.4:
            if key not in live:
                table.insert(key, {"v": step})
                live.add(key)
        elif action < 0.7:
            table.upsert(key, {"v": step})
            live.add(key)
        elif live and key in live:
            table.delete(key)
            live.discard(key)
    assert len(table) == len(live) == sum(1 for _ in table.records())


def test_secondary_index_preserves_insertion_order_after_removals():
    """TPC-C customer-by-last-name relies on insertion-ordered lookups."""
    table = Table("customer")
    table.create_index("by_last", lambda row: row["last"])
    for key in (10, 30, 20, 40, 50):
        table.insert(key, {"last": "BARBARBAR"})
    assert table.index_lookup("by_last", "BARBARBAR") == [10, 30, 20, 40, 50]
    table.delete(20)
    assert table.index_lookup("by_last", "BARBARBAR") == [10, 30, 40, 50]
    table.delete(10)
    table.insert(10, {"last": "BARBARBAR"})  # re-insert goes to the back
    assert table.index_lookup("by_last", "BARBARBAR") == [30, 40, 50, 10]


def test_secondary_index_remove_of_absent_key_is_a_noop():
    table = Table("t")
    index = table.create_index("by_g", lambda row: row["g"])
    table.insert(1, {"g": "a"})
    index.remove(99, {"g": "a"})  # not indexed: must not raise
    index.remove(1, {"g": "zzz"})  # wrong index key: must not raise
    assert index.lookup("a") == [1]


def test_upsert_moves_record_between_index_keys():
    table = Table("t")
    table.create_index("by_g", lambda row: row["g"])
    table.insert(1, {"g": "a"})
    table.insert(2, {"g": "a"})
    table.upsert(1, {"g": "b"})
    assert table.index_lookup("by_g", "a") == [2]
    assert table.index_lookup("by_g", "b") == [1]
