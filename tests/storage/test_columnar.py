"""Tests for the columnar storage backend (fixed-schema tables).

The columnar table must be a drop-in behind the ``Table``/``Record``
interface: same values, same unique-key/missing-key errors, same record
semantics — just arrays instead of boxed objects.  The memory test pins the
reason the backend exists: an order-of-magnitude smaller footprint per row.
"""

import tracemalloc

import pytest

from repro.storage.columnar import ColumnarRecord, ColumnarTable, TableSchema
from repro.storage.partition import PartitionStore
from repro.storage.table import Table, TableError
from repro.sim.engine import Environment

SCHEMA = TableSchema((("a", "i"), ("b", "f")))


def make_table():
    return ColumnarTable("t", SCHEMA)


# -- schema validation ---------------------------------------------------------

def test_schema_rejects_bad_kind_duplicate_and_empty():
    with pytest.raises(ValueError):
        TableSchema((("x", "s"),))
    with pytest.raises(ValueError):
        TableSchema((("x", "i"), ("x", "f")))
    with pytest.raises(ValueError):
        TableSchema(())


# -- Table interface parity ----------------------------------------------------

def test_insert_get_require_matches_dict_table():
    columnar, reference = make_table(), Table("t")
    for table in (columnar, reference):
        table.insert(0, {"a": 1, "b": 2.5})
    assert columnar.get(0).value == reference.get(0).value == {"a": 1, "b": 2.5}
    assert columnar.get(7) is None and reference.get(7) is None
    with pytest.raises(TableError):
        columnar.require(7)
    assert len(columnar) == 1
    assert 0 in columnar and 7 not in columnar


def test_duplicate_insert_rejected():
    table = make_table()
    table.insert(0, {"a": 1, "b": 0.0})
    with pytest.raises(TableError):
        table.insert(0, {"a": 2, "b": 0.0})


def test_delete_hides_and_reinsert_reuses_the_row():
    table = make_table()
    table.insert(0, {"a": 1, "b": 0.0})
    table.insert(1, {"a": 2, "b": 0.0})
    table.delete(0)
    assert table.get(0) is None and 0 not in table
    assert list(table.keys()) == [1]
    rows_before = table._n_rows
    table.insert(0, {"a": 9, "b": 9.0})  # tombstone reuse, no new row
    assert table._n_rows == rows_before
    assert table.get(0).value == {"a": 9, "b": 9.0}
    assert len(table) == 2


def test_upsert_overwrites_and_revives():
    table = make_table()
    table.insert(0, {"a": 1, "b": 1.0})
    table.upsert(0, {"a": 2, "b": 2.0})
    assert table.get(0).value == {"a": 2, "b": 2.0}
    table.delete(0)
    table.upsert(0, {"a": 3, "b": 3.0})
    assert table.get(0).value == {"a": 3, "b": 3.0}
    assert len(table) == 1


def test_unknown_column_raises_table_error():
    table = make_table()
    with pytest.raises(TableError, match="not in the fixed schema"):
        table.insert(0, {"a": 1, "c": 2})
    table.insert(0, {"a": 1, "b": 0.0})
    with pytest.raises(TableError, match="not in the fixed schema"):
        table.get(0).install_fields({"c": 5}, ts=1.0)


def test_non_numeric_value_rolls_back_cleanly():
    table = make_table()
    table.insert(0, {"a": 1, "b": 0.0})
    with pytest.raises(TableError, match="numeric"):
        table.insert(1, {"a": "oops", "b": 0.0})
    # The half-appended row was rolled back: arrays stay rectangular and the
    # next insert works.
    assert table._n_rows == 1
    table.insert(1, {"a": 2, "b": 0.0})
    assert table.get(1).value == {"a": 2, "b": 0.0}


# -- record semantics ----------------------------------------------------------

def test_record_install_updates_timestamps_and_version():
    table = make_table()
    record = table.insert(0, {"a": 1, "b": 0.0})
    assert record.wts == 0.0 and record.rts == 0.0 and record.version == 0
    record.install({"a": 2}, ts=7.0)
    assert record.value == {"a": 2, "b": 0.0}  # full install zero-fills b
    assert record.wts == 7.0 and record.rts == 7.0 and record.version == 1


def test_record_install_fields_merges_columns():
    table = make_table()
    record = table.insert(0, {"a": 1, "b": 2.0})
    record.install_fields({"b": 5.0}, ts=3.0)
    assert record.value == {"a": 1, "b": 5.0}
    assert record.valid_at(3.0)


def test_record_extend_rts_never_shrinks():
    table = make_table()
    record = table.insert(0, {"a": 0, "b": 0.0})
    record.install({}, ts=5.0)
    record.extend_rts(3.0)
    assert record.rts == 5.0
    record.extend_rts(9.0)
    assert record.rts == 9.0
    assert record.valid_at(7.0) and not record.valid_at(4.0)


def test_record_snapshot_is_a_copy_and_get_defaults():
    table = make_table()
    record = table.insert(0, {"a": 1, "b": 2.0})
    snapshot = record.snapshot()
    snapshot["a"] = 99
    assert record.value["a"] == 1
    assert record.get("a") == 1
    assert record.get("nope", "dflt") == "dflt"


def test_views_of_one_row_share_state_and_identity():
    """Two views of one row are the same record to the lock manager."""
    table = make_table()
    table.insert(0, {"a": 1, "b": 0.0})
    table.insert(1, {"a": 2, "b": 0.0})
    first, second = table.get(0), table.get(0)
    assert first == second and hash(first) == hash(second)
    assert len({first, second}) == 1  # held-lock sets rely on this
    assert first != table.get(1)
    first.wts = 42.0
    assert second.wts == 42.0  # write-through to the shared arrays
    first.lock_state = "sentinel"
    assert second.lock_state == "sentinel"
    assert type(second) is ColumnarRecord


# -- dense keys and sparse fallback --------------------------------------------

def test_dense_mode_stores_no_key_objects():
    table = make_table()
    for key in range(100):
        table.insert(key, {"a": key, "b": 0.0})
    assert table._dense and table._keys is None and table._key_rows is None
    assert list(table.keys()) == list(range(100))
    assert [r.key for r in table.records()][:3] == [0, 1, 2]


@pytest.mark.parametrize("odd_key", [5, "user7", -3])
def test_out_of_order_key_falls_back_to_sparse(odd_key):
    table = make_table()
    table.insert(0, {"a": 0, "b": 0.0})
    table.insert(1, {"a": 1, "b": 0.0})
    table.insert(odd_key, {"a": 9, "b": 0.0})
    assert not table._dense
    # Pre-existing rows keep their keys; the odd key resolves too.
    assert table.get(0).value["a"] == 0
    assert table.get(1).value["a"] == 1
    assert table.get(odd_key).value["a"] == 9
    assert list(table.keys()) == [0, 1, odd_key]


def test_sparse_fallback_preserves_record_identity():
    table = make_table()
    table.insert(0, {"a": 0, "b": 0.0})
    before = table.get(0)
    table.insert("odd", {"a": 1, "b": 0.0})
    after = table.get(0)
    assert before == after  # same (table, row) even across the mode switch


# -- scans and secondary indexes -----------------------------------------------

def test_scan_filters_on_materialized_rows():
    table = make_table()
    for key in range(10):
        table.insert(key, {"a": key, "b": 0.0})
    table.delete(3)
    hits = table.scan(lambda row: row["a"] >= 7)
    assert sorted(r.key for r in hits) == [7, 8, 9]
    assert all(r.value["a"] >= 7 for r in hits)


def test_secondary_index_tracks_insert_delete_upsert():
    table = make_table()
    table.insert(0, {"a": 1, "b": 0.0})
    table.create_index("by_a", lambda row: row["a"])
    table.insert(1, {"a": 1, "b": 0.0})
    table.insert(2, {"a": 2, "b": 0.0})
    assert sorted(table.index_lookup("by_a", 1)) == [0, 1]
    table.delete(1)
    assert table.index_lookup("by_a", 1) == [0]
    table.upsert(2, {"a": 1, "b": 0.0})
    assert sorted(table.index_lookup("by_a", 1)) == [0, 2]
    assert table.index_lookup("by_a", 2) == []
    with pytest.raises(TableError):
        table.create_index("by_a", lambda row: row["a"])
    with pytest.raises(TableError):
        table.index("nope")


# -- partition-store backend selection -----------------------------------------

def test_partition_store_selects_backend_by_schema():
    store = PartitionStore(Environment(), 0)
    assert isinstance(store.create_table("cols", schema=SCHEMA), ColumnarTable)
    assert isinstance(store.create_table("dicts"), Table)
    assert store.storage_bytes() == store.table("cols").nbytes


def test_partition_store_dict_backend_overrides_schema():
    store = PartitionStore(Environment(), 0, backend="dict")
    assert isinstance(store.create_table("cols", schema=SCHEMA), Table)


def test_partition_store_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown storage backend"):
        PartitionStore(Environment(), 0, backend="mmap")


# -- the point of the backend: memory ------------------------------------------

def test_columnar_rows_are_at_least_5x_smaller_than_dict_rows():
    """The acceptance bar for the million-key tiers, at a CI-friendly size."""
    n = 50_000
    row = {"a": 0, "b": 0.0}

    def load(table):
        for key in range(n):
            table.insert(key, row)

    tracemalloc.start()
    base = tracemalloc.take_snapshot()
    dict_table = Table("d")
    load(dict_table)
    dict_bytes = sum(
        s.size_diff for s in tracemalloc.take_snapshot().compare_to(base, "filename")
    )
    del dict_table
    base = tracemalloc.take_snapshot()
    columnar = ColumnarTable("c", SCHEMA)
    load(columnar)
    columnar_bytes = sum(
        s.size_diff for s in tracemalloc.take_snapshot().compare_to(base, "filename")
    )
    tracemalloc.stop()
    assert len(columnar) == n
    assert columnar_bytes * 5 <= dict_bytes, (
        f"columnar rows should be >=5x smaller: {columnar_bytes:,} B vs "
        f"{dict_bytes:,} B for {n:,} rows"
    )
