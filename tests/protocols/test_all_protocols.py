"""Cross-protocol behaviour tests: every protocol must process every workload
correctly (commits happen, invariants hold, locks are cleaned up)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import PROTOCOLS

from tests.conftest import TransferWorkload, tiny_config, tiny_ycsb


DEFAULT_DURABILITY = {
    "primo": "wm",
    "2pl_nw": "coco",
    "2pl_wd": "coco",
    "silo": "coco",
    "sundial": "coco",
    "aria": "none",
    "tapir": "sync",
}


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_protocol_commits_ycsb_transactions(protocol):
    cluster = Cluster(
        tiny_config(protocol, durability=DEFAULT_DURABILITY[protocol]), tiny_ycsb()
    )
    result = cluster.run()
    assert result.committed > 50, f"{protocol} committed too few transactions"
    assert 0.0 <= result.abort_rate < 1.0


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_protocol_preserves_the_transfer_invariant(protocol):
    """No lost updates and no partially installed distributed transactions."""
    workload = TransferWorkload(accounts_per_partition=150)
    cluster = Cluster(
        tiny_config(protocol, durability=DEFAULT_DURABILITY[protocol]), workload
    )
    cluster.run()
    assert workload.total_balance(cluster) == pytest.approx(
        workload.expected_total(cluster), rel=1e-9
    )


@pytest.mark.parametrize("protocol", [p for p in PROTOCOLS if p != "aria"])
def test_no_locks_left_behind_after_the_run(protocol):
    cluster = Cluster(
        tiny_config(protocol, durability=DEFAULT_DURABILITY[protocol]), tiny_ycsb()
    )
    cluster.run()
    # Drain any in-flight messages, then check every record is unlocked.
    cluster.env.run(until=cluster.env.now + 50_000)
    for server in cluster.servers.values():
        table = server.store.table("usertable")
        locked = [r.key for r in table.records()
                  if r.lock_state is not None and r.lock_state.locked]
        assert locked == [], f"{protocol} left locks on partition {server.partition_id}"


@pytest.mark.parametrize("protocol", ["primo", "sundial", "silo", "2pl_wd"])
def test_protocols_work_on_tpcc(protocol):
    from repro.workloads.tpcc import TPCCConfig, TPCCWorkload

    workload = TPCCWorkload(
        TPCCConfig(warehouses_per_partition=2, items=50, customers_per_district=10)
    )
    cluster = Cluster(
        tiny_config(protocol, durability=DEFAULT_DURABILITY[protocol]), workload
    )
    result = cluster.run()
    assert result.committed > 50
    assert "new_order" in result.per_txn_type


def test_primo_uses_fewer_messages_per_distributed_commit_than_sundial():
    """The headline mechanism: no prepare/commit round trips in Primo."""
    ycsb = dict(keys_per_partition=2_000, distributed_pct=1.0, zipf_theta=0.0)
    _, primo = _run("primo", ycsb)
    _, sundial = _run("sundial", ycsb)
    primo_msgs = primo.network_messages / max(primo.committed, 1)
    sundial_msgs = sundial.network_messages / max(sundial.committed, 1)
    assert primo_msgs < sundial_msgs


def test_primo_outperforms_2pl_under_contention():
    """Directional check of the paper's main claim on a small configuration."""
    ycsb = dict(keys_per_partition=2_000, zipf_theta=0.8, distributed_pct=0.3)
    _, primo = _run("primo", ycsb)
    _, two_pl = _run("2pl_nw", ycsb)
    assert primo.throughput_tps > two_pl.throughput_tps


def _run(protocol, ycsb_params):
    cluster = Cluster(
        tiny_config(protocol, durability=DEFAULT_DURABILITY[protocol],
                    workers_per_partition=2, inflight_per_worker=2),
        tiny_ycsb(**ycsb_params),
    )
    return cluster, cluster.run()


def test_aria_reexecutes_conflicting_transactions():
    cluster = Cluster(
        tiny_config("aria", durability="none"),
        tiny_ycsb(keys_per_partition=300, zipf_theta=0.9),
    )
    result = cluster.run()
    assert cluster.protocol.stats["batches"] > 1
    assert result.aborted > 0          # reservation conflicts under high skew
    assert result.committed > 0


def test_tapir_has_low_latency_without_group_commit():
    cluster = Cluster(tiny_config("tapir", durability="sync"), tiny_ycsb())
    result = cluster.run()
    assert result.committed > 0
    assert result.mean_latency_ms < 2.0
