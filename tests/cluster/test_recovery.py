"""Crash-injection and recovery tests (§5.2)."""

import pytest

from repro.cluster.cluster import Cluster

from tests.conftest import TransferWorkload, tiny_config, tiny_ycsb


def crash_config(protocol="primo", durability="wm", **overrides):
    settings = dict(
        durability=durability,
        duration_us=30_000.0,
        warmup_us=2_000.0,
        epoch_length_us=2_000.0,
        crash_partition=1,
        crash_time_us=15_000.0,
        heartbeat_interval_us=500.0,
        heartbeat_timeout_us=2_000.0,
    )
    settings.update(overrides)
    return tiny_config(protocol, **settings)


def test_crash_is_detected_and_recovered():
    cluster = Cluster(crash_config(), tiny_ycsb())
    result = cluster.run()
    assert result.metrics.counters.get("crashes_injected") == 1
    assert cluster.recovery.stats["recoveries"] >= 1
    # The failed partition is back as a (new) leader by the end of the run.
    assert not cluster.servers[1].crashed
    assert cluster.membership.is_alive(1)
    assert result.committed > 0


def test_crash_aborts_transactions_above_the_agreed_watermark():
    cluster = Cluster(
        crash_config(n_partitions=3, workers_per_partition=2, inflight_per_worker=2),
        tiny_ycsb(),
    )
    result = cluster.run()
    assert result.metrics.crash_aborted > 0
    assert 0.0 < result.crash_abort_rate < 1.0


def test_recovery_agrees_on_the_maximum_published_watermark():
    cluster = Cluster(crash_config(), tiny_ycsb())
    cluster.run()
    term = cluster.membership.current_term
    assert term >= 1
    published = cluster.membership.published_watermarks(term)
    assert len(published) == cluster.config.n_partitions
    agreed = cluster.membership.agreed_global_watermark(term)
    assert agreed == max(published.values())


def test_rollback_preserves_the_transfer_invariant():
    """After crash + rollback the total balance must still be conserved."""
    workload = TransferWorkload(accounts_per_partition=100)
    cluster = Cluster(crash_config(), workload)
    cluster.run()
    assert workload.total_balance(cluster) == pytest.approx(
        workload.expected_total(cluster), rel=1e-9
    )


def test_throughput_continues_after_recovery():
    """Primo keeps processing transactions after the failed partition rejoins."""
    cluster = Cluster(crash_config(duration_us=40_000.0), tiny_ycsb())
    result = cluster.run()
    # Transactions were still being committed in the post-recovery period.
    assert result.committed > 100


def test_coco_crash_aborts_the_epoch():
    cluster = Cluster(crash_config(protocol="sundial", durability="coco"), tiny_ycsb())
    result = cluster.run()
    assert cluster.durability.stats["epochs_aborted"] >= 1
    assert result.metrics.crash_aborted > 0


def test_no_crash_injection_when_not_configured():
    cluster = Cluster(tiny_config("primo"), tiny_ycsb())
    result = cluster.run()
    assert result.metrics.counters.get("crashes_injected") == 0
    assert result.metrics.crash_aborted == 0
