"""Tests for SystemConfig validation and defaults."""

import pytest

from repro.cluster.config import DURABILITY_SCHEMES, PROTOCOLS, SystemConfig


def test_defaults_follow_the_paper_setup():
    config = SystemConfig()
    assert config.n_partitions == 4
    assert config.replicas_per_partition == 3
    assert config.protocol == "primo"
    assert config.durability == "wm"
    assert config.epoch_length_us == pytest.approx(10_000.0)


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        SystemConfig(protocol="three_pc")


def test_unknown_durability_rejected():
    with pytest.raises(ValueError):
        SystemConfig(durability="magnetic_tape")


@pytest.mark.parametrize(
    "field,value",
    [
        ("n_partitions", 0),
        ("workers_per_partition", 0),
        ("inflight_per_worker", 0),
        ("replicas_per_partition", 0),
        ("duration_us", 0.0),
        ("epoch_length_us", 0.0),
    ],
)
def test_invalid_numeric_fields_rejected(field, value):
    with pytest.raises(ValueError):
        SystemConfig(**{field: value})


def test_every_listed_protocol_and_scheme_is_accepted():
    for protocol in PROTOCOLS:
        for durability in DURABILITY_SCHEMES:
            SystemConfig(protocol=protocol, durability=durability)


def test_for_protocol_picks_the_papers_durability_pairings():
    assert SystemConfig.for_protocol("primo").durability == "wm"
    assert SystemConfig.for_protocol("sundial").durability == "coco"
    assert SystemConfig.for_protocol("2pl_nw").durability == "coco"
    assert SystemConfig.for_protocol("tapir").durability == "sync"
    assert SystemConfig.for_protocol("aria").durability == "none"
    assert SystemConfig.for_protocol("silo", durability="clv").durability == "clv"


def test_with_overrides_returns_a_validated_copy():
    base = SystemConfig()
    changed = base.with_overrides(n_partitions=8, protocol="silo")
    assert changed.n_partitions == 8
    assert changed.protocol == "silo"
    assert base.n_partitions == 4  # original untouched
    with pytest.raises(ValueError):
        base.with_overrides(n_partitions=-1)


def test_derived_quantities():
    config = SystemConfig(workers_per_partition=3, inflight_per_worker=2,
                          one_way_network_latency_us=80.0)
    assert config.concurrency_per_partition == 6
    assert config.roundtrip_us == 160.0
    assert config.total_duration_us == config.warmup_us + config.duration_us
