"""Tests for the server, the active-transaction registry and the cluster facade."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.server import ActiveTxnRegistry
from repro.txn.transaction import Transaction, TxnId

from tests.conftest import make_manual_cluster, run_tiny, tiny_config, tiny_ycsb


def test_tids_are_unique_across_servers():
    cluster = make_manual_cluster("primo", n_partitions=3)
    tids = set()
    for server in cluster.servers.values():
        for _ in range(50):
            tids.add(server.new_transaction().tid)
    assert len(tids) == 150


def test_active_registry_minimum_uses_effective_ts():
    registry = ActiveTxnRegistry()
    assert registry.min_effective_ts() is None
    a = Transaction(tid=TxnId(1, 0), coordinator=0, lower_bound_ts=5.0)
    b = Transaction(tid=TxnId(2, 0), coordinator=0, lower_bound_ts=3.0)
    registry.register(a)
    registry.register(b)
    assert registry.min_effective_ts() == 3.0
    b.ts = 9.0
    assert registry.min_effective_ts() == 5.0
    registry.deregister(a)
    assert registry.min_effective_ts() == 9.0
    registry.deregister(b)
    assert registry.is_empty()


def test_registry_register_raises_lower_bound_only_for_unassigned_ts():
    registry = ActiveTxnRegistry()
    txn = Transaction(tid=TxnId(1, 0), coordinator=0, lower_bound_ts=2.0)
    registry.register(txn, lower_bound=7.0)
    assert txn.lower_bound_ts == 7.0
    registry.register(txn, lower_bound=4.0)
    assert txn.lower_bound_ts == 7.0


def test_note_ts_tracks_the_partition_frontier():
    cluster = make_manual_cluster("primo")
    server = cluster.servers[0]
    server.note_ts(10.0)
    server.note_ts(4.0)
    assert server.highest_ts_seen == 10.0


def test_crash_and_recover_toggle_reachability():
    cluster = make_manual_cluster("primo")
    server = cluster.servers[1]
    server.crash()
    assert server.crashed
    assert cluster.network.is_unreachable(1)
    server.recover_as_new_leader()
    assert not server.crashed
    assert not cluster.network.is_unreachable(1)
    assert len(server.active_txns) == 0


def test_cluster_run_produces_consistent_result_summary():
    cluster, result = run_tiny("primo")
    summary = result.summary()
    assert summary["protocol"] == "primo"
    assert summary["workload"] == "ycsb"
    assert summary["committed"] == result.committed > 0
    assert 0.0 <= summary["abort_rate"] <= 1.0
    assert result.network_messages > 0
    assert set(result.per_txn_type) == {"ycsb"}


def test_cluster_is_deterministic_for_a_fixed_seed():
    _, first = run_tiny("primo", seed=123)
    _, second = run_tiny("primo", seed=123)
    assert first.committed == second.committed
    assert first.aborted == second.aborted
    assert first.metrics.latency.count == second.metrics.latency.count


def test_different_seeds_produce_different_schedules():
    _, first = run_tiny("primo", seed=1)
    _, second = run_tiny("primo", seed=2)
    assert (first.committed, first.aborted) != (second.committed, second.aborted)


def test_measurement_window_excludes_warmup():
    cluster, result = run_tiny("primo")
    expected_window = cluster.config.duration_us
    assert result.metrics.duration_us == pytest.approx(expected_window)


def test_start_is_idempotent():
    cluster = Cluster(tiny_config("primo"), tiny_ycsb())
    cluster.start()
    cluster.start()  # must not double-spawn workers
    result = cluster.run()
    assert result.committed > 0


def test_single_partition_cluster_has_no_distributed_transactions():
    cluster, result = run_tiny("primo", n_partitions=1)
    assert result.committed > 0
    assert cluster.network.stats.rpc_calls == 0  # nothing remote to call
