"""Tests of the ``python -m repro.bench`` orchestrating CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench.__main__ import main
from repro.bench.runner import TINY_SCALE

TEST_SCALE = TINY_SCALE

#: The CLI name of the test scale — "tiny" is registered first-class now.
TINY = "tiny"


def run_cli(*argv: str) -> int:
    return main(list(argv))


def test_cli_runs_a_single_figure_and_emits_json(tmp_path, capsys):
    artifact = tmp_path / "figures.json"
    code = run_cli(
        "--only", "fig09", "--scale", TINY,
        "--jobs", "2",
        "--cache-dir", str(tmp_path / "cache"),
        "--emit-json", str(artifact),
        "--quiet-progress",
    )
    assert code == 0
    assert "Figure 9" in capsys.readouterr().out

    data = json.loads(artifact.read_text())
    assert data["meta"]["figures"] == ["fig09"]
    assert data["meta"]["jobs"] == 2
    assert data["meta"]["cells_executed"] == data["meta"]["cells_total"] > 0
    assert data["meta"]["cells_cached"] == 0
    fig09 = data["figures"]["fig09"]
    assert len(fig09["primo"]) == len(fig09["ratios"]) == TEST_SCALE.sweep_points


def test_cli_second_invocation_resumes_from_cache(tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    args = ("--only", "fig09", "--scale", TINY, "--cache-dir", cache_dir,
            "--quiet-progress")
    assert run_cli(*args, "--emit-json", str(first)) == 0
    assert run_cli(*args, "--emit-json", str(second)) == 0

    cold = json.loads(first.read_text())
    warm = json.loads(second.read_text())
    assert cold["meta"]["cells_executed"] > 0
    assert warm["meta"]["cells_executed"] == 0
    assert warm["meta"]["cells_cached"] == warm["meta"]["cells_total"]
    # Cached results render to exactly the same figure data.
    assert warm["figures"] == cold["figures"]


def test_cli_no_cache_skips_the_cache_entirely(tmp_path):
    cache_dir = tmp_path / "cache"
    artifact = tmp_path / "figures.json"
    code = run_cli(
        "--only", "fig09", "--scale", TINY,
        "--cache-dir", str(cache_dir), "--no-cache",
        "--emit-json", str(artifact), "--quiet-progress",
    )
    assert code == 0
    assert not cache_dir.exists()
    assert json.loads(artifact.read_text())["meta"]["cells_cached"] == 0


def test_cli_only_is_an_alias_for_figure(tmp_path, capsys):
    code = run_cli("--figure", "appendix", "--scale", TINY,
                   "--cache-dir", str(tmp_path / "cache"), "--quiet-progress")
    assert code == 0
    assert "Appendix A" in capsys.readouterr().out


def test_cli_rejects_bad_jobs_and_unknown_figures(tmp_path):
    with pytest.raises(SystemExit):
        run_cli("--jobs", "0", "--scale", TINY)
    with pytest.raises(SystemExit):
        run_cli("--only", "fig99", "--scale", TINY)


def test_cli_lists_arrival_processes(capsys):
    assert run_cli("--list", "arrivals") == 0
    out = capsys.readouterr().out
    for name in ("closed", "poisson", "deterministic", "bursty"):
        assert name in out
    assert "burst_factor" in out  # parameters are listed next to the kind


def test_cli_runs_the_openloop_figure(tmp_path, capsys):
    artifact = tmp_path / "figures.json"
    code = run_cli(
        "--figure", "openloop", "--scale", TINY,
        "--cache-dir", str(tmp_path / "cache"),
        "--emit-json", str(artifact),
        "--quiet-progress",
    )
    assert code == 0
    assert "Open loop" in capsys.readouterr().out
    data = json.loads(artifact.read_text())["figures"]["openloop"]
    assert len(data["protocols"]) >= 3
    for series in data["protocols"].values():
        assert len(series["achieved_ktps"]) == len(data["offered_tps"])
        for key in ("p50_ms", "p99_ms", "p999_ms", "dropped"):
            assert key in series


def test_cli_lists_engine_backends(capsys):
    from repro.sim import engine

    assert run_cli("--list", "engines") == 0
    out = capsys.readouterr().out
    for name in engine.BACKENDS:
        assert name in out
    assert "[selected]" in out


def test_cli_engine_matching_loaded_backend_is_a_noop(tmp_path, capsys):
    from repro.sim import engine

    code = run_cli(
        "--engine", engine.ENGINE_BACKEND,
        "--only", "fig09", "--scale", TINY,
        "--cache-dir", str(tmp_path / "cache"),
        "--quiet-progress",
    )
    assert code == 0
    assert "Figure 9" in capsys.readouterr().out


def test_cli_emits_engine_backend_in_meta(tmp_path):
    from repro.sim import engine

    artifact = tmp_path / "figures.json"
    assert run_cli(
        "--only", "fig09", "--scale", TINY,
        "--cache-dir", str(tmp_path / "cache"),
        "--emit-json", str(artifact),
        "--quiet-progress",
    ) == 0
    data = json.loads(artifact.read_text())
    assert data["meta"]["engine_backend"] == engine.ENGINE_BACKEND


def test_cli_engine_mismatch_errors_for_programmatic_calls(tmp_path):
    """main(argv) cannot re-exec; a backend mismatch must error cleanly."""
    from repro.sim import engine

    other = "py" if engine.ENGINE_BACKEND == "c" else "c"
    if other == "c" and engine.load_ckernel() is None:
        pytest.skip("compiled kernel unavailable; mismatch path needs both")
    with pytest.raises(SystemExit):
        run_cli("--engine", other, "--list", "figures")
