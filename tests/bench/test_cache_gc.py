"""Cache garbage collection: version-skew pruning and tmp-file reaping."""

import json
import os
import time

from repro.bench.orchestrator import (
    CACHE_SCHEMA_VERSION,
    SUBSTRATE_VERSION,
    ResultCache,
    collect_cache_garbage,
    make_cell,
)


def valid_entry(tmp_path, key="a" * 32) -> None:
    cache = ResultCache(tmp_path)
    cache.root.mkdir(parents=True, exist_ok=True)
    entry = {
        "schema": CACHE_SCHEMA_VERSION,
        "substrate_version": SUBSTRATE_VERSION,
        "result": {"protocol": "primo"},
    }
    (cache.root / f"{key}.json").write_text(json.dumps(entry))


def test_gc_keeps_valid_entries_and_prunes_skewed_ones(tmp_path):
    valid_entry(tmp_path, key="b" * 32)
    (tmp_path / ("c" * 32 + ".json")).write_text(json.dumps({
        "schema": CACHE_SCHEMA_VERSION - 1,
        "substrate_version": SUBSTRATE_VERSION,
        "result": {},
    }))
    (tmp_path / ("d" * 32 + ".json")).write_text(json.dumps({
        "schema": CACHE_SCHEMA_VERSION,
        "substrate_version": "0.0.0-ancient",
        "result": {},
    }))
    (tmp_path / ("e" * 32 + ".json")).write_text("{not json")

    report = collect_cache_garbage(tmp_path)
    assert report.kept == 1
    assert report.stale_entries == 3
    assert report.bytes_reclaimed > 0
    assert (tmp_path / ("b" * 32 + ".json")).exists()
    assert not (tmp_path / ("c" * 32 + ".json")).exists()


def test_gc_dry_run_deletes_nothing(tmp_path):
    (tmp_path / ("f" * 32 + ".json")).write_text("corrupt")
    report = collect_cache_garbage(tmp_path, dry_run=True)
    assert report.dry_run and report.stale_entries == 1
    assert report.bytes_reclaimed > 0
    assert (tmp_path / ("f" * 32 + ".json")).exists()
    assert "would reclaim" in report.describe()


def test_gc_reaps_only_old_tmp_files(tmp_path):
    tmp_path.mkdir(exist_ok=True)
    fresh = tmp_path / ".tmp-fresh.json"
    fresh.write_text("in-flight write")
    old = tmp_path / ".tmp-old.json"
    old.write_text("abandoned write")
    stamp = time.time() - 7200.0
    os.utime(old, (stamp, stamp))

    report = collect_cache_garbage(tmp_path, tmp_age_s=3600.0)
    assert report.orphaned_tmp == 1
    assert fresh.exists()       # may belong to a live ResultCache.put
    assert not old.exists()


def test_gc_of_a_missing_directory_is_a_noop(tmp_path):
    report = collect_cache_garbage(tmp_path / "never-created")
    assert report.kept == report.stale_entries == report.bytes_reclaimed == 0


def test_gc_never_touches_what_get_would_serve(tmp_path):
    # The invariant that makes GC safe to run during a sweep: everything GC
    # removes is already invisible to ResultCache.get.
    cache = ResultCache(tmp_path)
    cell = make_cell("fig", "point", "primo", "tiny")
    cache.put(cell, {
        "protocol": "primo", "durability": "coco", "workload": "ycsb",
        "n_partitions": 2, "metrics": {"committed": 1, "aborted": 0,
                                       "crash_aborted": 0, "duration_us": 1.0,
                                       "latency": [], "breakdown": {},
                                       "counters": {}},
        "network_messages": 0, "per_txn_type": {}, "abort_reasons": {},
        "extra": {},
    })
    before = cache.get(cell)
    assert before is not None
    collect_cache_garbage(tmp_path)
    after = cache.get(cell)
    assert after is not None
    assert after.to_json_dict() == before.to_json_dict()
