"""Tests of the parallel figure-sweep orchestrator and its on-disk cache."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.bench.orchestrator import (
    CACHE_SCHEMA_VERSION,
    Cell,
    NullCache,
    ResultCache,
    SUBSTRATE_VERSION,
    execute_cell,
    make_cell,
    run_cells,
)
from repro.bench.runner import TINY_SCALE
from repro.cluster.results import RunResult

TEST_SCALE = TINY_SCALE


def cell(figure="figX", key="primo", protocol="primo", **kwargs) -> Cell:
    return make_cell(figure, key, protocol, TEST_SCALE, **kwargs)


def fingerprint(result: RunResult) -> tuple:
    return (
        result.committed,
        result.aborted,
        result.network_messages,
        tuple(result.metrics.latency.samples),
    )


# ---------------------------------------------------------------------------
# Cell specs and cache keys
# ---------------------------------------------------------------------------

def test_cache_key_ignores_figure_and_key_identity():
    a = cell(figure="fig04", key="primo")
    b = cell(figure="fig14", key="primo@n4")
    assert a.cache_key() == b.cache_key()


def test_cache_key_changes_with_physics():
    base = cell()
    assert base.cache_key() != cell(protocol="sundial", key="sundial").cache_key()
    assert base.cache_key() != cell(workload="tpcc").cache_key()
    assert base.cache_key() != cell(n_partitions=2).cache_key()
    assert (
        base.cache_key()
        != cell(workload_overrides={"zipf_theta": 0.9}).cache_key()
    )
    assert (
        base.cache_key()
        != cell(durability_message_delay=(1, 1000.0)).cache_key()
    )


def test_cache_key_is_override_order_insensitive():
    a = cell(workload_overrides={"zipf_theta": 0.4, "write_pct": 0.2})
    b = cell(workload_overrides={"write_pct": 0.2, "zipf_theta": 0.4})
    assert a.cache_key() == b.cache_key()


def test_cells_are_hashable_and_usable_as_dict_keys():
    mapping = {cell(): 1, cell(key="other"): 2}
    assert len(mapping) == 2
    assert mapping[cell()] == 1


# ---------------------------------------------------------------------------
# RunResult JSON round-trip
# ---------------------------------------------------------------------------

def test_run_result_json_round_trip_is_lossless():
    result = execute_cell(cell())
    data = json.loads(json.dumps(result.to_json_dict()))
    restored = RunResult.from_json_dict(data)
    assert fingerprint(restored) == fingerprint(result)
    assert restored.summary() == result.summary()
    assert restored.metrics.counters.as_dict() == result.metrics.counters.as_dict()
    assert restored.breakdown_us == result.breakdown_us
    assert restored.protocol == "primo" and restored.workload == "ycsb"


# ---------------------------------------------------------------------------
# Cache behavior
# ---------------------------------------------------------------------------

def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    c = cell()
    assert cache.get(c) is None
    first = run_cells([c], jobs=1, cache=cache)
    assert first.executed == 1 and first.cache_hits == 0
    assert cache.get(c) is not None
    second = run_cells([c], jobs=1, cache=cache)
    assert second.executed == 0 and second.cache_hits == 1
    assert fingerprint(second.results[c]) == fingerprint(first.results[c])


def test_resume_after_interrupt_only_runs_missing_cells(tmp_path):
    """A pre-seeded cache dir (an interrupted sweep) resumes, not recomputes."""
    cache = ResultCache(tmp_path)
    done = cell(key="done")
    missing = cell(key="missing", protocol="sundial")
    cache.put(done, execute_cell(done).to_json_dict())

    outcome = run_cells([done, missing], jobs=1, cache=cache)
    assert outcome.cache_hits == 1
    assert outcome.executed == 1
    assert outcome.results[done].protocol == "primo"
    assert outcome.results[missing].protocol == "sundial"


def test_corrupt_or_mismatched_cache_entries_are_misses(tmp_path):
    cache = ResultCache(tmp_path)
    c = cell()
    run_cells([c], jobs=1, cache=cache)
    path = cache.path_for(c.cache_key())

    path.write_text("not json at all")
    assert cache.get(c) is None

    # Valid JSON that is not an object is also a miss, not a crash.
    path.write_text("[]")
    assert cache.get(c) is None
    path.write_text("null")
    assert cache.get(c) is None

    entry = {
        "schema": CACHE_SCHEMA_VERSION + 1,
        "substrate_version": SUBSTRATE_VERSION,
        "result": {},
    }
    path.write_text(json.dumps(entry))
    assert cache.get(c) is None

    entry = {
        "schema": CACHE_SCHEMA_VERSION,
        "substrate_version": "0.0.0-other",
        "result": {},
    }
    path.write_text(json.dumps(entry))
    assert cache.get(c) is None

    # A corrupt entry degrades to recomputation.
    outcome = run_cells([c], jobs=1, cache=cache)
    assert outcome.executed == 1 and cache.get(c) is not None


def test_null_cache_never_stores():
    c = cell()
    cache = NullCache()
    outcome = run_cells([c, c], jobs=1, cache=cache)
    assert outcome.executed == 1  # deduplicated within the sweep
    assert cache.get(c) is None


def test_identical_specs_share_one_simulation(tmp_path):
    a = cell(figure="fig04", key="primo")
    b = cell(figure="fig14", key="primo@n4")
    outcome = run_cells([a, b], jobs=1, cache=ResultCache(tmp_path))
    assert outcome.executed == 1
    assert outcome.deduplicated == 1
    assert outcome.results[a] is outcome.results[b]


# ---------------------------------------------------------------------------
# Fixed-seed determinism across execution paths
# ---------------------------------------------------------------------------

def test_jobs_1_and_jobs_4_produce_identical_results(tmp_path):
    cells = [
        cell(key="primo"),
        cell(key="sundial", protocol="sundial"),
        cell(key="skewed", workload_overrides={"zipf_theta": 0.9}),
        cell(key="delayed", durability_message_delay=(1, 2_000.0)),
    ]
    inline = run_cells(cells, jobs=1, cache=None)
    pooled = run_cells(cells, jobs=4, cache=ResultCache(tmp_path))
    cached = run_cells(cells, jobs=4, cache=ResultCache(tmp_path))
    assert pooled.executed == len(cells) and cached.executed == 0
    for c in cells:
        assert fingerprint(inline.results[c]) == fingerprint(pooled.results[c])
        assert fingerprint(inline.results[c]) == fingerprint(cached.results[c])


def test_cache_keys_are_stable_across_processes():
    """A spec-derived cache key must not depend on interpreter state (hash
    randomization, registration order): a warm cache written by one process
    has to hit in the next."""
    script = (
        "from repro.bench.orchestrator import make_cell\n"
        "from repro.scales import TINY_SCALE\n"
        "print(make_cell('figX', 'k', 'primo', TINY_SCALE,\n"
        "                workload_overrides={'zipf_theta': 0.9, 'write_pct': 0.2},\n"
        "                durability='coco', n_partitions=2).cache_key())\n"
    )
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    keys = {
        subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={**env, "PYTHONHASHSEED": seed},
        ).stdout.strip()
        for seed in ("0", "12345")
    }
    local = make_cell(
        "figX", "k", "primo", TEST_SCALE,
        workload_overrides={"write_pct": 0.2, "zipf_theta": 0.9},
        durability="coco", n_partitions=2,
    ).cache_key()
    assert keys == {local}


def test_cell_spec_is_a_validated_scenario():
    from repro.scenario import ScenarioSpec

    c = cell(workload_overrides={"zipf_theta": 0.9})
    assert isinstance(c.spec, ScenarioSpec)
    assert c.protocol == "primo" and c.workload == "ycsb"
    assert dict(c.spec.workload_overrides) == {"zipf_theta": 0.9}
    # Cache keys hash the spec's canonical JSON plus the substrate version.
    assert c.cache_key() == Cell("other", "name", c.spec).cache_key()


def test_by_key_maps_results_for_renderers():
    cells = [cell(key="primo"), cell(key="sundial", protocol="sundial")]
    outcome = run_cells(cells, jobs=1)
    by_key = outcome.by_key(cells)
    assert set(by_key) == {"primo", "sundial"}
    assert by_key["sundial"].protocol == "sundial"
