"""Tests for the fixed-memory streaming latency sketch.

Pins the three contracts the million-key tiers rely on: quantile estimates
stay within one bucket's relative error of the exact nearest-rank sample,
shard merges are order-independent, and the serialized form is bounded and
lossless — plus the ``LatencyRecorder`` switchover that keeps every
pre-existing golden on the exact path.
"""

import json

import pytest

from repro.sim.randgen import DeterministicRandom
from repro.sim.sketch import (
    RELATIVE_ERROR,
    TICKS_PER_UNIT,
    LatencySketch,
)
from repro.sim.stats import SKETCH_THRESHOLD, LatencyRecorder, RunMetrics

#: The documented estimate bound: one full bucket width (relative) plus one
#: quantization tick (absolute).
def _bound(exact: float) -> float:
    return abs(exact) * RELATIVE_ERROR + 1.0 / TICKS_PER_UNIT


def _nearest_rank(pct: float, ordered: list) -> float:
    n = len(ordered)
    rank = max(0, min(n - 1, int(round(pct / 100.0 * n)) - 1))
    return ordered[rank]


def _exponential_samples(seed: int, n: int, *, shift=150.0, mean=800.0):
    rng = DeterministicRandom(seed)
    return [shift + rng.exponential(mean) for _ in range(n)]


# -- accuracy ------------------------------------------------------------------

@pytest.mark.parametrize("seed", [1, 7, 42])
@pytest.mark.parametrize("pct", [10, 50, 90, 99, 99.9])
def test_percentiles_within_one_bucket_of_exact(seed, pct):
    samples = _exponential_samples(seed, 20_000)
    sketch = LatencySketch()
    sketch.extend(samples)
    exact = _nearest_rank(pct, sorted(samples))
    assert abs(sketch.percentile(pct) - exact) <= _bound(exact)


def test_small_values_are_exact_to_a_tick():
    """Ticks below 2**SUB_BITS index their own bucket — sub-tick error only."""
    sketch = LatencySketch()
    values = [0.0, 0.25, 3.125, 17.5, 31.875]
    for v in values:
        sketch.record(v)
    for pct in (0, 25, 50, 75, 100):
        exact = _nearest_rank(pct, values)
        assert abs(sketch.percentile(pct) - exact) <= 1.0 / TICKS_PER_UNIT


def test_count_sum_min_max_are_sample_exact():
    samples = _exponential_samples(3, 5_000)
    sketch = LatencySketch()
    sketch.extend(samples)
    assert sketch.count == len(samples)
    assert sketch.min == min(samples)
    assert sketch.max == max(samples)
    assert sketch.mean == pytest.approx(sum(samples) / len(samples), rel=1e-12)
    assert sketch.percentile(0) == min(samples)
    assert sketch.percentile(100) == max(samples)


def test_empty_and_single_sample_edges():
    sketch = LatencySketch()
    assert sketch.count == 0 and sketch.mean == 0.0
    assert sketch.percentile(50) == 0.0
    sketch.record(123.456)
    for pct in (0, 50, 99.9, 100):
        # One sample: every percentile is that sample (clamped to [min, max]).
        assert sketch.percentile(pct) == pytest.approx(123.456, abs=1e-9)


def test_negative_values_clamp_to_the_zero_bucket():
    sketch = LatencySketch()
    sketch.record(-5.0)  # defensive: latencies are non-negative by contract
    assert sketch.count == 1
    assert sketch.min == -5.0


# -- merging -------------------------------------------------------------------

def test_merge_is_commutative_and_matches_sequential_buckets():
    shard_a = _exponential_samples(11, 30_000)
    shard_b = _exponential_samples(22, 10_000, mean=200.0)

    def sketch_of(samples):
        sketch = LatencySketch()
        sketch.extend(samples)
        return sketch

    ab, ba = sketch_of(shard_a), sketch_of(shard_b)
    ab.merge(sketch_of(shard_b))
    ba.merge(sketch_of(shard_a))
    # A+B and B+A are byte-identical (bucket counts are ints, sum is added in
    # the same two-operand order).
    assert ab.to_json_dict() == ba.to_json_dict()
    # Against the sequential fill: buckets, count, min and max are identical;
    # the float sum may differ in the last ulps (association order).
    whole = sketch_of(shard_a + shard_b)
    assert ab._buckets == whole._buckets
    assert ab.count == whole.count
    assert ab.min == whole.min and ab.max == whole.max
    assert ab.mean == pytest.approx(whole.mean, rel=1e-12)
    for pct in (50, 99, 99.9):
        assert ab.percentile(pct) == whole.percentile(pct)


def test_merge_into_empty_adopts_the_other():
    src = LatencySketch()
    src.extend([1.0, 2.0, 3.0])
    dst = LatencySketch()
    dst.merge(src)
    assert dst.to_json_dict() == src.to_json_dict()
    src.merge(LatencySketch())  # merging an empty sketch is a no-op
    assert dst.to_json_dict() == src.to_json_dict()


# -- serialization -------------------------------------------------------------

def test_json_round_trip_is_lossless_and_bounded():
    sketch = LatencySketch()
    sketch.extend(_exponential_samples(5, 50_000))
    doc = sketch.to_json_dict()
    clone = LatencySketch.from_json_dict(json.loads(json.dumps(doc)))
    assert clone.to_json_dict() == doc
    for pct in (50, 99, 99.9):
        assert clone.percentile(pct) == sketch.percentile(pct)
    # Bounded: tens of KB regardless of sample count (raw samples would be
    # 50k floats ≈ 1 MB of JSON here).
    assert len(json.dumps(doc)) < 50_000


def test_from_json_dict_rejects_parameter_mismatch():
    doc = LatencySketch().to_json_dict()
    doc["sub_bits"] = 4
    with pytest.raises(ValueError, match="incompatible sketch parameters"):
        LatencySketch.from_json_dict(doc)


# -- golden pinning ------------------------------------------------------------

def test_golden_sketch_percentiles_for_fixed_seed():
    """Bit-exact pins: bucketing is pure integer math, so these values are
    platform-independent.  A change here means the sketch format changed —
    bump the cache schema version with it."""
    sketch = LatencySketch()
    sketch.extend(_exponential_samples(42, 250_000))
    assert sketch.count == 250_000
    assert len(sketch._buckets) == 736
    assert sketch.percentile(50) == 706.0
    assert sketch.percentile(99) == 3848.0
    assert sketch.percentile(99.9) == 5680.0


# -- LatencyRecorder switchover ------------------------------------------------

def test_recorder_stays_exact_at_the_threshold():
    recorder = LatencyRecorder()
    recorder.extend(float(i) for i in range(SKETCH_THRESHOLD))
    assert not recorder.sketched
    assert recorder.count == SKETCH_THRESHOLD
    assert recorder.samples  # raw samples still available
    with pytest.raises(ValueError):
        recorder.sketch


def test_recorder_folds_past_the_threshold():
    recorder = LatencyRecorder()
    recorder.extend(float(i % 1000) for i in range(SKETCH_THRESHOLD + 1))
    assert recorder.sketched
    assert recorder.count == SKETCH_THRESHOLD + 1
    with pytest.raises(ValueError, match="folded into a sketch"):
        recorder.samples
    exact = _nearest_rank(99, sorted(float(i % 1000)
                                     for i in range(SKETCH_THRESHOLD + 1)))
    assert abs(recorder.p99 - exact) <= _bound(exact)
    # Late records keep landing in the sketch.
    recorder.record(5.0)
    assert recorder.count == SKETCH_THRESHOLD + 2


def test_from_samples_folds_above_threshold():
    recorder = LatencyRecorder.from_samples(
        float(i) for i in range(SKETCH_THRESHOLD + 10)
    )
    assert recorder.sketched


def test_run_metrics_serializes_sketch_not_samples():
    metrics = RunMetrics(duration_us=1.0, committed=SKETCH_THRESHOLD + 1)
    metrics.latency.extend(float(i % 977) for i in range(SKETCH_THRESHOLD + 1))
    doc = metrics.to_json_dict()
    assert "latency_sketch" in doc and "latency_samples" not in doc
    # Document size is bounded — independent of the transaction count.
    assert len(json.dumps(doc)) < 100_000
    clone = RunMetrics.from_json_dict(json.loads(json.dumps(doc)))
    assert clone.latency.sketched
    assert clone.latency.count == metrics.latency.count
    assert clone.latency.p99 == metrics.latency.p99
    assert clone.latency.p999 == metrics.latency.p999
    assert clone.to_json_dict() == doc  # second round trip is a fixed point


def test_run_metrics_small_runs_keep_raw_samples():
    metrics = RunMetrics(duration_us=1.0, committed=3)
    metrics.latency.extend([1.0, 2.0, 3.0])
    doc = metrics.to_json_dict()
    assert doc["latency_samples"] == [1.0, 2.0, 3.0]
    assert "latency_sketch" not in doc
