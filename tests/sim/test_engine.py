"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import (
    Environment,
    Event,
    Interrupt,
    SimulationError,
    all_of,
    any_of,
)


def test_clock_starts_at_zero():
    assert Environment().now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    fired = []

    def proc():
        yield env.timeout(5.0)
        fired.append(env.now)

    env.process(proc())
    env.run(until=100)
    assert fired == [5.0]


def test_timeouts_fire_in_order():
    env = Environment()
    order = []

    def proc(delay, label):
        yield env.timeout(delay)
        order.append(label)

    env.process(proc(30, "c"))
    env.process(proc(10, "a"))
    env.process(proc(20, "b"))
    env.run(until=100)
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    env = Environment()
    order = []

    def proc(label):
        yield env.timeout(5.0)
        order.append(label)

    for label in ("first", "second", "third"):
        env.process(proc(label))
    env.run(until=10)
    assert order == ["first", "second", "third"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_process_return_value_propagates():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        return 42

    def parent():
        value = yield env.process(child())
        return value * 2

    parent_proc = env.process(parent())
    env.run(until=10)
    assert parent_proc.value == 84


def test_yield_from_composition():
    env = Environment()

    def inner():
        yield env.timeout(2.0)
        return "inner-result"

    def outer():
        result = yield from inner()
        return result.upper()

    proc = env.process(outer())
    env.run(until=10)
    assert proc.value == "INNER-RESULT"


def test_event_succeed_and_value():
    env = Environment()
    event = env.event()
    results = []

    def waiter():
        value = yield event
        results.append(value)

    env.process(waiter())
    event.succeed("payload", delay=3.0)
    env.run(until=10)
    assert results == ["payload"]
    assert event.value == "payload"


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().value


def test_event_fail_propagates_exception_to_waiter():
    env = Environment()
    event = env.event()
    caught = []

    def waiter():
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter())
    event.fail(ValueError("boom"))
    env.run(until=10)
    assert caught == ["boom"]


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_process_exception_fails_the_process_event():
    env = Environment()

    def broken():
        yield env.timeout(1.0)
        raise RuntimeError("broken process")

    proc = env.process(broken())
    env.run(until=10)
    assert not proc.ok
    assert isinstance(proc._value, RuntimeError)


def test_waiting_on_failed_process_reraises():
    env = Environment()

    def broken():
        yield env.timeout(1.0)
        raise RuntimeError("inner failure")

    outcome = []

    def parent():
        try:
            yield env.process(broken())
        except RuntimeError as exc:
            outcome.append(str(exc))

    env.process(parent())
    env.run(until=10)
    assert outcome == ["inner failure"]


def test_interrupt_is_delivered():
    env = Environment()
    seen = []

    def sleeper():
        try:
            yield env.timeout(1000.0)
        except Interrupt as interrupt:
            seen.append(interrupt.cause)

    proc = env.process(sleeper())

    def killer():
        yield env.timeout(5.0)
        proc.interrupt("crash")

    env.process(killer())
    env.run(until=50)
    assert seen == ["crash"]


def test_run_until_stops_the_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(7.0)

    env.process(proc())
    env.run(until=100.0)
    assert env.now == 100.0
    assert env.peek() >= 100.0


def test_run_into_the_past_rejected():
    env = Environment()
    env.run(until=10)
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_all_of_waits_for_every_event():
    env = Environment()
    results = []

    def child(delay, value):
        yield env.timeout(delay)
        return value

    def parent():
        procs = [env.process(child(d, d)) for d in (5, 1, 3)]
        values = yield all_of(env, procs)
        results.append((env.now, values))

    env.process(parent())
    env.run(until=100)
    assert results == [(5.0, [5, 1, 3])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = all_of(env, [])
    env.run(until=1)
    assert done.triggered and done.value == []


def test_any_of_fires_on_first_event():
    env = Environment()
    results = []

    def child(delay, value):
        yield env.timeout(delay)
        return value

    def parent():
        procs = [env.process(child(d, d)) for d in (9, 2, 6)]
        value = yield any_of(env, procs)
        results.append((env.now, value))

    env.process(parent())
    env.run(until=100)
    assert results == [(2.0, 2)]


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad():
        yield 42

    proc = env.process(bad())
    env.run(until=10)
    assert not proc.ok


def test_run_all_detects_runaway_simulations():
    env = Environment()

    def forever():
        while True:
            yield env.timeout(1.0)

    env.process(forever())
    with pytest.raises(SimulationError):
        env.run_all(max_events=1000)
