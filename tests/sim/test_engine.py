"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import (
    Environment,
    Interrupt,
    SimulationError,
    all_of,
    any_of,
)


def test_clock_starts_at_zero():
    assert Environment().now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    fired = []

    def proc():
        yield env.timeout(5.0)
        fired.append(env.now)

    env.process(proc())
    env.run(until=100)
    assert fired == [5.0]


def test_timeouts_fire_in_order():
    env = Environment()
    order = []

    def proc(delay, label):
        yield env.timeout(delay)
        order.append(label)

    env.process(proc(30, "c"))
    env.process(proc(10, "a"))
    env.process(proc(20, "b"))
    env.run(until=100)
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    env = Environment()
    order = []

    def proc(label):
        yield env.timeout(5.0)
        order.append(label)

    for label in ("first", "second", "third"):
        env.process(proc(label))
    env.run(until=10)
    assert order == ["first", "second", "third"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_process_return_value_propagates():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        return 42

    def parent():
        value = yield env.process(child())
        return value * 2

    parent_proc = env.process(parent())
    env.run(until=10)
    assert parent_proc.value == 84


def test_yield_from_composition():
    env = Environment()

    def inner():
        yield env.timeout(2.0)
        return "inner-result"

    def outer():
        result = yield from inner()
        return result.upper()

    proc = env.process(outer())
    env.run(until=10)
    assert proc.value == "INNER-RESULT"


def test_event_succeed_and_value():
    env = Environment()
    event = env.event()
    results = []

    def waiter():
        value = yield event
        results.append(value)

    env.process(waiter())
    event.succeed("payload", delay=3.0)
    env.run(until=10)
    assert results == ["payload"]
    assert event.value == "payload"


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().value


def test_event_fail_propagates_exception_to_waiter():
    env = Environment()
    event = env.event()
    caught = []

    def waiter():
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter())
    event.fail(ValueError("boom"))
    env.run(until=10)
    assert caught == ["boom"]


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_process_exception_fails_the_process_event():
    env = Environment()

    def broken():
        yield env.timeout(1.0)
        raise RuntimeError("broken process")

    proc = env.process(broken())
    env.run(until=10)
    assert not proc.ok
    assert isinstance(proc._value, RuntimeError)


def test_waiting_on_failed_process_reraises():
    env = Environment()

    def broken():
        yield env.timeout(1.0)
        raise RuntimeError("inner failure")

    outcome = []

    def parent():
        try:
            yield env.process(broken())
        except RuntimeError as exc:
            outcome.append(str(exc))

    env.process(parent())
    env.run(until=10)
    assert outcome == ["inner failure"]


def test_interrupt_is_delivered():
    env = Environment()
    seen = []

    def sleeper():
        try:
            yield env.timeout(1000.0)
        except Interrupt as interrupt:
            seen.append(interrupt.cause)

    proc = env.process(sleeper())

    def killer():
        yield env.timeout(5.0)
        proc.interrupt("crash")

    env.process(killer())
    env.run(until=50)
    assert seen == ["crash"]


def test_run_until_stops_the_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(7.0)

    env.process(proc())
    env.run(until=100.0)
    assert env.now == 100.0
    assert env.peek() >= 100.0


def test_run_into_the_past_rejected():
    env = Environment()
    env.run(until=10)
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_all_of_waits_for_every_event():
    env = Environment()
    results = []

    def child(delay, value):
        yield env.timeout(delay)
        return value

    def parent():
        procs = [env.process(child(d, d)) for d in (5, 1, 3)]
        values = yield all_of(env, procs)
        results.append((env.now, values))

    env.process(parent())
    env.run(until=100)
    assert results == [(5.0, [5, 1, 3])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = all_of(env, [])
    env.run(until=1)
    assert done.triggered and done.value == []


def test_any_of_fires_on_first_event():
    env = Environment()
    results = []

    def child(delay, value):
        yield env.timeout(delay)
        return value

    def parent():
        procs = [env.process(child(d, d)) for d in (9, 2, 6)]
        value = yield any_of(env, procs)
        results.append((env.now, value))

    env.process(parent())
    env.run(until=100)
    assert results == [(2.0, 2)]


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad():
        yield 42

    proc = env.process(bad())
    env.run(until=10)
    assert not proc.ok


def test_run_all_detects_runaway_simulations():
    env = Environment()

    def forever():
        while True:
            yield env.timeout(1.0)

    env.process(forever())
    with pytest.raises(SimulationError):
        env.run_all(max_events=1000)


# ---------------------------------------------------------------------------
# Ordering invariants the zero-delay fast-dispatch lane must preserve.
# ---------------------------------------------------------------------------


def test_zero_delay_events_fire_fifo_with_heap_events_at_the_same_time():
    """Events succeeded with delay=0 must not overtake same-time heap events.

    A timeout scheduled earlier that lands at time T fires before an event
    succeeded with zero delay at time T, and vice versa, strictly in
    scheduling order.
    """
    env = Environment()
    order = []

    def waiter(event, label):
        yield event
        order.append(label)

    # heap event landing at t=5 (scheduled first).
    early_timeout = env.timeout(5.0)
    env.process(waiter(early_timeout, "heap-early"))

    trigger = env.event()

    def at_five():
        yield env.timeout(5.0)  # scheduled after early_timeout
        # Now at t=5: succeed a zero-delay event; a later heap timeout at the
        # exact same simulated time must still fire after it.
        trigger.succeed("now")
        late = env.timeout(0.0)
        env.process(waiter(late, "fast-late"))

    env.process(waiter(trigger, "fast-trigger"))
    env.process(at_five())
    env.run(until=10)
    assert order == ["heap-early", "fast-trigger", "fast-late"]


def test_zero_delay_chain_preserves_scheduling_order():
    """A chain of immediate succeed() calls runs FIFO, not LIFO."""
    env = Environment()
    order = []
    events = [env.event() for _ in range(5)]

    def waiter(index):
        yield events[index]
        order.append(index)

    for i in range(5):
        env.process(waiter(i))
    for i in (2, 0, 4, 1, 3):
        events[i].succeed(i)
    env.run(until=1)
    assert order == [2, 0, 4, 1, 3]


def test_interrupt_during_zero_delay_chain():
    """An interrupt lands at the current time even while a fast-dispatch
    chain of zero-delay events is draining."""
    env = Environment()
    seen = []

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            seen.append((env.now, interrupt.cause))

    victim_proc = env.process(victim())

    def chain(depth):
        if depth == 2:
            victim_proc.interrupt("mid-chain")
        ev = env.event()
        ev.succeed(depth)
        value = yield ev
        if depth < 4:
            yield env.process(chain(depth + 1))
        return value

    env.process(chain(0))
    env.run(until=50)
    assert seen == [(0.0, "mid-chain")]


def test_interrupting_a_finished_process_is_a_noop():
    env = Environment()

    def quick():
        yield env.timeout(1.0)
        return "done"

    proc = env.process(quick())
    env.run(until=5)
    assert proc.value == "done"
    proc.interrupt("too late")  # must not raise or reschedule anything
    env.run(until=10)
    assert proc.value == "done"


def test_all_of_with_pre_triggered_events():
    env = Environment()
    done = []
    a = env.event()
    a.succeed("a")
    b = env.event()

    def parent():
        values = yield all_of(env, [a, b])
        done.append((env.now, values))

    def complete_b():
        yield env.timeout(3.0)
        b.succeed("b")

    env.process(parent())
    env.process(complete_b())
    env.run(until=10)
    assert done == [(3.0, ["a", "b"])]


def test_all_of_with_all_events_already_processed():
    env = Environment()
    a = env.event()
    a.succeed(1)
    b = env.event()
    b.succeed(2)
    env.run(until=1)  # both events fire and are processed
    assert a.processed and b.processed
    done = all_of(env, [a, b])
    # Every callback ran synchronously on already-processed events.
    assert done.triggered and done.value == [1, 2]


def test_any_of_with_pre_triggered_event_wins_immediately():
    env = Environment()
    fast = env.event()
    fast.succeed("fast")
    slow = env.timeout(50.0, value="slow")
    result = []

    def parent():
        value = yield any_of(env, [fast, slow])
        result.append((env.now, value))

    env.process(parent())
    env.run(until=100)
    assert result == [(0.0, "fast")]


def test_multiple_waiters_on_one_event_run_in_subscription_order():
    env = Environment()
    order = []
    shared = env.event()

    def waiter(label):
        yield shared
        order.append(label)

    for label in ("a", "b", "c", "d"):
        env.process(waiter(label))
    shared.succeed(None)
    env.run(until=1)
    assert order == ["a", "b", "c", "d"]


def test_peek_sees_zero_delay_events_at_the_current_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0
    ev = env.event()
    ev.succeed(None)
    assert env.peek() == 0.0
    env.step()  # drains the zero-delay event first
    assert env.peek() == 7.0


def test_step_interleaves_fast_and_heap_lanes_in_global_order():
    """A heap event at the current time that was scheduled *earlier* beats a
    zero-delay event scheduled *later*, even while the fast lane is hot."""
    env = Environment()
    order = []
    first = env.timeout(5.0)
    second = env.timeout(5.0)
    zero_delay = env.event()

    def a():
        yield first
        order.append("heap-1")
        # Fired at t=5; `second` (scheduled before this event) is still
        # pending in the heap at t=5 and must run before the fast lane.
        zero_delay.succeed(None)

    def b():
        yield second
        order.append("heap-2")

    def c():
        yield zero_delay
        order.append("fast")

    env.process(a())
    env.process(b())
    env.process(c())
    while env.peek() != float("inf"):  # drive via step() to cover its merge path
        env.step()
    assert order == ["heap-1", "heap-2", "fast"]


def test_succeed_with_delay_goes_through_the_heap():
    env = Environment()
    seen = []
    ev = env.event()
    ev.succeed("later", delay=4.0)
    ev.add_callback(lambda e: seen.append(env.now))
    env.run(until=10)
    assert seen == [4.0]


def test_interrupt_racing_a_same_tick_succeed_does_not_corrupt_the_process():
    """If the awaited event fires and an interrupt lands in the same tick,
    the interrupt wins — and the now-stale wakeup must NOT spuriously resume
    the generator while it waits on its next event."""
    env = Environment()
    trace = []

    def victim():
        first = env.event()
        env.process(racer(first))
        try:
            value = yield first
            trace.append(("value", value, env.now))
        except Interrupt as interrupt:
            trace.append(("interrupt", interrupt.cause, env.now))
        second = yield env.timeout(50.0, value="T")
        trace.append(("second", second, env.now))

    def racer(first):
        yield env.timeout(5.0)
        first.succeed("E-value")
        victim_proc.interrupt("boom")

    victim_proc = env.process(victim())
    env.run(until=1000)
    # The interrupt is delivered at t=5 and the later timeout still returns
    # its own value at t=55 (no phantom send(None) from the stale wakeup).
    assert trace == [("interrupt", "boom", 5.0), ("second", "T", 55.0)]


# -- batched wakeups (Environment.succeed_all) ------------------------------


def _unbatched_reference(n_waiters, with_heap_interleave):
    """Reference run: the same scenario with individual succeed() calls."""
    return _batched_scenario(n_waiters, with_heap_interleave, batched=False)


def _batched_scenario(n_waiters, with_heap_interleave, batched=True):
    """Waiters park on events that a releaser triggers mid-simulation.

    Returns the observed wakeup order, including interleaved heap timeouts,
    so batched and unbatched runs can be compared event for event.
    """
    env = Environment()
    order = []
    events = [env.event() for _ in range(n_waiters)]

    def waiter(i):
        value = yield events[i]
        order.append(("woke", i, value, env.now))
        yield env.timeout(0.0)
        order.append(("after", i, env.now))

    def heap_observer(delay, label):
        yield env.timeout(delay)
        order.append(("heap", label, env.now))

    def releaser():
        yield env.timeout(5.0)
        if batched:
            env.succeed_all(events, "go")
        else:
            for event in events:
                event.succeed("go")
        order.append(("released", env.now))

    for i in range(n_waiters):
        env.process(waiter(i))
    if with_heap_interleave:
        env.process(heap_observer(5.0, "same-time"))
        env.process(heap_observer(6.0, "later"))
    env.process(releaser())
    env.run_all()
    return order


@pytest.mark.parametrize("n_waiters", [1, 2, 7])
@pytest.mark.parametrize("with_heap_interleave", [False, True])
def test_succeed_all_matches_individual_succeeds_event_for_event(
    n_waiters, with_heap_interleave
):
    """Golden ordering: one shared notify == n individual fast-lane events."""
    assert _batched_scenario(n_waiters, with_heap_interleave) == _unbatched_reference(
        n_waiters, with_heap_interleave
    )


def test_succeed_all_marks_events_triggered_immediately():
    env = Environment()
    events = [env.event() for _ in range(3)]
    env.succeed_all(events, "v")
    assert all(event.triggered for event in events)
    assert all(event.value == "v" for event in events)
    # Callbacks have not run yet: the shared notify is still queued.
    assert not any(event.processed for event in events)
    env.run_all()
    assert all(event.processed for event in events)


def test_succeed_all_rejects_already_triggered_events():
    env = Environment()
    event = env.event()
    event.succeed(None)
    with pytest.raises(SimulationError):
        env.succeed_all([event], "again")


def test_succeed_all_empty_batch_is_a_noop():
    env = Environment()
    env.succeed_all([], "unused")
    env.run_all()  # queue is empty; nothing to dispatch


def test_succeed_all_waiters_may_subscribe_between_trigger_and_dispatch():
    """A callback added after succeed_all but before dispatch still fires."""
    env = Environment()
    event = env.event()
    other = env.event()
    seen = []
    env.succeed_all([event, other], 42)
    event.add_callback(lambda e: seen.append(e.value))
    env.run_all()
    assert seen == [42]
