"""Differential test: both scheduler kernels must produce identical traces.

Bit-identity between the pure-Python reference kernel and the compiled C
kernel is the engine contract (see ``repro/sim/engine.py``): same wake
orderings, same sequence numbers, same simulated clock at every step.  This
test generates randomized schedules — zero-delay events, heap timeouts,
interrupts, ``succeed_all`` batches, delayed succeeds, and one-way network
sends interleaved across several actor processes — runs each schedule through
both kernels in the same process, and compares the full event traces.

The scenarios are driven by seeded ``random.Random`` streams that live inside
the simulation generators, so the streams themselves only stay aligned while
the two kernels dispatch in exactly the same order: any divergence compounds
and shows up as a trace mismatch, not just a reordered tail.

Skips (visibly, with the underlying import error) when the C kernel has not
been built; ``python scripts/build_ckernel.py`` fixes that.
"""

from __future__ import annotations

import random

import pytest

from repro.sim import engine
from repro.sim.network import Network

PY_KERNEL = engine._pykernel
C_KERNEL = engine.load_ckernel()

requires_c = pytest.mark.skipif(
    C_KERNEL is None,
    reason=f"compiled scheduler kernel unavailable: {engine.C_IMPORT_ERROR}",
)

#: Mix of zero (fast-lane), tie-prone (heap FIFO) and distinct delays.
DELAYS = (0.0, 0.0, 0.5, 1.0, 1.0, 2.5, 7.0)
N_ACTORS = 6
OPS_PER_ACTOR = 12


def run_scenario(kernel, seed: int) -> list:
    """One randomized schedule on ``kernel``; returns the full wake trace."""
    rng = random.Random(seed)
    env = kernel.Environment()
    net = Network(env, one_way_latency_us=2.0, local_latency_us=0.5)
    trace: list = []
    pending: list = []  # events waiting for the pump process to trigger them
    actors: list = []

    def deliver(tag):
        trace.append(("deliver", tag, env.now))

    def actor(i: int, actor_seed: int):
        r = random.Random(actor_seed)
        for step in range(OPS_PER_ACTOR):
            op = r.randrange(6)
            try:
                if op == 0:
                    delay = r.choice(DELAYS)
                    to = env.timeout(delay)
                    yield to
                    # _seq is only defined for fast-lane (zero-delay) events;
                    # heap entries carry their seq in the queue tuple.
                    seq = to._seq if delay == 0.0 else None
                    trace.append(("timeout", i, step, env.now, seq))
                elif op == 1:
                    ev = env.event()
                    pending.append(ev)
                    got = yield ev
                    trace.append(("event", i, step, env.now, got))
                elif op == 2:
                    net.send(i % 4, r.randrange(4), deliver, (i, step))
                    trace.append(("sent", i, step, env.now))
                    yield env.timeout(r.choice(DELAYS))
                elif op == 3:
                    evs = [env.event() for _ in range(r.randrange(1, 4))]
                    pending.extend(evs)
                    got = yield evs[0]
                    trace.append(("batch", i, step, env.now, got))
                elif op == 4:
                    victim = actors[r.randrange(len(actors))]
                    if victim.is_alive:
                        victim.interrupt(("poke", i, step))
                    yield env.timeout(r.choice(DELAYS))
                    trace.append(("poked", i, step, env.now))
                else:
                    to = env.timeout(0.0)
                    yield to
                    trace.append(("zero", i, step, env.now, to._seq))
            except engine.Interrupt as exc:
                trace.append(("interrupted", i, step, env.now, exc.cause))
        return ("done", i)

    def pump(pump_seed: int):
        """Trigger the events the actors parked in ``pending``."""
        r = random.Random(pump_seed)
        for _ in range(OPS_PER_ACTOR * N_ACTORS):
            yield env.timeout(r.choice((0.0, 1.0, 3.0)))
            live = []
            while pending:
                ev = pending.pop(0)
                if not ev.triggered:
                    live.append(ev)
            if not live:
                continue
            mode = r.randrange(3)
            if mode == 0:
                live[0].succeed(("single", env.now), delay=r.choice((0.0, 2.0)))
                pending.extend(live[1:])
            elif mode == 1:
                env.succeed_all(live, ("batched", env.now))
            else:
                pending.extend(live)  # stall this round; retrigger later

    for i in range(N_ACTORS):
        actors.append(env.process(actor(i, rng.randrange(2**30)), name=f"actor{i}"))
    env.process(pump(rng.randrange(2**30)), name="pump")
    env.run_all()

    # A stalling pump can leave parked events untriggered; release them so
    # every actor's completion (or lack of one) is part of the trace.
    while pending:
        ev = pending.pop(0)
        if not ev.triggered:
            ev.succeed(("drain", env.now))
            env.run_all()
    for proc in actors:
        trace.append(("exit", proc.triggered and proc.value, env.now))
    trace.append(("final", env.now))
    return trace


@requires_c
@pytest.mark.parametrize("seed", range(25))
def test_randomized_schedules_are_bit_identical(seed):
    assert run_scenario(PY_KERNEL, seed) == run_scenario(C_KERNEL, seed)


@requires_c
def test_sequence_numbers_match_exactly():
    """Seq numbers, not just orderings: the shared counter must agree."""
    for seed in (101, 202):
        py_trace = run_scenario(PY_KERNEL, seed)
        c_trace = run_scenario(C_KERNEL, seed)
        py_seqs = [
            row[4]
            for row in py_trace
            if row[0] in ("timeout", "zero") and row[4] is not None
        ]
        c_seqs = [
            row[4]
            for row in c_trace
            if row[0] in ("timeout", "zero") and row[4] is not None
        ]
        assert py_seqs, "no fast-lane wakeups recorded; scenario too tame"
        assert py_seqs == c_seqs
        assert py_trace[-1] == c_trace[-1]  # final env.now


@requires_c
def test_mixed_kernel_events_interoperate():
    """A py-kernel event scheduled onto a C environment wakes in order."""
    env = C_KERNEL.Environment()
    order = []
    py_ev = PY_KERNEL.Event(env)  # foreign event on the C dispatcher
    c_ev = env.event()
    py_ev.add_callback(lambda ev: order.append(("py", env.now)))
    c_ev.add_callback(lambda ev: order.append(("c", env.now)))
    py_ev.succeed(delay=1.0)
    c_ev.succeed(delay=2.0)
    env.run_all()
    assert order == [("py", 1.0), ("c", 2.0)]
    assert env.now == 2.0
