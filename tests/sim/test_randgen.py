"""Tests for the deterministic RNG and the Zipf generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.randgen import DeterministicRandom, ZipfGenerator, derive_seed


def test_same_seed_same_stream():
    a = DeterministicRandom(123)
    b = DeterministicRandom(123)
    assert [a.uniform_int(0, 1000) for _ in range(50)] == [
        b.uniform_int(0, 1000) for _ in range(50)
    ]


def test_different_seeds_differ():
    a = DeterministicRandom(1)
    b = DeterministicRandom(2)
    assert [a.uniform_int(0, 10**6) for _ in range(20)] != [
        b.uniform_int(0, 10**6) for _ in range(20)
    ]


def test_derive_seed_is_deterministic_and_sensitive_to_components():
    assert derive_seed(42, 1, 2) == derive_seed(42, 1, 2)
    assert derive_seed(42, 1, 2) != derive_seed(42, 2, 1)
    assert derive_seed(42, 1) != derive_seed(43, 1)


def test_boolean_probability_extremes():
    rng = DeterministicRandom(5)
    assert not any(rng.boolean(0.0) for _ in range(100))
    assert all(rng.boolean(1.0) for _ in range(100))


def test_nurand_stays_in_range():
    rng = DeterministicRandom(9)
    for _ in range(500):
        value = rng.nurand(255, 1, 3000)
        assert 1 <= value <= 3000


def test_last_name_syllables():
    rng = DeterministicRandom(0)
    assert rng.last_name(0) == "BARBARBAR"
    assert rng.last_name(371) == "PRICALLYOUGHT"
    assert len(rng.last_name(999)) > 0


def test_sample_without_replacement_unique():
    rng = DeterministicRandom(3)
    sample = rng.sample_without_replacement(0, 99, 50)
    assert len(sample) == len(set(sample)) == 50
    assert all(0 <= value <= 99 for value in sample)


def test_zipf_rejects_bad_parameters():
    rng = DeterministicRandom(1)
    with pytest.raises(ValueError):
        ZipfGenerator(0, 0.5, rng)
    with pytest.raises(ValueError):
        ZipfGenerator(100, 1.0, rng)
    with pytest.raises(ValueError):
        ZipfGenerator(100, -0.1, rng)


def test_zipf_zero_theta_is_uniformish():
    rng = DeterministicRandom(11)
    zipf = ZipfGenerator(1000, 0.0, rng)
    draws = [zipf.next() for _ in range(5000)]
    assert min(draws) >= 0 and max(draws) < 1000
    # The most popular key should not dominate under uniform access.
    top_share = max(draws.count(k) for k in set(draws)) / len(draws)
    assert top_share < 0.02


def test_zipf_high_theta_is_skewed():
    rng = DeterministicRandom(12)
    zipf = ZipfGenerator(1000, 0.9, rng)
    draws = [zipf.next() for _ in range(5000)]
    hot_share = sum(1 for d in draws if d < 10) / len(draws)
    assert hot_share > 0.3  # the ten hottest keys absorb a large share


@settings(max_examples=30, deadline=None)
@given(
    n_items=st.integers(min_value=1, max_value=50_000),
    theta=st.floats(min_value=0.0, max_value=0.99),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_zipf_draws_always_in_range(n_items, theta, seed):
    """Property: every draw is a valid key index for any (n, theta, seed)."""
    zipf = ZipfGenerator(n_items, theta, DeterministicRandom(seed))
    for _ in range(50):
        assert 0 <= zipf.next() < n_items


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_zipf_streams_are_reproducible(seed):
    """Property: the same seed always produces the same key sequence."""
    first = ZipfGenerator(500, 0.6, DeterministicRandom(seed))
    second = ZipfGenerator(500, 0.6, DeterministicRandom(seed))
    assert [first.next() for _ in range(30)] == [second.next() for _ in range(30)]


def test_zipf_two_items_does_not_divide_by_zero():
    """Regression: n_items == 2 used to crash computing eta (0/0)."""
    zipf = ZipfGenerator(2, 0.5, DeterministicRandom(0))
    draws = [zipf.next() for _ in range(500)]
    assert set(draws) <= {0, 1}
    assert draws.count(0) > draws.count(1)  # key 0 is hotter


def test_stable_hash_is_process_independent():
    from repro.sim.randgen import stable_hash

    # Fixed values: these must never change, or every golden in the repo
    # (tests/integration/test_determinism.py, BENCH_substrate.json) breaks.
    assert stable_hash("ycsb") == 0xDA4C6F32
    assert stable_hash("") == 0
    assert stable_hash("ycsb") != stable_hash("tpcc")


def test_alias_sampler_matches_distribution():
    from repro.sim.randgen import AliasSampler

    rng = DeterministicRandom(99)
    sampler = AliasSampler([8.0, 4.0, 2.0, 1.0, 1.0], rng)
    counts = [0] * 5
    n = 40_000
    for _ in range(n):
        counts[sampler.next()] += 1
    total = 16.0
    for index, weight in enumerate([8.0, 4.0, 2.0, 1.0, 1.0]):
        expected = weight / total
        assert abs(counts[index] / n - expected) < 0.02


def test_alias_zipf_mode_is_deterministic_and_in_range():
    first = ZipfGenerator(1000, 0.8, DeterministicRandom(5), method="alias")
    second = ZipfGenerator(1000, 0.8, DeterministicRandom(5), method="alias")
    draws = [first.next() for _ in range(2000)]
    assert draws == [second.next() for _ in range(2000)]
    assert all(0 <= d < 1000 for d in draws)
    # Zipf skew shows through the alias tables too.
    hot_share = sum(1 for d in draws if d < 10) / len(draws)
    assert hot_share > 0.2


def test_alias_zipf_rejects_unknown_method():
    with pytest.raises(ValueError):
        ZipfGenerator(10, 0.5, DeterministicRandom(1), method="cdf")


def test_gray_zipf_stream_is_pinned():
    """The default Gray sampler's key stream is part of the determinism
    contract (the YCSB goldens depend on it): pin a short prefix."""
    zipf = ZipfGenerator(1000, 0.6, DeterministicRandom(7))
    assert [zipf.next() for _ in range(10)] == [
        73, 14, 360, 4, 229, 96, 2, 202, 1, 141,
    ]
