"""Unit tests for the simulated network."""


from repro.sim.engine import Environment
from repro.sim.network import Network, NodeUnreachable


def make_network(latency=50.0, local=0.5):
    env = Environment()
    return env, Network(env, one_way_latency_us=latency, local_latency_us=local)


def test_rpc_charges_a_full_round_trip():
    env, net = make_network(latency=40.0)
    times = []

    def caller():
        result = yield from net.rpc(0, 1, lambda: "pong")
        times.append((env.now, result))

    env.process(caller())
    env.run(until=1000)
    assert times == [(80.0, "pong")]


def test_local_rpc_uses_local_latency():
    env, net = make_network(latency=40.0, local=1.0)
    times = []

    def caller():
        yield from net.rpc(2, 2, lambda: None)
        times.append(env.now)

    env.process(caller())
    env.run(until=1000)
    assert times == [2.0]


def test_rpc_handler_can_be_a_generator():
    env, net = make_network(latency=10.0)
    results = []

    def handler():
        yield env.timeout(5.0)
        return "slow-result"

    def caller():
        result = yield from net.rpc(0, 1, handler)
        results.append((env.now, result))

    env.process(caller())
    env.run(until=1000)
    assert results == [(25.0, "slow-result")]


def test_send_is_one_way_and_does_not_block():
    env, net = make_network(latency=30.0)
    delivered = []

    def caller():
        net.send(0, 1, lambda value: delivered.append((env.now, value)), "hello")
        return env.now
        yield  # pragma: no cover - make this a generator

    env.process(caller())
    env.run(until=1000)
    assert delivered == [(30.0, "hello")]


def test_unreachable_destination_raises_for_rpc():
    env, net = make_network()
    net.set_unreachable(1)
    errors = []

    def caller():
        try:
            yield from net.rpc(0, 1, lambda: "never")
        except NodeUnreachable as exc:
            errors.append(exc.node_id)

    env.process(caller())
    env.run(until=1000)
    assert errors == [1]
    assert net.stats.dropped == 1


def test_unreachable_destination_drops_one_way_messages():
    env, net = make_network()
    net.set_unreachable(3)
    delivered = []
    net.send(0, 3, delivered.append, "lost")
    env.run(until=1000)
    assert delivered == []
    assert net.stats.dropped == 1


def test_reachability_can_be_restored():
    env, net = make_network()
    net.set_unreachable(1)
    net.set_unreachable(1, False)
    assert not net.is_unreachable(1)


def test_extra_delay_from_a_node_slows_its_messages():
    env, net = make_network(latency=10.0)
    net.set_extra_delay_from(5, 100.0)
    assert net.latency(5, 1) == 110.0
    assert net.latency(1, 5) == 10.0


def test_extra_delay_to_a_node_slows_inbound_messages():
    env, net = make_network(latency=10.0)
    net.set_extra_delay_to(2, 40.0)
    assert net.latency(0, 2) == 50.0
    assert net.latency(2, 0) == 10.0


def test_message_statistics_are_counted():
    env, net = make_network()

    def caller():
        yield from net.rpc(0, 1, lambda: None)
        net.send(0, 2, lambda: None)

    env.process(caller())
    env.run(until=1000)
    assert net.stats.rpc_calls == 1
    assert net.stats.one_way_messages == 1
    assert net.stats.messages_sent == 2
    assert net.stats.per_destination == {1: 1, 2: 1}


def test_roundtrip_helper_sums_both_directions():
    env, net = make_network(latency=25.0)
    net.set_extra_delay_from(0, 5.0)
    assert net.roundtrip_us(0, 1) == 25.0 + 5.0 + 25.0


def test_stats_reset_zeroes_every_counter():
    env, net = make_network()

    def caller():
        yield from net.rpc(0, 1, lambda: "x")
        net.send(0, 2, lambda: None)

    env.process(caller())
    env.run(until=1000)
    assert net.stats.messages_sent == 2
    net.stats.reset()
    assert net.stats.messages_sent == 0
    assert net.stats.rpc_calls == 0
    assert net.stats.one_way_messages == 0
    assert net.stats.dropped == 0
    assert net.stats.per_destination == {}

    # Counters keep working after a reset.
    def second():
        yield from net.rpc(0, 1, lambda: "y")

    env.process(second())
    env.run(until=2000)
    assert net.stats.rpc_calls == 1
    assert net.stats.per_destination == {1: 1}


def test_per_destination_is_a_counter():
    from collections import Counter

    env, net = make_network()
    assert isinstance(net.stats.per_destination, Counter)
    # Counter semantics: missing destinations read as zero.
    assert net.stats.per_destination[42] == 0


def test_generator_handlers_are_driven_after_classification():
    """A generator handler must still be awaited both for rpc and send, and
    its classification must be stable across repeated deliveries."""
    env, net = make_network(latency=10.0)
    log = []

    def gen_handler(tag):
        yield env.timeout(5.0)
        log.append((env.now, tag))
        return tag

    results = []

    def caller():
        value = yield from net.rpc(0, 1, gen_handler, "rpc-1")
        results.append(value)
        net.send(0, 1, gen_handler, "send-1")
        value = yield from net.rpc(0, 1, gen_handler, "rpc-2")
        results.append(value)

    env.process(caller())
    env.run(until=1000)
    assert results == ["rpc-1", "rpc-2"]
    # Both one-way deliveries complete; the send's delivery timeout draws its
    # sequence number one kick-off hop after rpc-2's arrival timeout, so the
    # rpc handler runs first at the shared timestamp (matches the pre-fast-path
    # process-based delivery order).
    assert [tag for _, tag in log] == ["rpc-1", "rpc-2", "send-1"]


def test_plain_send_fires_after_one_way_latency():
    env, net = make_network(latency=30.0)
    arrived = []
    net.send(0, 1, lambda: arrived.append(env.now))
    env.run(until=1000)
    assert arrived == [30.0]


def test_send_to_node_that_crashes_in_flight_is_dropped():
    env, net = make_network(latency=50.0)
    delivered = []

    def crash_soon():
        yield env.timeout(10.0)
        net.set_unreachable(1)

    net.send(0, 1, lambda: delivered.append("boom"))
    env.process(crash_soon())
    env.run(until=1000)
    assert delivered == []
    assert net.stats.dropped == 1


def test_latency_fast_path_matches_slow_path():
    env, net = make_network(latency=20.0)
    # No faults configured: fast path.
    assert net.latency(0, 1) == 20.0
    assert net.latency(3, 3) == net.local_latency_us
    # Configuring then clearing injection must restore the fast path values.
    net.set_extra_delay_to(1, 5.0)
    assert net.latency(0, 1) == 25.0
    net.set_extra_delay_to(1, 0.0)
    assert net.latency(0, 1) == 20.0


def test_handler_cache_is_bounded_for_per_message_closures():
    """Protocols pass a fresh closure per message; classification is cached
    by code object so the cache must stay at one entry (and must not pin
    every closure's captured state alive)."""
    env, net = make_network()
    results = []

    def caller():
        for i in range(50):
            def handler(value=i):  # new closure every message
                return value
            results.append((yield from net.rpc(0, 1, handler)))
            net.send(0, 1, handler)

    env.process(caller())
    env.run(until=100_000)
    assert results == list(range(50))
    assert len(net._gen_handlers) == 1
