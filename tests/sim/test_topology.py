"""Tests for RegionTopology and the network's region-matrix latency path."""

import pytest

from repro.sim.engine import Environment
from repro.sim.network import Network
from repro.sim.topology import RegionTopology


def make_topology(**overrides):
    kwargs = dict(
        regions=("east", "west"),
        latency_us=((5.0, 80.0), (80.0, 5.0)),
        partition_regions=("east", "west"),
    )
    kwargs.update(overrides)
    return RegionTopology(**kwargs)


# -- validation --------------------------------------------------------------

def test_topology_requires_regions():
    with pytest.raises(ValueError, match="at least one region"):
        make_topology(regions=())


def test_topology_rejects_duplicate_regions():
    with pytest.raises(ValueError, match="duplicate region"):
        make_topology(regions=("east", "east"))


def test_topology_rejects_non_square_matrix():
    with pytest.raises(ValueError, match="2x2 matrix"):
        make_topology(latency_us=((5.0, 80.0),))
    with pytest.raises(ValueError, match="2x2 matrix"):
        make_topology(latency_us=((5.0,), (80.0,)))


def test_topology_rejects_negative_latency():
    with pytest.raises(ValueError, match=">= 0"):
        make_topology(latency_us=((5.0, -1.0), (80.0, 5.0)))


def test_topology_rejects_scalar_matrix_rows():
    with pytest.raises(TypeError, match="matrix"):
        make_topology(latency_us=(5.0, 80.0))


def test_topology_rejects_unknown_placement_regions():
    with pytest.raises(ValueError, match="unknown region"):
        make_topology(partition_regions=("east", "mars"))
    with pytest.raises(ValueError, match="unknown region"):
        make_topology(follower_regions=(("mars",),))


def test_topology_requires_placements_and_nonempty_rings():
    with pytest.raises(ValueError, match="partition_regions"):
        make_topology(partition_regions=())
    with pytest.raises(ValueError, match="must not be empty"):
        make_topology(follower_regions=((),))
    with pytest.raises(TypeError, match="region rings"):
        make_topology(follower_regions=("east",))


# -- placement lookups -------------------------------------------------------

def test_partition_placement_wraps():
    topo = make_topology()
    assert [topo.partition_region_index(p) for p in range(4)] == [0, 1, 0, 1]
    single = make_topology(partition_regions=("west",))
    assert [single.partition_region_index(p) for p in range(3)] == [1, 1, 1]


def test_follower_placement_defaults_to_the_leader_region():
    topo = make_topology()
    assert topo.follower_region_index(0, 0) == topo.partition_region_index(0)
    assert topo.follower_region_index(1, 5) == topo.partition_region_index(1)


def test_follower_rings_wrap_per_partition_and_per_follower():
    topo = make_topology(follower_regions=(("east", "west"),))
    # One ring serves every partition; follower index wraps around the ring.
    assert topo.follower_region_index(0, 0) == 0
    assert topo.follower_region_index(0, 1) == 1
    assert topo.follower_region_index(0, 2) == 0
    assert topo.follower_region_index(3, 1) == 1


# -- JSON round trip ---------------------------------------------------------

def test_topology_json_round_trip():
    topo = make_topology(follower_regions=(("east", "west"), ("west",)))
    assert RegionTopology.from_json(topo.to_json()) == topo


def test_topology_json_omits_empty_follower_regions():
    assert "follower_regions" not in make_topology().to_json_dict()


def test_topology_from_json_rejects_unknown_fields():
    data = make_topology().to_json_dict()
    data["latency_matrix"] = []
    with pytest.raises(ValueError, match="unknown topology field"):
        RegionTopology.from_json_dict(data)


def test_topology_coerce():
    topo = make_topology()
    assert RegionTopology.coerce(None) is None
    assert RegionTopology.coerce(topo) is topo
    assert RegionTopology.coerce(topo.to_json_dict()) == topo
    with pytest.raises(TypeError, match="RegionTopology"):
        RegionTopology.coerce(["east"])


# -- network integration -----------------------------------------------------

def test_network_topology_latency_lookup():
    env = Environment()
    network = Network(env, one_way_latency_us=50.0, local_latency_us=0.2)
    topo = make_topology()
    network.install_topology({0: 0, 1: 1, 100: 0, 110: 1}, topo.latency_us)
    # Same node is always local, even under a topology.
    assert network.latency(0, 0) == pytest.approx(0.2)
    # Two distinct nodes in the same region pay the matrix diagonal.
    assert network.latency(0, 100) == pytest.approx(5.0)
    # Cross-region pairs pay the matrix entry.
    assert network.latency(0, 1) == pytest.approx(80.0)
    assert network.roundtrip_us(0, 110) == pytest.approx(160.0)
    # Nodes absent from the map fall back to the scalar one-way latency.
    assert network.latency(0, 999) == pytest.approx(50.0)


def test_injected_fault_delays_stack_on_the_topology_base():
    env = Environment()
    network = Network(env, one_way_latency_us=50.0)
    network.install_topology({0: 0, 1: 1}, make_topology().latency_us)
    network.set_extra_delay_to(1, 30.0)
    assert network.latency(0, 1) == pytest.approx(80.0 + 30.0)
    network.set_extra_delay_to(1, 0.0)
    assert network.latency(0, 1) == pytest.approx(80.0)
