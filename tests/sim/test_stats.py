"""Tests for counters, latency recorders, breakdown timers and run metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import (
    BREAKDOWN_COMPONENTS,
    BreakdownTimer,
    Counter,
    LatencyRecorder,
    RunMetrics,
)


def test_counter_increment_and_merge():
    a = Counter()
    a.increment("commits")
    a.increment("commits", 4)
    b = Counter()
    b.increment("commits", 2)
    b.increment("aborts")
    a.merge(b)
    assert a.get("commits") == 7
    assert a.get("aborts") == 1
    assert a.get("missing") == 0
    assert a.as_dict() == {"commits": 7, "aborts": 1}


def test_latency_recorder_empty_is_zero():
    recorder = LatencyRecorder()
    assert recorder.mean == 0.0
    assert recorder.p99 == 0.0
    assert recorder.max == 0.0
    assert recorder.count == 0


def test_latency_recorder_mean_and_percentiles():
    recorder = LatencyRecorder()
    recorder.extend(float(v) for v in range(1, 101))
    assert recorder.count == 100
    assert recorder.mean == pytest.approx(50.5)
    assert recorder.p50 == pytest.approx(50.0)
    assert recorder.p99 == pytest.approx(99.0)
    assert recorder.percentile(100) == 100.0
    assert recorder.percentile(0) == 1.0
    assert recorder.max == 100.0


@settings(max_examples=50, deadline=None)
@given(samples=st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=1, max_size=200))
def test_latency_percentiles_are_order_statistics(samples):
    """Property: any percentile is one of the samples and p99 >= p50 >= min."""
    recorder = LatencyRecorder()
    recorder.extend(samples)
    assert recorder.p50 in samples
    assert recorder.p99 in samples
    assert recorder.p99 >= recorder.p50 >= min(samples)


def test_breakdown_timer_average_per_transaction():
    timer = BreakdownTimer()
    timer.add("execute", 10.0)
    timer.add("2pc", 4.0)
    timer.finish_transaction()
    timer.add("execute", 20.0)
    timer.finish_transaction()
    per_txn = timer.per_transaction()
    assert per_txn["execute"] == pytest.approx(15.0)
    assert per_txn["2pc"] == pytest.approx(2.0)
    assert set(per_txn) == set(BREAKDOWN_COMPONENTS)


def test_breakdown_timer_rejects_negative_durations():
    with pytest.raises(ValueError):
        BreakdownTimer().add("execute", -1.0)


def test_breakdown_timer_merge():
    a, b = BreakdownTimer(), BreakdownTimer()
    a.add("commit", 5.0)
    a.finish_transaction()
    b.add("commit", 15.0)
    b.finish_transaction()
    a.merge(b)
    assert a.per_transaction()["commit"] == pytest.approx(10.0)


def test_run_metrics_throughput_and_rates():
    metrics = RunMetrics(duration_us=1_000_000.0, committed=5_000, aborted=1_000)
    assert metrics.throughput_tps == pytest.approx(5_000.0)
    assert metrics.throughput_ktps == pytest.approx(5.0)
    assert metrics.abort_rate == pytest.approx(1_000 / 6_000)
    assert metrics.crash_abort_rate == 0.0


def test_run_metrics_zero_duration_is_safe():
    metrics = RunMetrics()
    assert metrics.throughput_tps == 0.0
    assert metrics.abort_rate == 0.0
    assert metrics.crash_abort_rate == 0.0


def test_run_metrics_summary_contains_breakdown():
    metrics = RunMetrics(duration_us=1000.0, committed=1)
    metrics.latency.record(2_000.0)
    metrics.breakdown.add("execute", 10.0)
    metrics.breakdown.finish_transaction()
    summary = metrics.summary()
    assert summary["committed"] == 1
    assert summary["breakdown_us"]["execute"] == pytest.approx(10.0)
    assert summary["mean_latency_ms"] == pytest.approx(2.0)


# -- merge order independence (pool orchestrator contract) ------------------
#
# The orchestrator merges per-worker shards in whatever order the pool
# completes them; every stats class must therefore report identical values
# regardless of merge order.

_counter_shards = st.lists(
    st.dictionaries(
        st.sampled_from(["commits", "aborts", "retries", "msgs"]),
        st.integers(min_value=0, max_value=1_000),
        max_size=4,
    ),
    min_size=1,
    max_size=5,
)


@settings(max_examples=50, deadline=None)
@given(shards=_counter_shards, seed=st.randoms(use_true_random=False))
def test_counter_merge_is_order_independent(shards, seed):
    def merged(order):
        total = Counter()
        for shard in order:
            total.merge(Counter.from_dict(shard))
        return total.as_dict()

    shuffled = list(shards)
    seed.shuffle(shuffled)
    assert merged(shards) == merged(shuffled)


_breakdown_shards = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(BREAKDOWN_COMPONENTS + ("custom_component",)),
            st.floats(min_value=0.0, max_value=1e6),
        ),
        max_size=6,
    ),
    min_size=1,
    max_size=5,
)


@settings(max_examples=50, deadline=None)
@given(shards=_breakdown_shards, seed=st.randoms(use_true_random=False))
def test_breakdown_merge_is_order_independent(shards, seed):
    def merged(order):
        total = BreakdownTimer()
        for shard in order:
            timer = BreakdownTimer()
            for component, duration in shard:
                timer.add(component, duration)
            timer.finish_transaction()
            total.merge(timer)
        return total.per_transaction(), total.total("custom_component")

    shuffled = list(shards)
    seed.shuffle(shuffled)
    per_txn, custom = merged(shards)
    per_txn_shuffled, custom_shuffled = merged(shuffled)
    # Equal up to float summation order (addition is not associative).
    assert per_txn == pytest.approx(per_txn_shuffled)
    assert custom == pytest.approx(custom_shuffled)


@settings(max_examples=50, deadline=None)
@given(
    shards=st.lists(
        st.lists(st.floats(min_value=0.0, max_value=1e9), max_size=50),
        min_size=1,
        max_size=5,
    ),
    seed=st.randoms(use_true_random=False),
)
def test_latency_merge_is_order_independent(shards, seed):
    def merged(order):
        total = LatencyRecorder()
        for shard in order:
            total.extend(shard)
        return (total.count, total.mean, total.p50, total.p99, total.max)

    count, mean, p50, p99, peak = merged(shards)
    shuffled = list(shards)
    seed.shuffle(shuffled)
    count_s, mean_s, p50_s, p99_s, peak_s = merged(shuffled)
    assert (count, p50, p99, peak) == (count_s, p50_s, p99_s, peak_s)
    assert mean == pytest.approx(mean_s)  # summation order may differ


def test_latency_sorted_cache_invalidated_by_append():
    """p50/p99/max reuse one sorted view until a new sample invalidates it."""
    recorder = LatencyRecorder()
    recorder.extend([5.0, 1.0, 3.0])
    assert recorder.max == 5.0
    assert recorder.p50 == 3.0
    # Appending a new minimum must be visible immediately (no stale cache).
    recorder.record(0.5)
    assert recorder.percentile(0) == 0.5
    recorder.record(9.0)
    assert recorder.max == 9.0
    assert recorder.samples == [5.0, 1.0, 3.0, 0.5, 9.0]  # recording order kept


def test_p999_is_deterministic_and_tracks_appends():
    """The open-loop tail accessor: nearest-rank, cached, append-invalidated."""
    recorder = LatencyRecorder()
    assert recorder.p999 == 0.0
    recorder.extend(float(v) for v in range(1, 1001))
    assert recorder.p999 == 999.0  # nearest rank of 99.9% over 1000 samples
    assert recorder.p999 == recorder.percentile(99.9)
    assert recorder.p999 >= recorder.p99 >= recorder.p50
    # A new maximum must invalidate the cached sorted view.
    recorder.record(10_000.0)
    assert recorder.p999 == 1000.0
    assert recorder.max == 10_000.0


def test_breakdown_json_round_trip_preserves_custom_components():
    timer = BreakdownTimer()
    timer.add("execute", 3.0)
    timer.add("my_extension_phase", 2.0)
    timer.finish_transaction()
    clone = BreakdownTimer.from_json_dict(timer.to_json_dict())
    assert clone.total("execute") == 3.0
    assert clone.total("my_extension_phase") == 2.0
    assert clone.per_transaction()["execute"] == 3.0


# -- windowed degradation/recovery timeline ----------------------------------

def test_windowed_recorder_buckets_by_window():
    from repro.sim.stats import WindowedRecorder

    rec = WindowedRecorder(window_us=100.0, origin_us=1_000.0)
    for t in (1_000.0, 1_050.0, 1_150.0, 1_399.0):
        rec.record(t)
    assert rec.counts() == [2, 1, 0, 1]
    assert rec.total_count == 4
    assert rec.throughput_tps() == [20_000.0, 10_000.0, 0.0, 10_000.0]
    # Times before the origin clamp into the first window instead of crashing.
    rec.record(500.0)
    assert rec.counts()[0] == 3


def test_windowed_recorder_unrecord_undoes_a_count():
    from repro.sim.stats import WindowedRecorder

    rec = WindowedRecorder(window_us=100.0)
    rec.record(50.0)
    rec.record(150.0)
    rec.unrecord(150.0)
    assert rec.counts() == [1, 0]


def test_windowed_recorder_latency_series_is_independent_of_counts():
    from repro.sim.stats import WindowedRecorder

    rec = WindowedRecorder(window_us=100.0)
    rec.record(10.0)
    rec.record(110.0)  # commit whose durability never resolves: no latency
    rec.record_latency(10.0, 200.0)
    rec.record_latency(20.0, 400.0)
    assert rec.counts() == [1, 1]
    assert rec.mean_latency_us() == [300.0, 0.0]


def test_windowed_recorder_memory_is_bounded_by_coarsening():
    from repro.sim.stats import WindowedRecorder

    rec = WindowedRecorder(window_us=1.0, max_windows=8)
    for t in range(64):
        rec.record(float(t))
    # 64 µs of traffic through 8 windows: width doubled 1 -> 8.
    assert rec.windows <= 8
    assert rec.window_us == 8.0
    assert rec.total_count == 64
    assert rec.counts() == [8] * 8


def test_windowed_recorder_coarsening_preserves_latency_totals():
    from repro.sim.stats import WindowedRecorder

    rec = WindowedRecorder(window_us=1.0, max_windows=4)
    for t in range(16):
        rec.record_latency(float(t), 10.0)
    assert sum(rec._latency_sums) == pytest.approx(160.0)
    assert rec.mean_latency_us() == [10.0] * rec.windows


def test_windowed_recorder_degradation_depth_and_recovery_time():
    from repro.sim.stats import WindowedRecorder

    rec = WindowedRecorder(window_us=100.0)
    # Steady 10/window, a dip to 2, then recovery two windows later.
    for window, count in enumerate([10, 10, 2, 5, 10, 10]):
        for i in range(count):
            rec.record(window * 100.0 + i)
    assert rec.degradation_depth() == pytest.approx(1.0 - 2.0 / 10.0)
    # Trough at window 2; first window back at 90% of the median (9) is
    # window 4, two windows later.
    assert rec.time_to_recovery_us(0.9) == pytest.approx(200.0)
    # A lower bar is cleared one window sooner.
    assert rec.time_to_recovery_us(0.5) == pytest.approx(100.0)


def test_windowed_recorder_flat_series_reports_no_dip():
    from repro.sim.stats import WindowedRecorder

    rec = WindowedRecorder(window_us=100.0)
    for window in range(5):
        for i in range(10):
            rec.record(window * 100.0 + i)
    assert rec.degradation_depth() == 0.0
    assert rec.time_to_recovery_us() == 0.0


def test_windowed_recorder_unrecovered_dip_is_none():
    from repro.sim.stats import WindowedRecorder

    rec = WindowedRecorder(window_us=100.0)
    for window, count in enumerate([10, 10, 10, 10, 2]):
        for i in range(count):
            rec.record(window * 100.0 + i)
    assert rec.time_to_recovery_us(0.9) is None


def test_windowed_recorder_ignores_trailing_silence():
    from repro.sim.stats import WindowedRecorder

    rec = WindowedRecorder(window_us=100.0)
    for window in range(3):
        for i in range(10):
            rec.record(window * 100.0 + i)
    # The drain after measurement ends leaves empty trailing windows; they
    # must not read as a 100% dip.
    rec.record_latency(800.0, 50.0)  # grows the count series with zeros
    assert rec.counts()[-1] == 0
    assert rec.degradation_depth() == 0.0


def test_windowed_recorder_json_round_trip():
    from repro.sim.stats import WindowedRecorder

    rec = WindowedRecorder(window_us=250.0, origin_us=2_000.0, max_windows=64)
    for t in (2_000.0, 2_100.0, 2_600.0, 3_900.0):
        rec.record(t)
    rec.record_latency(2_000.0, 123.0)
    rec.record_latency(2_600.0, 321.0)
    data = rec.to_json_dict()
    clone = WindowedRecorder.from_json_dict(data)
    assert clone.to_json_dict() == data
    assert clone.counts() == rec.counts()
    assert clone.mean_latency_us() == rec.mean_latency_us()
    assert (clone.window_us, clone.origin_us, clone.max_windows) == (250.0, 2_000.0, 64)


def test_windowed_recorder_round_trip_repairs_missing_latency_windows():
    from repro.sim.stats import WindowedRecorder

    clone = WindowedRecorder.from_json_dict(
        {"window_us": 100.0, "counts": [3, 1, 2], "latency_counts": [1],
         "latency_sums": [50.0]}
    )
    assert clone.counts() == [3, 1, 2]
    assert clone.mean_latency_us() == [50.0, 0.0, 0.0]


def test_windowed_recorder_merge_sums_aligned_series():
    from repro.sim.stats import WindowedRecorder

    a = WindowedRecorder(window_us=100.0)
    b = WindowedRecorder(window_us=100.0)
    a.record(50.0)
    a.record_latency(50.0, 100.0)
    b.record(150.0)
    b.record(250.0)
    b.record_latency(150.0, 300.0)
    a.merge(b)
    assert a.counts() == [1, 1, 1]
    assert a.mean_latency_us() == [100.0, 300.0, 0.0]


def test_windowed_recorder_merge_realigns_coarsened_widths():
    from repro.sim.stats import WindowedRecorder

    coarse = WindowedRecorder(window_us=1.0, max_windows=4)
    for t in range(8):
        coarse.record(float(t))  # width doubles to 2.0
    fine = WindowedRecorder(window_us=1.0, max_windows=4)
    fine.record(0.0)
    before = fine.to_json_dict()
    coarse.merge(fine)
    assert coarse.window_us == 2.0
    assert coarse.counts() == [3, 2, 2, 2]
    # Merging does not mutate the finer source.
    assert fine.to_json_dict() == before


def test_windowed_recorder_merge_rejects_mismatched_origins():
    from repro.sim.stats import WindowedRecorder

    a = WindowedRecorder(window_us=100.0, origin_us=0.0)
    b = WindowedRecorder(window_us=100.0, origin_us=500.0)
    with pytest.raises(ValueError, match="different origins"):
        a.merge(b)


def test_windowed_recorder_validates_construction():
    from repro.sim.stats import WindowedRecorder

    with pytest.raises(ValueError, match="window_us"):
        WindowedRecorder(window_us=0.0)
    with pytest.raises(ValueError, match="max_windows"):
        WindowedRecorder(max_windows=1)


def test_run_metrics_timeline_round_trips():
    from repro.sim.stats import WindowedRecorder

    metrics = RunMetrics()
    metrics.committed = 3
    metrics.timeline = WindowedRecorder(window_us=100.0)
    metrics.timeline.record(50.0)
    metrics.timeline.record_latency(50.0, 10.0)
    clone = RunMetrics.from_json_dict(metrics.to_json_dict())
    assert clone.timeline is not None
    assert clone.timeline.to_json_dict() == metrics.timeline.to_json_dict()
    # Runs without a timeline keep the key out of the document entirely,
    # so fault-free result JSON is byte-identical to the pre-timeline format.
    bare = RunMetrics()
    assert "timeline" not in bare.to_json_dict()
    assert RunMetrics.from_json_dict(bare.to_json_dict()).timeline is None
