"""Tests for the simplified Raft replication group and the membership service."""

import pytest

from repro.replication.membership import MembershipService
from repro.replication.raft import ReplicationGroup
from repro.sim.engine import Environment
from repro.sim.network import Network


def make_group(n_replicas=3):
    env = Environment()
    network = Network(env, one_way_latency_us=50.0)
    return env, ReplicationGroup(env, network, 0, n_replicas, 100, storage_persist_us=20.0)


def drive(env, generator):
    proc = env.process(generator)
    env.run_all()
    assert proc.triggered
    return proc.value


def test_replication_group_requires_a_replica():
    env = Environment()
    network = Network(env)
    with pytest.raises(ValueError):
        ReplicationGroup(env, network, 0, 0, 100, 10.0)


def test_quorum_size():
    _, group3 = make_group(3)
    assert group3.quorum_size == 2
    _, group5 = make_group(5)
    assert group5.quorum_size == 3
    _, group1 = make_group(1)
    assert group1.quorum_size == 1


def test_replicate_advances_durable_lsn_and_takes_a_round_trip():
    env, group = make_group(3)
    start = env.now
    durable = drive(env, group.replicate(5, ["r1", "r2"]))
    assert durable == 5
    assert group.durable_lsn == 5
    assert env.now - start >= 2 * 50.0  # at least one round trip to a follower
    assert group.stats["append_rounds"] == 1
    assert group.stats["entries_replicated"] == 2


def test_single_replica_replication_is_local_persist_only():
    env, group = make_group(1)
    start = env.now
    drive(env, group.replicate(3, ["r"]))
    assert env.now - start == pytest.approx(20.0)


def test_followers_receive_entries_for_failover():
    env, group = make_group(3)
    drive(env, group.replicate(2, ["a", "b"]))
    assert group.highest_replicated_lsn() == 2
    assert all(f.acked_lsn == 2 for f in group.followers)


def test_leader_election_bumps_term():
    env, group = make_group(3)
    group.leader_crashed()
    assert not group.leader_alive
    term = drive(env, group.elect_new_leader())
    assert term == 2
    assert group.leader_alive
    assert group.stats["elections"] == 1


def test_membership_detects_missing_heartbeats():
    env = Environment()
    service = MembershipService(env, 2, heartbeat_interval_us=100.0, heartbeat_timeout_us=500.0)
    failures = []
    service.on_failure(failures.append)
    service.start()

    def heartbeats():
        # Partition 0 keeps beating, partition 1 goes silent after 300 µs.
        for i in range(100):
            service.heartbeat(0)
            if env.now < 300:
                service.heartbeat(1)
            yield env.timeout(100.0)

    env.process(heartbeats())
    env.run(until=5_000)
    assert failures == [1]
    assert service.is_alive(0)
    assert not service.is_alive(1)


def test_membership_failure_reported_once_until_recovery():
    env = Environment()
    service = MembershipService(env, 1, heartbeat_interval_us=100.0, heartbeat_timeout_us=200.0)
    failures = []
    service.on_failure(failures.append)
    service.start()
    env.run(until=2_000)
    assert failures == [0]
    service.mark_recovered(0)
    assert service.is_alive(0)


def test_watermark_agreement_uses_the_maximum_published_value():
    env = Environment()
    service = MembershipService(env, 3)
    term = service.new_recovery_term()
    service.publish_watermark(term, 0, 10.0)
    service.publish_watermark(term, 1, 25.0)
    service.publish_watermark(term, 2, 17.0)
    assert service.agreed_global_watermark(term) == 25.0
    assert service.published_watermarks(term) == {0: 10.0, 1: 25.0, 2: 17.0}
    # A new term starts empty.
    next_term = service.new_recovery_term()
    assert next_term == term + 1
    assert service.agreed_global_watermark(next_term) is None


# -- follower fault surface and quorum-th-fastest timing ---------------------

def test_equal_links_quorum_wait_matches_single_roundtrip():
    # Bit-identity pin for the quorum-th-fastest rewrite: with homogeneous
    # links every follower round trip is identical, so picking the quorum-th
    # fastest is indistinguishable from the historical "first follower" wait.
    env, group = make_group(5)
    start = env.now
    drive(env, group.replicate(1, ["a"]))
    assert env.now - start == pytest.approx(2 * 50.0 + 20.0)


def test_follower_lag_shifts_quorum_to_the_next_fastest_follower():
    env, group = make_group(3)  # quorum 2: leader + 1 follower ack
    group.set_follower_lag(0, 1_000.0)
    start = env.now
    drive(env, group.replicate(1, ["a"]))
    # The unlagged follower bounds the quorum: plain round trip + persist.
    assert env.now - start == pytest.approx(2 * 50.0 + 20.0)
    # Lag both followers and the quorum must eat the injected delay.
    group.set_follower_lag(1, 1_000.0)
    start = env.now
    drive(env, group.replicate(2, ["b"]))
    assert env.now - start == pytest.approx(2 * 50.0 + 1_000.0 + 20.0)
    # Clearing the lag restores the fast path.
    group.set_follower_lag(0, 0.0)
    start = env.now
    drive(env, group.replicate(3, ["c"]))
    assert env.now - start == pytest.approx(2 * 50.0 + 20.0)


def test_heterogeneous_links_reshape_the_quorum_wait():
    env = Environment()
    network = Network(env, one_way_latency_us=50.0)
    group = ReplicationGroup(env, network, 0, 3, 100, storage_persist_us=20.0)
    # Second follower sits behind a slow (geo-distant) link.
    network.set_extra_delay_to(101, 400.0)
    start = env.now
    drive(env, group.replicate(1, ["a"]))
    # Quorum needs one follower ack and the fast link provides it.
    assert env.now - start == pytest.approx(2 * 50.0 + 20.0)


def test_crashed_follower_misses_entries_and_catches_up_on_recovery():
    env, group = make_group(3)
    group.crash_follower(0)
    drive(env, group.replicate(4, ["a"]))
    assert group.durable_lsn == 4
    assert group.followers[0].acked_lsn == 0  # crashed: acked nothing
    assert group.followers[1].acked_lsn == 4
    group.recover_follower(0)
    # Recovery replays the durable prefix before rejoining the quorum.
    assert group.followers[0].acked_lsn == 4
    assert not group.followers[0].crashed


def test_quorum_stalls_until_a_follower_recovers():
    env, group = make_group(3)
    group.crash_follower(0)
    group.crash_follower(1)

    def recover_later():
        yield env.timeout(2_500.0)
        group.recover_follower(0)

    env.process(recover_later())
    start = env.now
    drive(env, group.replicate(1, ["a"]))
    # Durability stalled (deterministic 1 ms polls) until the recovery at
    # 2.5 ms, then completed one normal round.
    assert group.stats["quorum_stalls"] >= 2
    assert env.now - start >= 2_500.0
    assert group.durable_lsn == 1


def test_follower_index_out_of_range_is_rejected():
    _, group = make_group(3)  # 2 followers
    with pytest.raises(ValueError, match="out of range"):
        group.set_follower_lag(2, 100.0)
    with pytest.raises(ValueError, match="out of range"):
        group.crash_follower(-1)


def test_election_cost_derives_from_network_roundtrip():
    env, group = make_group(3)
    start = env.now
    drive(env, group.elect_new_leader())
    # Homogeneous links: exactly the historical 4 x one_way + persist.
    assert env.now - start == pytest.approx(4 * 50.0 + 20.0)


def test_election_cost_tracks_the_slowest_live_follower():
    env = Environment()
    network = Network(env, one_way_latency_us=50.0)
    group = ReplicationGroup(env, network, 0, 3, 100, storage_persist_us=20.0)
    network.set_extra_delay_to(101, 400.0)
    start = env.now
    drive(env, group.elect_new_leader())
    # Vote round trips reach every follower; the slow link dominates.
    assert env.now - start == pytest.approx(2 * (2 * 50.0 + 400.0) + 20.0)
    # With the slow follower crashed the election only waits on live voters.
    group.crash_follower(1)
    start = env.now
    drive(env, group.elect_new_leader())
    assert env.now - start == pytest.approx(2 * (2 * 50.0) + 20.0)


def test_single_replica_election_keeps_the_fixed_allowance():
    env, group = make_group(1)
    start = env.now
    drive(env, group.elect_new_leader())
    assert env.now - start == pytest.approx(4 * 50.0 + 20.0)
