"""Tests of the open-loop traffic engine (`repro.arrivals`).

Covers the contractual properties of :class:`repro.ArrivalSpec` and the
open-loop runtime:

* **eager validation** — unknown kinds/parameters raise at construction with
  did-you-mean hints; closed kinds reject rates; open kinds require one;
* **closed-loop normalization** — ``arrival="closed"`` coerces to ``None``,
  serializes identically to a legacy scenario (cache-key preservation) and
  reproduces pre-arrival fixed-seed counts byte-identically;
* **JSON round trip** — flat form, ``from_json_dict(to_json_dict(s)) == s``;
* **runtime semantics** — queueing latency is measured from arrival time,
  full admission queues shed load, bursty skew shifts are deterministic, and
  per-component rate shaping drives mixed workloads.
"""

from __future__ import annotations

import pytest

import repro
from repro import ScenarioSpec
from repro.arrivals import CLOSED, AdmissionQueue, ArrivalSpec, arrival
from repro.cluster.cluster import Cluster
from repro.registry import ARRIVAL_REGISTRY, UnknownNameError
from repro.scenario import build, sweep
from tests.conftest import tiny_config, tiny_ycsb


def fingerprint(result) -> tuple:
    """Everything that must match for two runs to count as bit-identical."""
    return (
        result.committed,
        result.aborted,
        result.metrics.crash_aborted,
        result.network_messages,
        tuple(result.metrics.latency.samples),
        tuple(sorted(result.abort_reasons.items())),
        tuple(sorted(result.per_txn_type.items())),
    )


def run_open_tiny(arrival_value, protocol: str = "primo", **overrides):
    cluster = Cluster(tiny_config(protocol, **overrides), tiny_ycsb(),
                      arrival=arrival_value)
    return cluster, cluster.run()


# ---------------------------------------------------------------------------
# Eager validation
# ---------------------------------------------------------------------------

def test_builtin_kinds_are_registered():
    names = {entry.name for entry in ARRIVAL_REGISTRY.entries()}
    assert {"closed", "poisson", "deterministic", "bursty"} <= names


def test_unknown_kind_fails_with_suggestion():
    with pytest.raises(UnknownNameError, match="did you mean 'poisson'"):
        ArrivalSpec(kind="posson", rate_tps=1000.0)


def test_unknown_parameter_fails_with_suggestion():
    with pytest.raises(ValueError, match="burst_factor"):
        arrival("bursty", 1000.0, burst_facter=2.0)
    # Kinds without parameters say so.
    with pytest.raises(ValueError, match="unknown parameter"):
        arrival("poisson", 1000.0, burstiness=2.0)


def test_closed_kind_rejects_rate_and_params():
    with pytest.raises(ValueError, match="closed-loop"):
        ArrivalSpec(kind=CLOSED, rate_tps=1000.0)


def test_open_kind_requires_an_offered_load():
    with pytest.raises(ValueError, match="rate_tps or component_rates"):
        ArrivalSpec(kind="poisson")
    with pytest.raises(ValueError, match="positive"):
        arrival("poisson", -5.0)
    with pytest.raises(ValueError, match="not both"):
        ArrivalSpec(kind="poisson", rate_tps=1000.0,
                    component_rates=(("ycsb", 500.0),))


def test_bursty_parameter_ranges_are_checked():
    with pytest.raises(ValueError, match="burst_start_frac"):
        arrival("bursty", 1000.0, burst_start_frac=0.8, burst_end_frac=0.2)
    with pytest.raises(ValueError, match="burst_factor"):
        arrival("bursty", 1000.0, burst_factor=0.0)
    with pytest.raises(ValueError, match="hot_theta"):
        arrival("bursty", 1000.0, hot_theta=1.5)


def test_coerce_normalizes_the_closed_loop_to_none():
    assert ArrivalSpec.coerce(None) is None
    assert ArrivalSpec.coerce("closed") is None
    assert ArrivalSpec.coerce({"kind": "closed"}) is None
    spec = ArrivalSpec.coerce({"kind": "poisson", "rate_tps": 1000})
    assert spec == arrival("poisson", 1000.0)
    with pytest.raises(TypeError, match="ArrivalSpec"):
        ArrivalSpec.coerce(42)


# ---------------------------------------------------------------------------
# JSON round trip & cache-key preservation
# ---------------------------------------------------------------------------

def test_arrival_spec_json_round_trip_is_exact():
    for spec in (
        arrival("poisson", 150_000),
        arrival("deterministic", 80_000.0),
        arrival("bursty", 50_000, burst_factor=6.0, hot_theta=0.95),
        ArrivalSpec(kind="poisson",
                    component_rates={"ycsb": 1000.0, "tatp": 250}),
    ):
        data = spec.to_json_dict()
        assert ArrivalSpec.from_json_dict(data) == spec
        # Parameters sit flat next to the spec fields (FaultEvent style).
        assert "params" not in data


def test_int_and_float_rates_build_equal_specs():
    assert arrival("poisson", 1000) == arrival("poisson", 1000.0)
    assert (arrival("bursty", 1000, burst_factor=4)
            == arrival("bursty", 1000.0, burst_factor=4.0))


def test_explicit_closed_scenario_serializes_like_a_legacy_one():
    """``arrival="closed"`` must not perturb orchestrator cache keys."""
    legacy = ScenarioSpec(protocol="primo", scale="tiny")
    explicit = ScenarioSpec(protocol="primo", scale="tiny", arrival="closed")
    assert explicit.canonical_json() == legacy.canonical_json()
    assert "arrival" not in legacy.to_json_dict()


def test_scenario_spec_round_trips_the_arrival():
    spec = ScenarioSpec(
        protocol="primo", scale="tiny",
        arrival={"kind": "bursty", "rate_tps": 60_000, "hot_theta": 0.9},
    )
    again = ScenarioSpec.from_json(spec.to_json())
    assert again == spec
    assert again.arrival.effective_params()["hot_theta"] == 0.9


def test_component_rates_require_a_mixed_workload_with_those_components():
    with pytest.raises(ValueError, match="require the 'mixed' workload"):
        ScenarioSpec(protocol="primo", workload="ycsb",
                     arrival={"kind": "poisson",
                              "component_rates": {"ycsb": 1000}})
    with pytest.raises(ValueError, match="did you mean 'tatp'"):
        ScenarioSpec(
            protocol="primo", workload="mixed",
            workload_overrides={"components": [["ycsb", 0.7], ["tatp", 0.3]]},
            arrival={"kind": "poisson", "component_rates": {"tapt": 1000}},
        )


def test_sweep_accepts_the_arrival_axis():
    base = ScenarioSpec(protocol="primo", scale="tiny")
    specs = sweep(base, arrival=[
        None,
        {"kind": "poisson", "rate_tps": 40_000},
        {"kind": "poisson", "rate_tps": 80_000},
    ])
    assert [s.arrival.rate_tps if s.arrival else None for s in specs] == [
        None, 40_000.0, 80_000.0]


# ---------------------------------------------------------------------------
# Closed-loop bit-identity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("workload", ["ycsb", "tpcc"])
def test_explicit_closed_reproduces_legacy_fixed_seed_counts(workload):
    legacy = repro.run(ScenarioSpec(protocol="primo", workload=workload,
                                    scale="tiny"))
    explicit = repro.run(ScenarioSpec(protocol="primo", workload=workload,
                                      scale="tiny", arrival="closed"))
    assert fingerprint(explicit) == fingerprint(legacy)


def test_zero_think_time_normalizes_to_the_legacy_closed_loop():
    legacy = ScenarioSpec(protocol="primo", scale="tiny")
    explicit = ScenarioSpec(protocol="primo", scale="tiny",
                            arrival={"kind": "closed", "think_time_us": 0})
    assert explicit.arrival is None
    assert explicit.canonical_json() == legacy.canonical_json()


def test_positive_think_time_is_a_distinct_scenario():
    base = ScenarioSpec(protocol="primo", scale="tiny")
    thinking = ScenarioSpec(protocol="primo", scale="tiny",
                            arrival={"kind": "closed", "think_time_us": 800})
    assert thinking.arrival is not None and not thinking.arrival.open_loop
    assert thinking.canonical_json() != base.canonical_json()
    rebuilt = ScenarioSpec.from_json_dict(thinking.to_json_dict())
    assert rebuilt == thinking
    # Thinking clients throttle themselves: strictly less gets done.
    idle = repro.run(thinking)
    busy = repro.run(base)
    assert 0 < idle.committed < busy.committed


def test_think_time_validation():
    with pytest.raises(ValueError, match="non-negative"):
        arrival("closed", think_time_us=-1.0)
    with pytest.raises(ValueError, match="no rate_tps"):
        arrival("closed", 50_000)
    with pytest.raises(ValueError, match="unknown parameter"):
        arrival("closed", think_tme_us=100.0)


# ---------------------------------------------------------------------------
# Open-loop runtime semantics
# ---------------------------------------------------------------------------

def test_open_loop_run_counts_offered_arrivals():
    cluster, result = run_open_tiny(arrival("poisson", 50_000))
    offered = result.metrics.counters.get("arrivals_offered")
    assert result.committed > 0
    assert offered >= result.committed + result.metrics.counters.get(
        "arrivals_dropped")
    # ~17 ms of run at 50k tps: the offered count tracks the rate.
    assert 500 <= offered <= 1_200
    assert set(cluster.admission_queues) == set(cluster.servers)


def test_open_loop_latency_includes_queueing():
    _, result = run_open_tiny(arrival("poisson", 50_000))
    assert result.metrics.breakdown.total("queue") > 0.0


def test_full_admission_queue_sheds_load():
    _, result = run_open_tiny(arrival("poisson", 400_000),
                              admission_queue_depth=4)
    counters = result.metrics.counters
    assert counters.get("arrivals_dropped") > 0
    assert counters.get("admission_queue_peak_depth") == 4


def test_open_loop_is_deterministic_within_a_process():
    _, first = run_open_tiny(arrival("bursty", 60_000, hot_theta=0.95))
    _, second = run_open_tiny(arrival("bursty", 60_000, hot_theta=0.95))
    assert fingerprint(first) == fingerprint(second)


def test_bursty_hot_skew_shift_changes_the_outcome():
    _, flat = run_open_tiny(arrival("bursty", 60_000))
    _, skewed = run_open_tiny(arrival("bursty", 60_000, hot_theta=0.99))
    assert fingerprint(flat) != fingerprint(skewed)


def test_deterministic_arrivals_are_evenly_spaced():
    _, result = run_open_tiny(arrival("deterministic", 50_000))
    offered = result.metrics.counters.get("arrivals_offered")
    # 17 ms x 50k tps, one stream per partition: exactly floor(17ms / 40us)
    # arrivals per partition (the first arrival lands after one full gap).
    assert offered == 2 * int(17_000 / 40)


def test_own_loop_protocols_reject_open_loop_arrivals():
    with pytest.raises(ValueError, match="drives its own execution loop"):
        Cluster(tiny_config("aria"), tiny_ycsb(),
                arrival=arrival("poisson", 50_000))


def test_component_rates_drive_a_mixed_workload():
    spec = ScenarioSpec(
        protocol="primo", workload="mixed", scale="tiny",
        workload_overrides={"components": [["ycsb", 0.7], ["tatp", 0.3]]},
        arrival={"kind": "poisson",
                 "component_rates": {"ycsb": 40_000, "tatp": 10_000}},
    )
    result = repro.run(spec)
    assert result.committed > 0
    per_type = dict(result.per_txn_type)
    assert any(name.startswith("ycsb") for name in per_type)
    assert any(name.startswith("tatp") for name in per_type)


def test_admission_queue_wakes_waiters_in_fifo_order():
    from repro.sim.engine import Environment

    env = Environment()
    queue = AdmissionQueue(env, capacity=2)
    woken = []

    def waiter(tag):
        yield queue.wait()
        woken.append(tag)

    env.process(waiter("a"), name="a")
    env.process(waiter("b"), name="b")

    def feeder():
        yield env.timeout(1.0)
        assert queue.offer(env.now, "first") is True
        assert queue.offer(env.now, "second") is True
        assert queue.offer(env.now, "third") is False  # full -> dropped
        yield env.timeout(1.0)

    env.process(feeder(), name="feeder")
    env.run(until=10.0)
    assert woken == ["a", "b"]
    assert (queue.offered, queue.dropped, queue.peak_depth) == (3, 1, 2)
