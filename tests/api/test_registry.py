"""Tests of the first-class registries (`repro.registry`).

The acceptance bar for the registry layer: a new protocol / workload can be
registered from *this* module — no core file edited — and immediately works
everywhere names are consumed (SystemConfig validation, the protocol factory,
ScenarioSpec, the CLI listings, orchestrator sweeps).
"""

from __future__ import annotations

import pytest

from repro.bench.__main__ import main as bench_main
from repro.cluster.config import DURABILITY_SCHEMES, PROTOCOLS, SystemConfig
from repro.protocols import SiloProtocol, create_protocol
from repro.registry import (
    DURABILITY_REGISTRY,
    FIGURE_REGISTRY,
    PROTOCOL_REGISTRY,
    WORKLOAD_REGISTRY,
    DuplicateNameError,
    Registry,
    UnknownNameError,
    register_protocol,
    register_workload,
)
from repro.scenario import ScenarioSpec, build_workload
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

from tests.conftest import run_tiny


# ---------------------------------------------------------------------------
# Generic registry behavior
# ---------------------------------------------------------------------------

def test_register_get_and_views():
    reg = Registry("gizmo")
    reg.register("alpha", object(), colour="red")
    assert "alpha" in reg
    assert reg.names() == ("alpha",)
    assert reg.entry("alpha").metadata["colour"] == "red"

    view = reg.names_view()
    mapping = reg.as_mapping()
    reg.register("beta", object())
    # Views are live: they see registrations made after their creation.
    assert tuple(view) == ("alpha", "beta")
    assert view[0] == "alpha" and len(view) == 2 and "beta" in view
    assert set(mapping) == {"alpha", "beta"}
    assert mapping["beta"] is reg.get("beta")


def test_register_as_decorator_returns_the_class():
    reg = Registry("gizmo")

    @reg.register("decorated", flavour="mint")
    class Thing:
        pass

    assert reg.get("decorated") is Thing
    assert Thing.__name__ == "Thing"  # decorator is transparent


def test_duplicate_registration_rejected_unless_replace():
    reg = Registry("gizmo")
    reg.register("alpha", 1)
    with pytest.raises(DuplicateNameError):
        reg.register("alpha", 2)
    assert reg.get("alpha") == 1
    reg.register("alpha", 2, replace=True)
    assert reg.get("alpha") == 2


def test_unknown_lookup_suggests_close_names():
    reg = Registry("gizmo")
    reg.register("sundial", 1)
    with pytest.raises(UnknownNameError, match="did you mean 'sundial'"):
        reg.get("sundail")
    with pytest.raises(UnknownNameError, match="unknown gizmo"):
        reg.unregister("nope")


def test_builtin_registries_hold_the_papers_implementations():
    assert set(PROTOCOL_REGISTRY.names()) == {
        "primo", "2pl_nw", "2pl_wd", "silo", "sundial", "aria", "tapir",
    }
    assert set(DURABILITY_REGISTRY.names()) == {"wm", "coco", "clv", "sync", "none"}
    assert set(WORKLOAD_REGISTRY.names()) == {
        "ycsb", "tpcc", "tatp", "smallbank", "mixed",
    }
    assert {f"fig{i:02d}" for i in range(4, 16)} <= set(FIGURE_REGISTRY.names())
    # The historical tuple views are backed by the registries.
    assert tuple(PROTOCOLS) == PROTOCOL_REGISTRY.names()
    assert tuple(DURABILITY_SCHEMES) == DURABILITY_REGISTRY.names()


def test_protocol_metadata_carries_the_durability_pairing():
    assert PROTOCOL_REGISTRY.entry("primo").metadata["default_durability"] == "wm"
    assert PROTOCOL_REGISTRY.entry("tapir").metadata["default_durability"] == "sync"
    assert PROTOCOL_REGISTRY.entry("aria").metadata["default_durability"] == "none"


# ---------------------------------------------------------------------------
# Unified unknown-name errors (deduplicated error paths)
# ---------------------------------------------------------------------------

def test_systemconfig_and_factory_raise_the_same_registry_error():
    with pytest.raises(UnknownNameError, match="did you mean 'primo'"):
        SystemConfig(protocol="prmo")
    with pytest.raises(UnknownNameError, match="did you mean 'primo'"):
        create_protocol("prmo", cluster=None)
    with pytest.raises(UnknownNameError, match="did you mean 'coco'"):
        SystemConfig(durability="cocoa")


def test_cli_unknown_figure_gets_a_suggestion(capsys):
    with pytest.raises(SystemExit):
        bench_main(["--only", "fig9"])
    assert "did you mean 'fig09'" in capsys.readouterr().err


def test_cli_scenario_rejects_contradictory_flags(tmp_path, capsys):
    """--scenario carries its own scale per spec; combining it with --scale
    or --figure must fail loudly instead of silently ignoring the flag."""
    scenario = tmp_path / "scenario.json"
    scenario.write_text('{"protocol": "primo", "scale": "tiny"}')
    with pytest.raises(SystemExit):
        bench_main(["--scenario", str(scenario), "--scale", "paper"])
    assert "--scale does not apply" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        bench_main(["--scenario", str(scenario), "--only", "fig04"])
    assert "mutually exclusive" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Extending from outside the core (the acceptance scenario)
# ---------------------------------------------------------------------------

def test_protocol_registered_here_works_end_to_end(capsys):
    @register_protocol("silo_test_variant", default_durability="coco",
                       description="registered from a test module")
    class SiloTestVariant(SiloProtocol):
        pass

    try:
        assert "silo_test_variant" in PROTOCOLS
        # SystemConfig accepts it and picks up the registered pairing.
        config = SystemConfig.for_protocol("silo_test_variant")
        assert config.durability == "coco"
        # The CLI lists it.
        assert bench_main(["--list", "protocols"]) == 0
        assert "silo_test_variant" in capsys.readouterr().out
        # A ScenarioSpec run and an orchestrator sweep both execute it.
        _, result = run_tiny("silo_test_variant")
        assert result.committed > 0
        assert result.protocol == "silo_test_variant"
    finally:
        PROTOCOL_REGISTRY.unregister("silo_test_variant")
    assert "silo_test_variant" not in PROTOCOLS


def test_workload_registered_here_works_end_to_end(capsys):
    @register_workload("ycsb_test_variant", config_cls=YCSBConfig,
                       scale_defaults={"keys_per_partition": "ycsb_keys_per_partition"})
    class YCSBTestVariant(YCSBWorkload):
        pass

    try:
        workload = build_workload("tiny", "ycsb_test_variant", zipf_theta=0.9)
        assert isinstance(workload, YCSBTestVariant)
        assert workload.config.keys_per_partition == 2_000  # tiny-scale sizing
        assert workload.config.zipf_theta == 0.9
        # Spec validation accepts the new name and checks overrides against
        # the registered config dataclass.
        ScenarioSpec(protocol="primo", workload="ycsb_test_variant", scale="tiny",
                     workload_overrides={"write_pct": 1.0})
        with pytest.raises(UnknownNameError):
            ScenarioSpec(protocol="primo", workload="ycsb_test_varian", scale="tiny")
        assert bench_main(["--list", "workloads"]) == 0
        assert "ycsb_test_variant" in capsys.readouterr().out
    finally:
        WORKLOAD_REGISTRY.unregister("ycsb_test_variant")


def test_figure_registered_here_appears_in_cli_and_sweeps(capsys):
    from repro.bench.experiments import FIGURES, FigureSpec
    from repro.bench.orchestrator import make_cell, run_cells
    from repro.scales import TINY_SCALE

    def plan(scale):
        return [make_cell("figtest", "primo", "primo", scale)]

    def render(scale, results):
        return {"committed": results["primo"].committed}

    FIGURE_REGISTRY.register("figtest", FigureSpec("figtest", plan, render))
    try:
        assert "figtest" in FIGURES  # the live registry view
        cells = FIGURES["figtest"].plan(TINY_SCALE)
        outcome = run_cells(cells, jobs=1)
        data = FIGURES["figtest"].render(TINY_SCALE, outcome.by_key(cells))
        assert data["committed"] > 0
        assert bench_main(["--list", "figures"]) == 0
        assert "figtest" in capsys.readouterr().out
    finally:
        FIGURE_REGISTRY.unregister("figtest")
