"""Tests of the declarative fault-plan API (`repro.faults`).

Three contractual properties:

* **eager validation** — unknown fault kinds, missing/unknown parameters,
  bad targets and malformed windows raise at construction with did-you-mean
  hints, and a plan targeting a partition the cluster does not have fails
  when the cluster starts, not silently mid-run;
* **legacy shim bit-identity** — the pre-plan scalar knobs
  (``durability_message_delay``, ``network_extra_delay_to``,
  ``crash_partition``/``crash_time_us``) compile onto the fault-plan path and
  reproduce their pre-PR fixed-seed results exactly (golden-pinned), and an
  explicitly spelled FaultPlan reproduces the same numbers;
* **one execution path** — a spec with a multi-event plan produces identical
  results through ``repro.run``, the cached orchestrator, and a
  ``--scenario file.json`` CLI invocation.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro import FaultPlan, ScenarioSpec, fault
from repro.bench.__main__ import main as bench_main
from repro.bench.orchestrator import Cell, run_cells
from repro.registry import FAULT_REGISTRY, UnknownNameError, register_fault

from tests.api.test_scenario import fingerprint

#: Fixed-seed fingerprints of the legacy fault knobs at TINY scale, captured
#: on the commit *before* the fault-plan refactor.  If these change, the shim
#: compilation changed simulation semantics — that must be intentional and
#: called out in the PR description.
LEGACY_GOLDENS = {
    # ScenarioSpec(durability_message_delay=(1, 5_000.0)) — fig13a's cell.
    "message_delay": (558, 36, 0, 476),
    # ScenarioSpec(network_extra_delay_to=(1, 200.0)) — fig13b's cell.
    "slow_partition": (354, 24, 0, 338),
    # crash_partition=1, crash_time_us=4_000.0 (hb 500/2000) — fig12b-style.
    "crash": (232, 26, 0, 247),
}


def counts(result) -> tuple:
    return (result.committed, result.aborted, result.metrics.crash_aborted,
            result.network_messages)


# ---------------------------------------------------------------------------
# Eager validation
# ---------------------------------------------------------------------------

def test_unknown_fault_kind_fails_with_suggestion():
    with pytest.raises(UnknownNameError, match="did you mean 'crash'"):
        fault("crsh", at_us=100.0, target=0)


def test_missing_and_unknown_parameters_fail_at_construction():
    with pytest.raises(ValueError, match="missing parameter.*delay_us"):
        fault("message_delay", target=1)
    with pytest.raises(ValueError, match="did you mean 'delay_us'"):
        fault("message_delay", target=1, delay_su=5.0)


def test_bad_targets_and_windows_fail_at_construction():
    with pytest.raises(ValueError, match="at_us must be >= 0"):
        fault("crash", at_us=-1.0, target=0)
    with pytest.raises(ValueError, match="duration_us must be > 0"):
        fault("slow_partition", at_us=0, duration_us=0.0, target=1, delay_us=5.0)
    with pytest.raises(ValueError, match="does not take a duration"):
        fault("recover", at_us=10.0, duration_us=5.0, target=1)
    with pytest.raises(ValueError, match="unknown fault target"):
        fault("crash", at_us=1.0, target="everything")
    with pytest.raises(ValueError, match="duplicates"):
        fault("crash", at_us=1.0, target=[1, 1])


def test_plan_targeting_a_missing_partition_fails_at_start():
    spec = ScenarioSpec(protocol="primo", scale="tiny",
                        config_overrides={"n_partitions": 2},
                        faults=[fault("slow_partition", target=5, delay_us=10.0)])
    cluster = repro.build(spec)
    with pytest.raises(ValueError, match="targets partition 5"):
        cluster.start()


def test_spec_accepts_plan_objects_events_and_dicts_equivalently():
    via_dicts = ScenarioSpec(
        protocol="primo", scale="tiny",
        faults=[{"kind": "message_delay", "target": 1, "delay_us": 5000}])
    via_events = ScenarioSpec(
        protocol="primo", scale="tiny",
        faults=[fault("message_delay", target=1, delay_us=5_000.0)])
    via_plan = ScenarioSpec(
        protocol="primo", scale="tiny",
        faults=FaultPlan(events=(fault("message_delay", target=1, delay_us=5000),)))
    assert via_dicts == via_events == via_plan
    assert via_dicts.canonical_json() == via_plan.canonical_json()


def test_fault_plan_json_round_trip_is_lossless():
    plan = FaultPlan(events=(
        fault("message_delay", target=1, delay_us=5_000.0),
        fault("slow_partition", at_us=1_000.0, duration_us=2_000.0,
              target=[0, 2], delay_us=100.0),
        fault("crash", at_us=4_000.0, target=1),
        fault("network_partition", at_us=2_000.0, duration_us=500.0, target="all"),
    ))
    assert FaultPlan.from_json(plan.to_json()) == plan
    spec = ScenarioSpec(protocol="primo", scale="tiny", faults=plan)
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_empty_fault_plans_normalize_to_none():
    assert ScenarioSpec(protocol="primo", faults=[]).faults is None
    assert ScenarioSpec(protocol="primo", faults=FaultPlan()).faults is None
    assert ScenarioSpec(protocol="primo").faults is None


# ---------------------------------------------------------------------------
# Legacy shims: pre-PR golden pins and explicit-plan equivalence
# ---------------------------------------------------------------------------

def test_legacy_message_delay_knob_matches_pre_plan_golden():
    legacy = ScenarioSpec(protocol="primo", scale="tiny",
                          durability_message_delay=(1, 5_000.0))
    result = repro.run(legacy)
    assert counts(result) == LEGACY_GOLDENS["message_delay"]
    explicit = ScenarioSpec(
        protocol="primo", scale="tiny",
        faults=[fault("message_delay", target=1, delay_us=5_000.0)])
    assert fingerprint(repro.run(explicit)) == fingerprint(result)


def test_legacy_slow_partition_knob_matches_pre_plan_golden():
    legacy = ScenarioSpec(protocol="primo", scale="tiny",
                          network_extra_delay_to=(1, 200.0))
    result = repro.run(legacy)
    assert counts(result) == LEGACY_GOLDENS["slow_partition"]
    explicit = ScenarioSpec(
        protocol="primo", scale="tiny",
        faults=[fault("slow_partition", target=1, delay_us=200.0)])
    assert fingerprint(repro.run(explicit)) == fingerprint(result)


def test_legacy_crash_config_matches_pre_plan_golden():
    legacy = ScenarioSpec(
        protocol="primo", scale="tiny",
        config_overrides={"crash_partition": 1, "crash_time_us": 4_000.0,
                          "heartbeat_interval_us": 500.0,
                          "heartbeat_timeout_us": 2_000.0})
    result = repro.run(legacy)
    assert counts(result) == LEGACY_GOLDENS["crash"]
    assert result.metrics.counters.get("crashes_injected") == 1
    explicit = ScenarioSpec(
        protocol="primo", scale="tiny",
        faults=[fault("crash", at_us=4_000.0, target=1)],
        config_overrides={"heartbeat_interval_us": 500.0,
                          "heartbeat_timeout_us": 2_000.0})
    assert fingerprint(repro.run(explicit)) == fingerprint(result)


# ---------------------------------------------------------------------------
# Windows, storms, and scheduling behaviour
# ---------------------------------------------------------------------------

def test_windowed_fault_is_applied_and_reverted():
    spec = ScenarioSpec(
        protocol="primo", scale="tiny",
        faults=[fault("slow_partition", at_us=2_000.0, duration_us=2_000.0,
                      target=1, delay_us=300.0)])
    cluster = repro.build(spec)
    cluster.run()
    assert cluster.fault_scheduler.applied == 1
    assert cluster.fault_scheduler.reverted == 1
    # The injection was cleared, so the network's no-fault fast path is back.
    assert not cluster.network._faults_active
    # And the window left a visible dent versus the permanent variant.
    permanent = repro.run(spec.derive(
        faults=[fault("slow_partition", at_us=2_000.0, target=1, delay_us=300.0)]))
    windowed = repro.run(spec)
    assert fingerprint(windowed) != fingerprint(permanent)


def test_multi_event_storm_runs_through_every_layer():
    """A failure storm: delay window + asymmetric slowdown + partition blip."""
    spec = ScenarioSpec(
        protocol="primo", scale="tiny",
        faults=[
            fault("message_delay", at_us=0.0, duration_us=3_000.0,
                  target=1, delay_us=2_000.0),
            fault("slow_source", at_us=1_000.0, duration_us=2_000.0,
                  target=0, delay_us=50.0),
            fault("network_partition", at_us=4_000.0, duration_us=300.0, target=1),
        ])
    cluster = repro.build(spec)
    result = cluster.run()
    assert cluster.fault_scheduler.applied == 3
    assert cluster.fault_scheduler.reverted == 3
    assert result.metrics.counters.get("partitions_isolated") == 1
    assert result.committed > 0


def test_rolling_crashes_recover_both_partitions():
    spec = ScenarioSpec(
        protocol="primo", scale="tiny",
        config_overrides={"n_partitions": 3, "duration_us": 30_000.0,
                          "heartbeat_interval_us": 500.0,
                          "heartbeat_timeout_us": 2_000.0},
        faults=[
            fault("crash", at_us=5_000.0, target=1),
            fault("crash", at_us=15_000.0, target=2),
        ])
    cluster = repro.build(spec)
    result = cluster.run()
    assert result.metrics.counters.get("crashes_injected") == 2
    assert cluster.recovery.stats["recoveries"] >= 2
    assert not cluster.servers[1].crashed and not cluster.servers[2].crashed
    assert result.committed > 0


def test_overlapping_same_kind_windows_are_rejected_at_start():
    """Reverts clear absolutely (not restore-prior), so a window ending inside
    another same-kind injection on the same target is a plan-authoring error."""
    spec = ScenarioSpec(
        protocol="primo", scale="tiny",
        faults=[
            fault("slow_partition", at_us=0.0, duration_us=3_000.0,
                  target=1, delay_us=200.0),
            fault("slow_partition", at_us=1_000.0, duration_us=4_000.0,
                  target=1, delay_us=500.0),
        ])
    with pytest.raises(ValueError, match="overlapping 'slow_partition' windows"):
        repro.build(spec).start()
    # Disjoint windows, different targets, or windowless pairs are all fine.
    ok = ScenarioSpec(
        protocol="primo", scale="tiny",
        faults=[
            fault("slow_partition", at_us=0.0, duration_us=1_000.0,
                  target=1, delay_us=200.0),
            fault("slow_partition", at_us=2_000.0, duration_us=1_000.0,
                  target=1, delay_us=500.0),
            fault("slow_source", at_us=0.0, duration_us=3_000.0,
                  target=1, delay_us=50.0),
        ])
    assert repro.run(ok).committed > 0


def test_windowed_crash_recovers_without_duplicate_recovery():
    """A crash window whose revert fires before heartbeat detection must not
    race the monitor into a second concurrent recovery."""
    spec = ScenarioSpec(
        protocol="primo", scale="tiny",
        config_overrides={"duration_us": 20_000.0,
                          "heartbeat_interval_us": 500.0,
                          "heartbeat_timeout_us": 4_000.0},
        faults=[fault("crash", at_us=5_000.0, duration_us=1_000.0, target=1)])
    cluster = repro.build(spec)
    result = cluster.run()
    assert result.metrics.counters.get("crashes_injected") == 1
    assert cluster.recovery.stats["recoveries"] == 1
    assert not cluster.servers[1].crashed
    assert result.committed > 0


def test_explicit_recover_event_is_idempotent_with_detection():
    """A scheduled `recover` composes with heartbeat-driven recovery: whoever
    fires second is a no-op, and the run still completes exactly one recovery."""
    spec = ScenarioSpec(
        protocol="primo", scale="tiny",
        config_overrides={"heartbeat_interval_us": 500.0,
                          "heartbeat_timeout_us": 2_000.0},
        faults=[
            fault("crash", at_us=3_000.0, target=1),
            fault("recover", at_us=3_500.0, target=1),
        ])
    cluster = repro.build(spec)
    result = cluster.run()
    assert result.metrics.counters.get("crashes_injected") == 1
    assert result.metrics.counters.get("recoveries_completed") >= 1
    assert not cluster.servers[1].crashed


def test_clock_skew_pushes_the_commit_floor():
    spec = ScenarioSpec(
        protocol="primo", scale="tiny",
        faults=[fault("clock_skew", at_us=1_000.0, target=0, skew_us=5_000.0)])
    cluster = repro.build(spec)
    result = cluster.run()
    assert cluster.servers[0].highest_ts_seen >= 6_000.0
    assert result.committed > 0


# ---------------------------------------------------------------------------
# Registry extension point
# ---------------------------------------------------------------------------

def test_external_fault_type_registers_and_runs():
    @register_fault("test_latency_spike", params=("delay_us",),
                    description="test-only network-wide latency bump")
    class LatencySpikeFault:
        @staticmethod
        def apply(cluster, partition_id, params):
            cluster.network.set_extra_delay_to(partition_id, params["delay_us"])

        @staticmethod
        def revert(cluster, partition_id, params):
            cluster.network.set_extra_delay_to(partition_id, 0.0)

    try:
        spec = ScenarioSpec(
            protocol="primo", scale="tiny",
            faults=[fault("test_latency_spike", at_us=1_000.0,
                          duration_us=2_000.0, target="all", delay_us=25.0)])
        cluster = repro.build(spec)
        result = cluster.run()
        assert cluster.fault_scheduler.applied == 1
        assert result.committed > 0
    finally:
        FAULT_REGISTRY.unregister("test_latency_spike")
    with pytest.raises(UnknownNameError):
        fault("test_latency_spike", target=0, delay_us=1.0)


def test_reserved_parameter_names_are_rejected_at_registration():
    with pytest.raises(ValueError, match="reserved parameter"):
        register_fault("test_bad_fault", params=("kind",))


# ---------------------------------------------------------------------------
# Sweep axes and the three execution paths
# ---------------------------------------------------------------------------

def test_sweep_accepts_fault_plans_and_mixes_as_axes():
    base = ScenarioSpec(protocol="primo", scale="tiny")
    storm = [{"kind": "crash", "at_us": 4_000.0, "target": 1}]
    grid = repro.sweep(base,
                       faults=[None, storm],
                       workload=["ycsb", {"ycsb": 0.5, "smallbank": 0.5}])
    assert len(grid) == 4
    assert {spec.workload for spec in grid} == {"ycsb", "mixed"}
    assert sum(1 for spec in grid if spec.faults is not None) == 2
    # Every grid point has a distinct cache identity.
    keys = {Cell(figure="t", key=str(i), spec=spec).cache_key()
            for i, spec in enumerate(grid)}
    assert len(keys) == 4


def test_fault_plan_changes_the_orchestrator_cache_key():
    plain = ScenarioSpec(protocol="primo", scale="tiny")
    faulted = plain.derive(
        faults=[{"kind": "message_delay", "target": 1, "delay_us": 1_000.0}])
    assert (Cell(figure="f", key="a", spec=plain).cache_key()
            != Cell(figure="f", key="a", spec=faulted).cache_key())


def test_faulted_spec_is_identical_across_run_orchestrator_and_cli(tmp_path, capsys):
    """Acceptance: multi-event FaultPlan + weighted mix produce the same
    fixed-seed result via repro.run, the cached orchestrator, and --scenario."""
    spec = ScenarioSpec(
        protocol="primo", scale="tiny",
        workload={"ycsb": 0.7, "tatp": 0.3},
        faults=[
            {"kind": "message_delay", "at_us": 0, "target": 1, "delay_us": 2_000.0},
            {"kind": "slow_partition", "at_us": 1_000.0, "duration_us": 2_000.0,
             "target": 1, "delay_us": 100.0},
        ])
    direct = repro.run(spec)

    cell = Cell(figure="scenario", key="#0", spec=spec)
    outcome = run_cells([cell], jobs=1, cache=None)
    via_orchestrator = outcome.results[cell]
    assert fingerprint(via_orchestrator) == fingerprint(direct)

    scenario_file = tmp_path / "scenario.json"
    scenario_file.write_text(spec.to_json())
    artifact = tmp_path / "result.json"
    code = bench_main(["--scenario", str(scenario_file),
                       "--cache-dir", str(tmp_path / "cache"),
                       "--emit-json", str(artifact), "--quiet-progress"])
    assert code == 0
    capsys.readouterr()
    [entry] = json.loads(artifact.read_text())["scenarios"]
    assert entry["result"]["committed"] == direct.committed
    assert entry["result"]["aborted"] == direct.aborted
    assert ScenarioSpec.from_json_dict(entry["spec"]) == spec


# ---------------------------------------------------------------------------
# Replication-layer fault kinds and the standard storm
# ---------------------------------------------------------------------------

def test_replication_fault_kinds_are_registered():
    registered = set(FAULT_REGISTRY.names())
    assert {"follower_lag", "follower_crash", "follower_recover",
            "leader_flap", "stale_read"} <= registered


def test_follower_faults_validate_parameters_eagerly():
    with pytest.raises(ValueError, match="missing parameter"):
        fault("follower_lag", target=0, follower=0)  # no delay_us
    with pytest.raises(ValueError, match="missing parameter"):
        fault("follower_crash", target=0)  # no follower
    with pytest.raises(ValueError, match="unknown parameter"):
        fault("stale_read", target=0, fraction=0.1, follower=0)


def test_leader_flap_rejects_a_duration_window():
    # The flap schedules its own crash/recover cycles; a revert window on top
    # would be meaningless, so it is rejected eagerly like `crash`'s.
    with pytest.raises(ValueError, match="does not take a duration_us"):
        fault("leader_flap", at_us=1_000.0, duration_us=5_000.0, target=0,
              cycles=2, interval_us=2_000.0)


def test_follower_index_out_of_range_fails_at_start():
    spec = ScenarioSpec(
        protocol="primo", scale="tiny",
        config_overrides={"replicas_per_partition": 3},
        faults=[fault("follower_lag", target=0, follower=7, delay_us=100.0)])
    cluster = repro.build(spec)
    with pytest.raises(ValueError, match="follower index 7 is out of range"):
        cluster.start()


def test_stale_read_fraction_is_validated_at_start():
    spec = ScenarioSpec(
        protocol="primo", scale="tiny",
        faults=[fault("stale_read", target=0, fraction=1.5)])
    cluster = repro.build(spec)
    with pytest.raises(ValueError, match="fraction"):
        cluster.start()


def test_leader_flap_parameters_are_validated_at_start():
    for params in ({"cycles": 0, "interval_us": 1_000.0},
                   {"cycles": 2, "interval_us": 0.0}):
        spec = ScenarioSpec(protocol="primo", scale="tiny",
                            faults=[fault("leader_flap", target=0, **params)])
        cluster = repro.build(spec)
        with pytest.raises(ValueError):
            cluster.start()


def test_standard_storm_factory_builds_a_valid_plan():
    events = repro.standard_storm(2_000.0, 60_000.0)
    assert [event.kind for event in events] == [
        "follower_lag", "slow_partition", "follower_crash", "leader_flap",
        "stale_read"]
    # The whole storm fits inside the measurement window.
    for event in events:
        assert event.at_us >= 2_000.0
        end = event.at_us + (event.duration_us or 0.0)
        assert end <= 62_000.0
    # It is directly usable as a spec's fault plan.
    plan = FaultPlan(events=tuple(events))
    spec = ScenarioSpec(protocol="primo", scale="tiny", faults=plan)
    assert spec.faults == plan
    with pytest.raises(ValueError, match="duration_us"):
        repro.standard_storm(0.0, 0.0)


def test_fault_plan_runs_record_a_timeline_and_fault_free_runs_do_not():
    faulted = repro.run(ScenarioSpec(
        protocol="primo", scale="tiny",
        faults=[fault("slow_partition", at_us=3_000.0, duration_us=2_000.0,
                      target=0, delay_us=100.0)]))
    assert faulted.timeline is not None
    assert faulted.timeline.total_count == faulted.committed
    assert faulted.degradation_depth is not None
    assert "degradation_depth" in faulted.summary()
    clean = repro.run(ScenarioSpec(protocol="primo", scale="tiny"))
    assert clean.timeline is None
    assert clean.degradation_depth is None
    assert clean.time_to_90pct_recovery_us is None
    assert "degradation_depth" not in clean.summary()
