"""Tests of the declarative scenario layer (`repro.scenario`).

Covers the three contractual properties of :class:`repro.ScenarioSpec`:

* **eager validation** — unknown protocol/durability/workload names and
  unknown override keys raise at *construction*, with did-you-mean hints;
* **JSON round trip** — ``from_json(to_json(spec)) == spec`` and the
  canonical JSON is stable under override-dict ordering;
* **single entry point** — ``repro.run(spec)`` is bit-identical to the
  historical ``run_config(...)`` for every registered (protocol × workload)
  pair at ``TINY_SCALE``.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro import ScenarioSpec
from repro.bench.runner import run_config
from repro.registry import PROTOCOL_REGISTRY, WORKLOAD_REGISTRY, UnknownNameError
from repro.scales import SCALES, TINY_SCALE
from repro.scenario import build, sweep


def fingerprint(result) -> tuple:
    """Everything that must match for two runs to count as bit-identical."""
    return (
        result.committed,
        result.aborted,
        result.metrics.crash_aborted,
        result.network_messages,
        tuple(result.metrics.latency.samples),
        tuple(sorted(result.abort_reasons.items())),
        tuple(sorted(result.per_txn_type.items())),
    )


# ---------------------------------------------------------------------------
# Eager validation
# ---------------------------------------------------------------------------

def test_typo_protocol_fails_at_construction_with_suggestion():
    with pytest.raises(UnknownNameError, match="did you mean 'primo'"):
        ScenarioSpec(protocol="prmo")
    with pytest.raises(UnknownNameError, match="did you mean 'sundial'"):
        ScenarioSpec(protocol="sundail")


def test_typo_workload_and_durability_fail_at_construction():
    with pytest.raises(UnknownNameError, match="did you mean 'tpcc'"):
        ScenarioSpec(protocol="primo", workload="tppc")
    with pytest.raises(UnknownNameError, match="did you mean 'wm'"):
        ScenarioSpec(protocol="primo", durability="wn")


def test_unknown_override_keys_fail_at_construction():
    with pytest.raises(ValueError, match="zipf_theta"):
        ScenarioSpec(protocol="primo", workload_overrides={"zipf_thta": 0.9})
    with pytest.raises(ValueError, match="n_partitions"):
        ScenarioSpec(protocol="primo", config_overrides={"n_partition": 2})
    # Workload overrides are validated against the *registered* config class:
    # a YCSB knob is rejected for TPC-C.
    with pytest.raises(ValueError, match="unknown workload override"):
        ScenarioSpec(protocol="primo", workload="tpcc",
                     workload_overrides={"zipf_theta": 0.5})


def test_unknown_scale_name_fails_with_suggestion():
    with pytest.raises(UnknownNameError, match="did you mean 'small'"):
        ScenarioSpec(protocol="primo", scale="samll")


def test_durability_accepted_as_config_override_but_not_twice():
    spec = ScenarioSpec(protocol="primo", config_overrides={"durability": "coco"})
    assert spec.durability == "coco"
    assert dict(spec.config_overrides) == {}
    with pytest.raises(ValueError, match="durability given twice"):
        ScenarioSpec(protocol="primo", durability="wm",
                     config_overrides={"durability": "coco"})


def test_resolved_durability_follows_the_registered_pairing():
    assert ScenarioSpec(protocol="primo").resolved_durability == "wm"
    assert ScenarioSpec(protocol="tapir").resolved_durability == "sync"
    assert ScenarioSpec(protocol="silo", durability="clv").resolved_durability == "clv"


def test_non_serializable_override_values_rejected():
    with pytest.raises(TypeError, match="non-JSON-serializable"):
        ScenarioSpec(protocol="primo", config_overrides={"seed": {1: 2}})


# ---------------------------------------------------------------------------
# JSON round trip and canonical identity
# ---------------------------------------------------------------------------

def test_json_round_trip_is_lossless():
    spec = ScenarioSpec(
        protocol="sundial",
        workload="tpcc",
        durability="clv",
        scale="tiny",
        config_overrides={"n_partitions": 2, "seed": 9},
        workload_overrides={"warehouses_per_partition": 3},
        durability_message_delay=(1, 500.0),
        network_extra_delay_to=(0, 125.0),
    )
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    # And through a plain json load, as a scenario file would be read.
    assert ScenarioSpec.from_json_dict(json.loads(spec.to_json())) == spec


def test_canonical_json_is_order_insensitive_and_scale_name_insensitive():
    a = ScenarioSpec(protocol="primo", scale="small",
                     workload_overrides={"zipf_theta": 0.4, "write_pct": 0.2})
    b = ScenarioSpec(protocol="primo", scale=SCALES["small"],
                     workload_overrides={"write_pct": 0.2, "zipf_theta": 0.4})
    assert a == b
    assert a.canonical_json() == b.canonical_json()
    assert hash(a) == hash(b)


def test_from_json_dict_rejects_unknown_fields_and_missing_protocol():
    with pytest.raises(ValueError, match="unknown scenario field"):
        ScenarioSpec.from_json_dict({"protocol": "primo", "workloud": "ycsb"})
    with pytest.raises(ValueError, match="missing the required 'protocol'"):
        ScenarioSpec.from_json_dict({"workload": "ycsb"})


# ---------------------------------------------------------------------------
# derive() and sweep()
# ---------------------------------------------------------------------------

def test_derive_routes_axes_to_the_right_layer():
    base = ScenarioSpec(protocol="primo", scale="tiny")
    varied = base.derive(protocol="sundial", n_partitions=2, zipf_theta=0.9)
    assert varied.protocol == "sundial"
    assert dict(varied.config_overrides)["n_partitions"] == 2
    assert dict(varied.workload_overrides)["zipf_theta"] == 0.9
    assert base.config_overrides == ()  # original untouched
    with pytest.raises(ValueError, match="unknown scenario axis"):
        base.derive(zipf_thta=0.9)


def test_derive_explicit_override_replacement_wins_over_the_base():
    """Regression: an explicit config_overrides/workload_overrides replacement
    combined with loose knobs must start from the replacement, not from the
    old spec's overrides."""
    base = ScenarioSpec(protocol="primo", scale="tiny",
                        config_overrides={"epoch_length_us": 500.0},
                        workload_overrides={"write_pct": 0.1})
    derived = base.derive(config_overrides={"seed": 1}, n_partitions=2)
    assert dict(derived.config_overrides) == {"seed": 1, "n_partitions": 2}
    derived = base.derive(workload_overrides={"write_pct": 1.0}, zipf_theta=0.9)
    assert dict(derived.workload_overrides) == {"write_pct": 1.0, "zipf_theta": 0.9}


def test_derive_resets_workload_overrides_when_workload_changes():
    base = ScenarioSpec(protocol="primo", scale="tiny",
                        workload_overrides={"zipf_theta": 0.8})
    switched = base.derive(workload="tpcc")
    assert switched.workload_overrides == ()
    sized = base.derive(workload="tpcc", items=100)
    assert dict(sized.workload_overrides) == {"items": 100}


def test_sweep_expands_the_cartesian_product():
    base = ScenarioSpec(protocol="primo", scale="tiny")
    grid = sweep(base, protocol=["primo", "sundial"], zipf_theta=[0.0, 0.6, 0.9])
    assert len(grid) == 6
    assert [s.protocol for s in grid[:3]] == ["primo", "primo", "primo"]
    assert sorted({dict(s.workload_overrides)["zipf_theta"] for s in grid}) == [0.0, 0.6, 0.9]
    with pytest.raises(ValueError, match="no values"):
        sweep(base, protocol=[])
    with pytest.raises(UnknownNameError):
        # The grid is lazy, so per-spec validation happens on materialization.
        list(sweep(base, protocol=["primo", "prmo"]))


def test_sweep_is_lazy_and_indexable_without_materializing(monkeypatch):
    """A million-spec grid yields its first element after exactly one derive."""
    base = ScenarioSpec(protocol="primo", scale="tiny")
    derives = []
    original = ScenarioSpec.derive

    def counting_derive(self, **changes):
        derives.append(changes)
        return original(self, **changes)

    monkeypatch.setattr(ScenarioSpec, "derive", counting_derive)
    grid = sweep(base, seed=range(1_000), zipf_theta=[0.0, 0.2, 0.4, 0.6])
    assert len(grid) == 4_000
    assert derives == []  # construction derives nothing
    first = next(iter(grid))
    assert dict(first.config_overrides)["seed"] == 0
    assert len(derives) == 1
    # Random access decodes the mixed-radix index instead of walking the grid.
    spec = grid[4 * 17 + 2]
    assert dict(spec.config_overrides)["seed"] == 17
    assert dict(spec.workload_overrides)["zipf_theta"] == 0.4
    assert len(derives) == 2
    assert grid[-1].config_overrides == grid[len(grid) - 1].config_overrides
    with pytest.raises(IndexError):
        grid[len(grid)]


def test_sweep_combinations_pairs_assignments_with_specs():
    base = ScenarioSpec(protocol="primo", scale="tiny")
    grid = sweep(base, protocol=["primo", "sundial"], zipf_theta=[0.0, 0.9])
    pairs = list(grid.combinations())
    assert [assignment for assignment, _ in pairs] == [
        {"protocol": "primo", "zipf_theta": 0.0},
        {"protocol": "primo", "zipf_theta": 0.9},
        {"protocol": "sundial", "zipf_theta": 0.0},
        {"protocol": "sundial", "zipf_theta": 0.9},
    ]
    for assignment, spec in pairs:
        assert spec.protocol == assignment["protocol"]


def test_known_axes_covers_spec_config_and_workload_fields():
    from repro.scenario import known_axes

    base = ScenarioSpec(protocol="primo", scale="tiny")
    axes = known_axes(base)
    assert "protocol" in axes and "seed" in axes and "zipf_theta" in axes
    assert "warehouses_per_partition" not in axes  # tpcc not in play
    widened = known_axes(base, extra_workloads=["tpcc", {"ycsb": 0.5, "tatp": 0.5}])
    assert "warehouses_per_partition" in widened
    assert "components" in widened  # the mixed workload's config field


# ---------------------------------------------------------------------------
# The facade is the single entry point
# ---------------------------------------------------------------------------

def test_build_applies_scale_defaults_and_failure_knobs():
    spec = ScenarioSpec(protocol="primo", scale="tiny",
                        network_extra_delay_to=(1, 200.0))
    cluster = build(spec)
    assert cluster.config.duration_us == TINY_SCALE.duration_us
    assert cluster.config.workers_per_partition == TINY_SCALE.workers_per_partition
    assert cluster.workload.config.keys_per_partition == TINY_SCALE.ycsb_keys_per_partition
    # The legacy knob compiles to a zero-time slow_partition fault event,
    # installed when the cluster starts (before the first simulation event).
    [event] = cluster.fault_plan.events
    assert (event.kind, event.target, dict(event.params)) == (
        "slow_partition", 1, {"delay_us": 200.0})
    cluster.start()
    assert cluster.network._extra_delay_to[1] == 200.0


#: The composite workload has no default components; every pair gets the
#: overrides its workload needs to construct.
_PAIR_OVERRIDES = {"mixed": {"components": [["ycsb", 0.7], ["tatp", 0.3]]}}


@pytest.mark.parametrize("protocol", sorted(PROTOCOL_REGISTRY.names()))
@pytest.mark.parametrize("workload", sorted(WORKLOAD_REGISTRY.names()))
def test_run_spec_matches_run_config_bit_identically(protocol, workload):
    """Acceptance: repro.run(ScenarioSpec(...)) == run_config(...) for every
    registered (protocol × workload) pair at TINY_SCALE."""
    workload_overrides = _PAIR_OVERRIDES.get(workload, {})
    spec = ScenarioSpec(protocol=protocol, workload=workload, scale=TINY_SCALE,
                        workload_overrides=workload_overrides,
                        config_overrides={"n_partitions": 2})
    via_facade = repro.run(spec)
    via_runner = run_config(protocol, TINY_SCALE, workload=workload,
                            workload_overrides=workload_overrides, n_partitions=2)
    assert fingerprint(via_facade) == fingerprint(via_runner)
    assert via_facade.durability == via_runner.durability == spec.resolved_durability


def test_scale_defaults_size_tatp_and_smallbank():
    """--scale now sizes the extension workloads too (regression: they used
    to silently keep their config defaults at every scale)."""
    for name, attr, config_field in [
        ("tatp", "tatp_subscribers_per_partition", "subscribers_per_partition"),
        ("smallbank", "smallbank_accounts_per_partition", "accounts_per_partition"),
    ]:
        sizes = set()
        for scale in [*SCALES.values(), TINY_SCALE]:
            workload = repro.scenarios.build_workload(scale, name)
            assert getattr(workload.config, config_field) == getattr(scale, attr)
            sizes.add(getattr(workload.config, config_field))
        assert len(sizes) > 1, f"{name} population does not scale"


def test_topology_axis_round_trips_and_stays_out_of_bare_specs():
    topology = {
        "regions": ["east", "west"],
        "latency_us": [[5.0, 80.0], [80.0, 5.0]],
        "partition_regions": ["east", "west"],
    }
    spec = ScenarioSpec(protocol="primo", scale="tiny", topology=topology)
    assert isinstance(spec.topology, repro.RegionTopology)
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    # Specs without a topology keep the key out of the JSON entirely, so the
    # orchestrator cache keys of every pre-topology spec are unchanged.
    bare = ScenarioSpec(protocol="primo", scale="tiny")
    assert bare.topology is None
    assert "topology" not in bare.to_json_dict()
    assert spec.canonical_json() != bare.canonical_json()


def test_topology_spec_builds_a_geo_cluster():
    spec = ScenarioSpec(
        protocol="primo", scale="tiny",
        topology={
            "regions": ["east", "west"],
            "latency_us": [[5.0, 120.0], [120.0, 5.0]],
            "partition_regions": ["east", "west"],
        })
    cluster = repro.build(spec)
    # Cross-region leaders pay the matrix entry; the scalar default is gone.
    assert cluster.network.latency(0, 1) == 120.0
