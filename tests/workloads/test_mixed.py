"""Tests of the composite MixedWorkload and the scenario-level mix sugar."""

from __future__ import annotations

import pytest

import repro
from repro import MixedConfig, MixedWorkload, ScenarioSpec
from repro.bench.orchestrator import Cell, run_cells
from repro.registry import UnknownNameError
from repro.scales import SCALES, TINY_SCALE
from repro.workloads.mixed import normalize_components

from tests.api.test_scenario import fingerprint

MIX = {"ycsb": 0.7, "tatp": 0.3}


def mixed_spec(**changes) -> ScenarioSpec:
    base = ScenarioSpec(protocol="primo", workload=MIX, scale="tiny",
                        config_overrides={"n_partitions": 2})
    return base.derive(**changes) if changes else base


# ---------------------------------------------------------------------------
# Spec-level sugar and eager validation
# ---------------------------------------------------------------------------

def test_mapping_workload_is_sugar_for_mixed_components():
    via_mapping = mixed_spec()
    via_components = ScenarioSpec(
        protocol="primo", workload="mixed", scale="tiny",
        workload_overrides={"components": [["ycsb", 0.7], ["tatp", 0.3]]},
        config_overrides={"n_partitions": 2})
    assert via_mapping.workload == "mixed"
    assert via_mapping == via_components
    assert via_mapping.canonical_json() == via_components.canonical_json()


def test_component_order_does_not_change_the_scenario_identity():
    a = ScenarioSpec(protocol="primo", workload={"ycsb": 0.7, "tatp": 0.3})
    b = ScenarioSpec(protocol="primo", workload={"tatp": 0.3, "ycsb": 0.7})
    assert a == b and a.canonical_json() == b.canonical_json()


def test_mix_validation_is_eager_with_suggestions():
    with pytest.raises(UnknownNameError, match="did you mean 'tatp'"):
        ScenarioSpec(protocol="primo", workload={"ycsb": 0.5, "tapt": 0.5})
    with pytest.raises(ValueError, match="positive weight"):
        ScenarioSpec(protocol="primo", workload={"ycsb": 0.0})
    with pytest.raises(ValueError, match="cannot nest"):
        ScenarioSpec(protocol="primo", workload={"mixed": 1.0})
    with pytest.raises(ValueError, match="at least one component"):
        ScenarioSpec(protocol="primo", workload="mixed")
    with pytest.raises(ValueError, match="given twice"):
        ScenarioSpec(protocol="primo", workload={"ycsb": 1.0},
                     workload_overrides={"components": [["tatp", 1.0]]})


def test_component_overrides_are_validated_against_each_component():
    with pytest.raises(ValueError, match="did you mean 'zipf_theta'"):
        ScenarioSpec(
            protocol="primo", workload="mixed",
            workload_overrides={"components": [["ycsb", 1.0, [["zipf_thta", 0.9]]]]})
    spec = ScenarioSpec(
        protocol="primo", workload="mixed", scale="tiny",
        workload_overrides={"components": [["ycsb", 1.0, [["zipf_theta", 0.9]]]]})
    cluster = repro.build(spec)
    [(name, weight, sub)] = cluster.workload.components
    assert (name, weight) == ("ycsb", 1.0)
    assert sub.config.zipf_theta == 0.9


def test_duplicate_components_are_rejected():
    with pytest.raises(ValueError, match="listed twice"):
        normalize_components([["ycsb", 0.5], ["ycsb", 0.5]])


# ---------------------------------------------------------------------------
# Scale sizing and construction
# ---------------------------------------------------------------------------

def test_component_populations_track_the_scale():
    for scale in [TINY_SCALE, SCALES["small"]]:
        workload = repro.scenarios.build_workload(scale, "mixed",
                                                  components=[["ycsb", 1.0],
                                                              ["tatp", 1.0]])
        by_name = {name: sub for name, _, sub in workload.components}
        assert by_name["ycsb"].config.keys_per_partition == scale.ycsb_keys_per_partition
        assert (by_name["tatp"].config.subscribers_per_partition
                == scale.tatp_subscribers_per_partition)


def test_direct_construction_defaults_to_small_scale():
    workload = MixedWorkload(MixedConfig(components=[["ycsb", 1.0]]))
    [(_, _, sub)] = workload.components
    assert sub.config.keys_per_partition == SCALES["small"].ycsb_keys_per_partition
    assert workload.name == "mixed(ycsb:1)"


# ---------------------------------------------------------------------------
# Deterministic draws
# ---------------------------------------------------------------------------

def test_mixed_run_commits_both_components_roughly_by_weight():
    result = repro.run(mixed_spec())
    ycsb = result.per_txn_type.get("ycsb", 0)
    tatp = sum(count for name, count in result.per_txn_type.items()
               if name.startswith("tatp"))
    assert ycsb > 0 and tatp > 0
    share = ycsb / (ycsb + tatp)
    assert 0.5 < share < 0.9  # ~0.7 expected, loose bound for a tiny run


def test_mixed_draws_are_deterministic_within_a_process():
    assert fingerprint(repro.run(mixed_spec())) == fingerprint(repro.run(mixed_spec()))


def test_mixed_draws_are_deterministic_across_processes():
    """Acceptance: a pool worker (fresh interpreter state on spawn platforms,
    forked here) reproduces the inline mixed-workload run bit-identically."""
    spec = mixed_spec()
    cells = [Cell(figure="mix", key="inline", spec=spec)]
    inline = run_cells(cells, jobs=1, cache=None).results[cells[0]]
    pooled = run_cells(cells, jobs=2, cache=None).results[cells[0]]
    assert fingerprint(pooled) == fingerprint(inline)


def test_adding_a_component_does_not_perturb_other_streams_seed_derivation():
    """Component sub-streams derive from each component's own name, so the
    70/30 and 50/50 mixes draw *different* schedules (selector changes) but
    both remain reproducible."""
    seventy = repro.run(mixed_spec())
    fifty = repro.run(mixed_spec(workload={"ycsb": 0.5, "tatp": 0.5}))
    assert fingerprint(seventy) != fingerprint(fifty)
    again = repro.run(mixed_spec(workload={"ycsb": 0.5, "tatp": 0.5}))
    assert fingerprint(fifty) == fingerprint(again)
