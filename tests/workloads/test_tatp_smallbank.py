"""Tests for the TATP and Smallbank extension workloads."""

import pytest

from repro.workloads.smallbank import SmallbankConfig, SmallbankWorkload
from repro.workloads.tatp import TATPConfig, TATPWorkload

from tests.conftest import tiny_config
from repro.cluster.cluster import Cluster


def test_tatp_config_validation():
    with pytest.raises(ValueError):
        TATPConfig(subscribers_per_partition=1).validate()
    with pytest.raises(ValueError):
        TATPConfig(get_subscriber_pct=90.0, get_access_pct=90.0).validate()
    TATPConfig().validate()


def test_tatp_loading_and_mix():
    workload = TATPWorkload(TATPConfig(subscribers_per_partition=100))
    cluster = Cluster(tiny_config("primo", durability="none"), workload)
    subscriber = cluster.servers[0].store.table("subscriber")
    access_info = cluster.servers[0].store.table("access_info")
    assert len(subscriber) == 100
    assert len(access_info) == 400
    source = workload.make_source(cluster, 0, 0)
    names = [source.next().name for _ in range(300)]
    read_share = sum(1 for n in names if n.startswith("tatp_get")) / len(names)
    assert read_share > 0.5  # TATP is read-heavy


def test_tatp_runs_under_primo_with_low_aborts():
    workload = TATPWorkload(TATPConfig(subscribers_per_partition=500))
    cluster = Cluster(tiny_config("primo"), workload)
    result = cluster.run()
    assert result.committed > 100
    assert result.abort_rate < 0.2  # read-heavy, low contention


def test_smallbank_config_validation():
    with pytest.raises(ValueError):
        SmallbankConfig(accounts_per_partition=10, hot_accounts=100).validate()
    with pytest.raises(ValueError):
        SmallbankConfig(balance_pct=90.0, deposit_pct=90.0).validate()
    SmallbankConfig().validate()


def test_smallbank_loading():
    workload = SmallbankWorkload(SmallbankConfig(accounts_per_partition=200, hot_accounts=10))
    cluster = Cluster(tiny_config("primo", durability="none"), workload)
    assert len(cluster.servers[0].store.table("checking")) == 200
    assert len(cluster.servers[1].store.table("savings")) == 200


def test_smallbank_amalgamate_and_send_payment_preserve_money():
    """The Smallbank mix only moves money around except for explicit deposits
    and write-checks; running just transfers must conserve the total."""
    config = SmallbankConfig(
        accounts_per_partition=300, hot_accounts=10,
        balance_pct=20.0, deposit_pct=0.0, transact_pct=0.0,
        amalgamate_pct=40.0, write_check_pct=0.0, send_payment_pct=40.0,
    )
    workload = SmallbankWorkload(config)
    cluster = Cluster(tiny_config("primo"), workload)
    result = cluster.run()
    assert result.committed > 50
    total = 0.0
    for server in cluster.servers.values():
        for table_name in ("checking", "savings"):
            for record in server.store.table(table_name).records():
                total += record.value["balance"]
    expected = 2 * 1_000.0 * config.accounts_per_partition * cluster.config.n_partitions
    assert total == pytest.approx(expected)


def test_smallbank_user_aborts_are_not_retried():
    """TransactSavings/SendPayment call ctx.abort on insufficient funds."""
    config = SmallbankConfig(
        accounts_per_partition=100, hot_accounts=10,
        balance_pct=0.0, deposit_pct=0.0, transact_pct=100.0,
        amalgamate_pct=0.0, write_check_pct=0.0, send_payment_pct=0.0,
    )
    workload = SmallbankWorkload(config)
    cluster = Cluster(tiny_config("primo"), workload)
    result = cluster.run()
    # TransactSavings adds a positive amount, so none should user-abort here;
    # the run simply completes with commits.
    assert result.committed > 0
