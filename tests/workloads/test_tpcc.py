"""Tests for the TPC-C workload: loading, transaction logic and invariants."""

import pytest

from repro.workloads.tpcc import DISTRICTS_PER_WAREHOUSE, TPCCConfig, TPCCWorkload

from tests.conftest import run_txn, tiny_config
from repro.cluster.cluster import Cluster


def make_cluster(**config_overrides):
    params = dict(warehouses_per_partition=2, items=50, customers_per_district=10,
                  initial_orders_per_district=5)
    params.update(config_overrides)
    workload = TPCCWorkload(TPCCConfig(**params))
    cluster = Cluster(tiny_config("primo", durability="none"), workload)
    return cluster, workload


def test_config_validation():
    with pytest.raises(ValueError):
        TPCCConfig(warehouses_per_partition=0).validate()
    with pytest.raises(ValueError):
        TPCCConfig(new_order_pct=90.0, payment_pct=90.0).validate()
    TPCCConfig().validate()


def test_loading_creates_the_expected_row_counts():
    cluster, workload = make_cluster()
    for partition_id, server in cluster.servers.items():
        store = server.store
        assert len(store.table("warehouse")) == 2
        assert len(store.table("district")) == 2 * DISTRICTS_PER_WAREHOUSE
        assert len(store.table("customer")) == 2 * DISTRICTS_PER_WAREHOUSE * 10
        assert len(store.table("stock")) == 2 * 50
        assert len(store.table("item")) == 50  # replicated read-only table
        assert len(store.table("orders")) == 2 * DISTRICTS_PER_WAREHOUSE * 5


def test_warehouses_are_partitioned_contiguously():
    cluster, workload = make_cluster()
    assert list(workload.warehouses_of_partition(0)) == [1, 2]
    assert list(workload.warehouses_of_partition(1)) == [3, 4]
    assert workload.partition_of_warehouse(cluster, 1) == 0
    assert workload.partition_of_warehouse(cluster, 4) == 1
    assert workload.total_warehouses(cluster) == 4


def test_customer_last_name_index_is_populated():
    cluster, _ = make_cluster()
    customer = cluster.servers[0].store.table("customer")
    some_customer = customer.get((1, 1, 1))
    matches = customer.index_lookup(
        "by_name", (1, 1, some_customer.value["c_last"])
    )
    assert (1, 1, 1) in matches


def test_new_order_advances_district_and_inserts_rows():
    cluster, workload = make_cluster()
    source = workload.make_source(cluster, 0, 0)
    spec = source.next()
    while spec.name != "new_order":
        spec = source.next()
    district_before = {
        key: record.value["d_next_o_id"]
        for key, record in ((k, cluster.servers[0].store.table("district").get(k))
                            for k in cluster.servers[0].store.table("district").keys())
    }
    orders_before = len(cluster.servers[0].store.table("orders"))
    committed, txn = run_txn(cluster, 0, spec.logic, name="new_order")
    assert committed is True
    orders_after = len(cluster.servers[0].store.table("orders"))
    assert orders_after == orders_before + 1
    # Exactly one district's next order id advanced by one.
    changed = [
        key for key, record in ((k, cluster.servers[0].store.table("district").get(k))
                                for k in cluster.servers[0].store.table("district").keys())
        if record.value["d_next_o_id"] != district_before[key]
    ]
    assert len(changed) == 1


def test_payment_updates_balances_and_ytd():
    cluster, workload = make_cluster()
    source = workload.make_source(cluster, 0, 0)
    spec = source.next()
    while spec.name != "payment":
        spec = source.next()
    warehouse_ytd_before = sum(
        r.value["w_ytd"] for r in cluster.servers[0].store.table("warehouse").records()
    )
    history_before = sum(
        len(server.store.table("history")) for server in cluster.servers.values()
    )
    committed, _ = run_txn(cluster, 0, spec.logic, name="payment")
    assert committed is True
    warehouse_ytd_after = sum(
        r.value["w_ytd"] for r in cluster.servers[0].store.table("warehouse").records()
    )
    history_after = sum(
        len(server.store.table("history")) for server in cluster.servers.values()
    )
    assert warehouse_ytd_after > warehouse_ytd_before
    assert history_after == history_before + 1


def test_order_status_and_stock_level_are_read_only():
    cluster, workload = make_cluster()
    source = workload.make_source(cluster, 0, 0)
    seen = set()
    for _ in range(500):
        spec = source.next()
        if spec.name in ("order_status", "stock_level"):
            seen.add(spec.name)
            assert spec.read_only
    assert seen == {"order_status", "stock_level"}


def test_delivery_clears_pending_new_orders():
    cluster, workload = make_cluster()
    source = workload.make_source(cluster, 0, 0)
    spec = source.next()
    while spec.name != "delivery":
        spec = source.next()
    pending_before = len(cluster.servers[0].store.table("new_order"))
    committed, _ = run_txn(cluster, 0, spec.logic, name="delivery")
    assert committed is True
    pending_after = len(cluster.servers[0].store.table("new_order"))
    assert pending_after < pending_before


def test_transaction_mix_roughly_matches_configuration():
    cluster, workload = make_cluster()
    source = workload.make_source(cluster, 0, 0)
    names = [source.next().name for _ in range(1_000)]
    new_order_share = names.count("new_order") / len(names)
    payment_share = names.count("payment") / len(names)
    assert 0.35 < new_order_share < 0.55
    assert 0.33 < payment_share < 0.53
    assert names.count("stock_level") > 0 and names.count("delivery") > 0


def test_full_tpcc_run_commits_transactions_under_primo():
    workload = TPCCWorkload(TPCCConfig(warehouses_per_partition=2, items=50,
                                       customers_per_district=10))
    cluster = Cluster(tiny_config("primo"), workload)
    result = cluster.run()
    assert result.committed > 100
    assert result.abort_rate < 0.9
    assert set(result.per_txn_type) <= {"new_order", "payment", "order_status",
                                        "delivery", "stock_level"}
