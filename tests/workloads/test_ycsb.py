"""Tests for the YCSB workload generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

from tests.conftest import tiny_config
from repro.cluster.cluster import Cluster


def make_cluster(**ycsb_overrides):
    params = dict(keys_per_partition=1_000)
    params.update(ycsb_overrides)
    workload = YCSBWorkload(YCSBConfig(**params))
    cluster = Cluster(tiny_config("primo", durability="none"), workload)
    return cluster, workload


def test_config_validation():
    with pytest.raises(ValueError):
        YCSBConfig(keys_per_partition=5, ops_per_txn=10).validate()
    with pytest.raises(ValueError):
        YCSBConfig(write_pct=1.5).validate()
    with pytest.raises(ValueError):
        YCSBConfig(remote_ops=20, ops_per_txn=10).validate()
    YCSBConfig().validate()


def test_load_populates_every_partition():
    cluster, workload = make_cluster()
    for server in cluster.servers.values():
        table = server.store.table("usertable")
        assert len(table) == 1_000
        assert table.get(0).value["field0"] == 0


def test_source_is_deterministic_per_seed_and_stream():
    cluster, workload = make_cluster()
    first = workload.make_source(cluster, 0, 0)
    second = workload.make_source(cluster, 0, 0)
    for _ in range(10):
        spec_a, spec_b = first.next(), second.next()
        assert spec_a.metadata == spec_b.metadata


def test_distributed_fraction_roughly_matches_configuration():
    cluster, workload = make_cluster(distributed_pct=0.3)
    source = workload.make_source(cluster, 0, 0)
    distributed = sum(1 for _ in range(500) if source.next().metadata["distributed"])
    assert 0.2 < distributed / 500 < 0.4


def test_zero_distributed_fraction_generates_only_local_transactions():
    cluster, workload = make_cluster(distributed_pct=0.0)
    source = workload.make_source(cluster, 1, 0)
    assert not any(source.next().metadata["distributed"] for _ in range(200))


def test_read_only_transactions_possible_with_zero_writes():
    cluster, workload = make_cluster(write_pct=0.0)
    source = workload.make_source(cluster, 0, 0)
    assert all(source.next().read_only for _ in range(50))


def test_transaction_logic_reads_and_writes_the_usertable():
    from tests.conftest import run_txn

    cluster, workload = make_cluster(distributed_pct=1.0, remote_ops=2)
    source = workload.make_source(cluster, 0, 0)
    spec = source.next()
    committed, txn = run_txn(cluster, 0, spec.logic, name=spec.name)
    assert committed is True
    assert len(txn.read_set) >= workload.config.ops_per_txn / 2
    assert txn.is_distributed


@settings(max_examples=20, deadline=None)
@given(
    write_pct=st.sampled_from([0.0, 0.3, 0.7, 1.0]),
    blind_pct=st.sampled_from([0.0, 0.5, 1.0]),
)
def test_operation_mix_respects_probabilities(write_pct, blind_pct):
    """Property: with write_pct=0 there are no writes; with 1.0 every op writes."""
    workload = YCSBWorkload(
        YCSBConfig(keys_per_partition=1_000, write_pct=write_pct, blind_write_pct=blind_pct)
    )
    cluster = Cluster(tiny_config("primo", durability="none"), workload)
    source = workload.make_source(cluster, 0, 0)
    specs = [source.next() for _ in range(20)]
    if write_pct == 0.0:
        assert all(spec.read_only for spec in specs)
    if write_pct == 1.0:
        assert not any(spec.read_only for spec in specs)
