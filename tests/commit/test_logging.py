"""Tests for the write-ahead log manager and its replication-backed flushes."""


from repro.commit.logging import LogManager, LogRecordKind
from repro.replication.raft import ReplicationGroup
from repro.sim.engine import Environment
from repro.sim.network import Network
from repro.txn.transaction import Transaction, TxnId, WriteEntry


def make_log(n_replicas=3):
    env = Environment()
    network = Network(env, one_way_latency_us=50.0)
    replication = ReplicationGroup(env, network, 0, n_replicas, 100, storage_persist_us=20.0)
    return env, LogManager(env, 0, replication, log_write_us=10.0)


def flush(env, log):
    proc = env.process(log.flush())
    env.run(until=env.now + 10_000)
    return proc.value


def test_appends_get_increasing_lsns():
    env, log = make_log()
    first = log.append(LogRecordKind.WRITESET, txn_ts=1.0)
    second = log.append(LogRecordKind.WATERMARK)
    assert second.lsn == first.lsn + 1
    assert log.last_lsn == second.lsn
    assert log.unpersisted_count == 2


def test_flush_makes_prefix_durable_and_costs_time():
    env, log = make_log()
    log.append(LogRecordKind.WRITESET, txn_ts=1.0)
    log.append(LogRecordKind.WRITESET, txn_ts=2.0)
    start = env.now
    durable = flush(env, log)
    assert durable == 2
    assert log.durable_lsn == 2
    assert log.unpersisted_count == 0
    assert env.now > start  # log write + replication round trip took time
    assert log.is_durable(1) and log.is_durable(2)
    assert not log.is_durable(3)


def test_flush_with_empty_buffer_is_a_noop():
    env, log = make_log()
    assert flush(env, log) == 0
    assert log.stats["flushes"] == 0


def test_unpersisted_min_ts_only_counts_writeset_records():
    env, log = make_log()
    log.append(LogRecordKind.WATERMARK, payload={"watermark": 1.0})
    assert log.unpersisted_min_ts() is None
    log.append(LogRecordKind.WRITESET, txn_ts=9.0)
    log.append(LogRecordKind.WRITESET, txn_ts=4.0)
    assert log.unpersisted_min_ts() == 4.0
    flush(env, log)
    assert log.unpersisted_min_ts() is None


def test_concurrent_flushes_group_together():
    env, log = make_log()
    log.append(LogRecordKind.WRITESET, txn_ts=1.0)
    first = env.process(log.flush())
    log.append(LogRecordKind.WRITESET, txn_ts=2.0)
    second = env.process(log.flush())
    env.run(until=env.now + 10_000)
    assert first.triggered and second.triggered
    assert log.durable_lsn == 2
    assert log.unpersisted_count == 0


def test_append_writeset_records_undo_images():
    env, log = make_log()
    txn = Transaction(tid=TxnId(1, 0), coordinator=0)
    txn.ts = 7.0
    entries = [WriteEntry(partition=0, table="kv", key=1, updates={"v": 2})]
    record = log.append_writeset(txn, entries, before_images={("kv", 1): {"v": 1}})
    assert record.kind is LogRecordKind.WRITESET
    assert record.txn_ts == 7.0
    assert record.payload["before_images"][("kv", 1)] == {"v": 1}
    assert record.payload["writes"][0][:2] == ("kv", 1)


def test_writeset_records_at_or_after_filters_by_ts():
    env, log = make_log()
    for ts in (1.0, 5.0, 9.0):
        log.append(LogRecordKind.WRITESET, txn_ts=ts)
    log.append(LogRecordKind.WATERMARK, payload={"watermark": 9.0})
    selected = log.writeset_records_at_or_after(5.0)
    assert [r.txn_ts for r in selected] == [5.0, 9.0]


def test_latest_persisted_watermark_requires_replication():
    env, log = make_log()
    log.append(LogRecordKind.WATERMARK, payload={"watermark": 3.0})
    assert log.latest_persisted_watermark() == 0.0  # not yet replicated
    flush(env, log)
    log.append(LogRecordKind.WATERMARK, payload={"watermark": 8.0})
    assert log.latest_persisted_watermark() == 3.0
    flush(env, log)
    assert log.latest_persisted_watermark() == 8.0


def test_single_replica_group_still_persists():
    env, log = make_log(n_replicas=1)
    log.append(LogRecordKind.WRITESET, txn_ts=1.0)
    assert flush(env, log) == 1
    assert log.durable_lsn == 1
