"""Tests for the durability schemes: none, sync, COCO epochs and CLV."""

import pytest

from repro.commit import create_durability_scheme
from repro.commit.base import CRASH_ABORTED, DURABLE, DurabilityScheme
from repro.commit.clv import ControlledLockViolation
from repro.commit.coco import CocoGroupCommit
from repro.core.watermark import WatermarkGroupCommit

from tests.conftest import run_tiny, tiny_config, tiny_ycsb
from repro.cluster.cluster import Cluster


def test_factory_creates_every_scheme():
    cluster = Cluster(tiny_config("primo", durability="none"), tiny_ycsb())
    assert isinstance(create_durability_scheme("none", cluster), DurabilityScheme)
    assert isinstance(create_durability_scheme("coco", cluster), CocoGroupCommit)
    assert isinstance(create_durability_scheme("clv", cluster), ControlledLockViolation)
    assert isinstance(create_durability_scheme("wm", cluster), WatermarkGroupCommit)
    with pytest.raises(ValueError):
        create_durability_scheme("bogus", cluster)


def test_none_scheme_acknowledges_immediately():
    cluster = Cluster(tiny_config("primo", durability="none"), tiny_ycsb())
    server = cluster.servers[0]
    event = cluster.durability.transaction_executed(server, server.new_transaction())
    assert event.triggered and event.value == DURABLE


def test_sync_scheme_flushes_before_acknowledging():
    cluster, result = run_tiny("sundial", durability="sync")
    assert result.committed > 0
    # Synchronous flushes mean sub-millisecond completion latency.
    assert 0.0 < result.mean_latency_ms < 5.0
    for server in cluster.servers.values():
        assert server.log.stats["flushes"] > 0


def test_coco_commits_epochs_and_acknowledges_transactions():
    cluster, result = run_tiny("sundial", durability="coco")
    scheme: CocoGroupCommit = cluster.durability
    assert scheme.stats["epochs_committed"] > 0
    assert scheme.stats["epochs_aborted"] == 0
    assert result.committed > 0
    assert cluster.metrics.latency.count > 0
    # Latency is dominated by the epoch length.
    assert result.mean_latency_ms >= cluster.config.epoch_length_us / 1000.0 * 0.3


def test_coco_epoch_counter_advances():
    cluster, _ = run_tiny("sundial", durability="coco")
    scheme: CocoGroupCommit = cluster.durability
    assert scheme.epoch >= scheme.stats["epochs_committed"] >= 2


def test_coco_aborts_epoch_when_a_partition_is_crashed():
    cluster = Cluster(tiny_config("sundial", durability="coco"), tiny_ycsb())
    scheme: CocoGroupCommit = cluster.durability
    server = cluster.servers[0]
    txn = server.new_transaction("t")
    event = scheme.transaction_executed(server, txn)
    scheme.notify_crash(1)
    scheme._abort_epoch(scheme.epoch)
    assert event.triggered and event.value == CRASH_ABORTED


def test_clv_charges_tracking_overhead_per_access():
    cluster = Cluster(tiny_config("primo", durability="clv"), tiny_ycsb())
    scheme: ControlledLockViolation = cluster.durability
    server = cluster.servers[0]
    txn = server.new_transaction("t")
    from repro.txn.transaction import ReadEntry, WriteEntry
    txn.add_read(ReadEntry(partition=0, table="kv", key=1, value={}))
    txn.add_write(WriteEntry(partition=0, table="kv", key=1, updates={}))
    expected = 2 * cluster.config.clv_tracking_overhead_us
    assert scheme.execution_overhead_us(txn) == pytest.approx(expected)


def test_clv_acknowledges_after_background_flush():
    cluster, result = run_tiny("sundial", durability="clv")
    scheme: ControlledLockViolation = cluster.durability
    assert result.committed > 0
    assert scheme.stats["acks"] > 0
    # CLV latency is well below the group-commit interval.
    assert result.mean_latency_ms < cluster.config.epoch_length_us / 1000.0


def test_latency_ordering_of_schemes_matches_the_paper():
    """sync/CLV latency << COCO/WM latency (group commit trades latency)."""
    _, clv = run_tiny("sundial", durability="clv")
    _, coco = run_tiny("sundial", durability="coco")
    assert clv.mean_latency_ms < coco.mean_latency_ms
