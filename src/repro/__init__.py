"""repro — a reproduction of Primo (ICDE 2023).

Primo is a distributed transaction protocol that eliminates two-phase commit
by combining write-conflict-free concurrency control (exclusive read locks for
distributed transactions + TicToc for local ones) with a watermark-based
asynchronous distributed group commit.  This package implements Primo, the six
baseline protocols the paper compares against, the storage / logging /
replication substrates they run on, the YCSB and TPC-C workloads, and a
benchmark harness that regenerates every figure of the paper's evaluation on a
discrete-event simulator.

Quickstart — the declarative scenario API is the front door::

    import repro

    spec = repro.ScenarioSpec(protocol="primo", workload="ycsb", scale="small")
    result = repro.run(spec)
    print(f"{result.throughput_ktps:.0f} kTPS at {result.mean_latency_ms:.1f} ms")

Scenarios are JSON-round-trippable and validate eagerly (typo'd names and
override keys raise at construction with a did-you-mean suggestion);
``repro.scenarios.sweep`` expands one spec into a grid.  New protocols,
durability schemes, workloads and figures plug in through
:mod:`repro.registry` without touching any core module.  The lower-level
objects (``Cluster``, ``SystemConfig``, workload classes) remain available
for code that wants to assemble a cluster by hand.
"""

# 1.4.0: million-key scale tier (columnar storage backend, fixed-memory
# latency sketch past SKETCH_THRESHOLD samples, xlarge/web tiers).  All
# fixed-seed metrics at tiny→paper scales are bit-identical, but result
# documents can now carry a ``latency_sketch`` instead of raw samples, so
# the version bump (with cache schema v5) retires old orchestrator caches.
# 1.3.0: transaction-pipeline perf overhaul (batched wakeups, zero-alloc
# send path, cheap stats).  Fixed-seed metrics are bit-identical, but the
# serialized latency-sample *order* inside cached RunResults can differ from
# pre-1.3 entries, so the version bump retires old orchestrator caches.
__version__ = "1.4.0"

from .arrivals import ArrivalSpec, arrival
from .cluster import Cluster, RunResult, Server, SystemConfig
from .cluster.config import DURABILITY_SCHEMES, PROTOCOLS
from .core import (
    AnalysisParameters,
    ConflictRateModel,
    PrimoProtocol,
    WatermarkGroupCommit,
)
from .faults import FaultEvent, FaultPlan, fault, standard_storm
from .registry import (
    ARRIVAL_REGISTRY,
    DURABILITY_REGISTRY,
    FAULT_REGISTRY,
    FIGURE_REGISTRY,
    PROTOCOL_REGISTRY,
    SCALE_REGISTRY,
    WORKLOAD_REGISTRY,
    register_arrival,
    register_durability,
    register_fault,
    register_figure,
    register_protocol,
    register_scale,
    register_workload,
)
from .scales import SCALES, TINY_SCALE, BenchScale
from .scenario import ScenarioSpec, build, run, sweep
from .sim.topology import RegionTopology
from . import scenario as scenarios
from .workloads import (
    MixedConfig,
    MixedWorkload,
    SmallbankConfig,
    SmallbankWorkload,
    TATPConfig,
    TATPWorkload,
    TPCCConfig,
    TPCCWorkload,
    YCSBConfig,
    YCSBWorkload,
)

#: Workload names accepted by ``ScenarioSpec.workload`` (live registry view).
WORKLOADS = WORKLOAD_REGISTRY.names_view()

__all__ = [
    "ARRIVAL_REGISTRY",
    "AnalysisParameters",
    "ArrivalSpec",
    "BenchScale",
    "Cluster",
    "ConflictRateModel",
    "DURABILITY_REGISTRY",
    "DURABILITY_SCHEMES",
    "FAULT_REGISTRY",
    "FIGURE_REGISTRY",
    "FaultEvent",
    "FaultPlan",
    "MixedConfig",
    "MixedWorkload",
    "PROTOCOL_REGISTRY",
    "PROTOCOLS",
    "PrimoProtocol",
    "RegionTopology",
    "RunResult",
    "SCALE_REGISTRY",
    "SCALES",
    "ScenarioSpec",
    "Server",
    "SmallbankConfig",
    "SmallbankWorkload",
    "SystemConfig",
    "TATPConfig",
    "TATPWorkload",
    "TINY_SCALE",
    "TPCCConfig",
    "TPCCWorkload",
    "WORKLOAD_REGISTRY",
    "WORKLOADS",
    "WatermarkGroupCommit",
    "YCSBConfig",
    "YCSBWorkload",
    "__version__",
    "arrival",
    "build",
    "fault",
    "register_arrival",
    "register_durability",
    "register_fault",
    "register_figure",
    "register_protocol",
    "register_scale",
    "register_workload",
    "run",
    "scenarios",
    "standard_storm",
    "sweep",
]
