"""repro — a reproduction of Primo (ICDE 2023).

Primo is a distributed transaction protocol that eliminates two-phase commit
by combining write-conflict-free concurrency control (exclusive read locks for
distributed transactions + TicToc for local ones) with a watermark-based
asynchronous distributed group commit.  This package implements Primo, the six
baseline protocols the paper compares against, the storage / logging /
replication substrates they run on, the YCSB and TPC-C workloads, and a
benchmark harness that regenerates every figure of the paper's evaluation on a
discrete-event simulator.

Quickstart::

    from repro import Cluster, SystemConfig
    from repro.workloads import YCSBWorkload

    config = SystemConfig.for_protocol("primo")
    result = Cluster(config, YCSBWorkload()).run()
    print(f"{result.throughput_ktps:.0f} kTPS at {result.mean_latency_ms:.1f} ms")
"""

from .cluster import Cluster, RunResult, Server, SystemConfig
from .cluster.config import DURABILITY_SCHEMES, PROTOCOLS
from .core import (
    AnalysisParameters,
    ConflictRateModel,
    PrimoProtocol,
    WatermarkGroupCommit,
)
from .workloads import (
    SmallbankConfig,
    SmallbankWorkload,
    TATPConfig,
    TATPWorkload,
    TPCCConfig,
    TPCCWorkload,
    YCSBConfig,
    YCSBWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisParameters",
    "Cluster",
    "ConflictRateModel",
    "DURABILITY_SCHEMES",
    "PROTOCOLS",
    "PrimoProtocol",
    "RunResult",
    "Server",
    "SmallbankConfig",
    "SmallbankWorkload",
    "SystemConfig",
    "TATPConfig",
    "TATPWorkload",
    "TPCCConfig",
    "TPCCWorkload",
    "WatermarkGroupCommit",
    "YCSBConfig",
    "YCSBWorkload",
    "__version__",
]
