"""Declarative fault plans: composable failure injection for any scenario.

A :class:`FaultPlan` is an ordered, frozen, JSON-round-trippable list of
:class:`FaultEvent`\\ s.  Each event names a registered *fault type* (crash a
partition leader, delay a scheme's control messages, slow or partition the
network, skew a partition's commit clock, ...), an ``at_us`` injection time,
an optional ``duration_us`` window after which the fault is reverted, a
*target selector* (one partition, several, or ``"all"``), and the fault
type's parameters.  Plans ride on :class:`repro.ScenarioSpec` (``faults=``),
so the same declarative document drives ``repro.run``, the cached
orchestrator and ``python -m repro.bench --scenario file.json``::

    spec = repro.ScenarioSpec(
        protocol="primo", scale="small",
        faults=[
            {"kind": "message_delay", "at_us": 0, "target": 1, "delay_us": 5000},
            {"kind": "crash", "at_us": 40_000, "target": 2},
        ],
    )

Fault types are registered through :func:`repro.registry.register_fault`,
so an extension can add one from a single self-registering file — exactly
like protocols, durability schemes and workloads::

    @register_fault("packet_burst", params=("delay_us",))
    class PacketBurstFault:
        @staticmethod
        def apply(cluster, partition_id, params): ...
        @staticmethod
        def revert(cluster, partition_id, params): ...

Determinism
-----------

The :class:`FaultScheduler` applies a plan inside the engine's event order:
events at ``at_us == 0`` are applied synchronously during ``Cluster.start()``
(before any simulation event runs — exactly where the legacy scalar knobs
used to be applied), and the remaining timeline is driven by a single
simulation process that draws one timeout per distinct action time.  The
legacy knobs (``ScenarioSpec.durability_message_delay`` /
``network_extra_delay_to`` and ``SystemConfig.crash_partition`` /
``crash_time_us``) now *compile* onto this path and reproduce their pre-plan
results bit-identically (pinned by tests/api/test_faults.py).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Iterable, Mapping, Optional, Sequence, Union

from .registry import FAULT_REGISTRY, register_fault, suggestion_hint

if TYPE_CHECKING:  # pragma: no cover
    from .cluster.cluster import Cluster

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultScheduler",
    "fault",
    "standard_storm",
]

#: Target selector meaning "every partition of the cluster".
ALL_PARTITIONS = "all"

_EVENT_FIELDS = ("kind", "at_us", "duration_us", "target")


def _normalize_target(target) -> Union[int, str, tuple]:
    """Coerce a target selector into an int, ``"all"``, or a tuple of ints."""
    if isinstance(target, bool):
        raise TypeError(f"fault target must be a partition id, list, or 'all', got {target!r}")
    if isinstance(target, int):
        if target < 0:
            raise ValueError(f"fault target partition must be >= 0, got {target}")
        return target
    if isinstance(target, str):
        if target != ALL_PARTITIONS:
            raise ValueError(
                f"unknown fault target {target!r}; use a partition id, a list "
                f"of partition ids, or {ALL_PARTITIONS!r}"
            )
        return ALL_PARTITIONS
    if isinstance(target, (list, tuple)):
        ids = tuple(_normalize_target(item) for item in target)
        if not ids:
            raise ValueError("fault target list must not be empty")
        if len(set(ids)) != len(ids):
            raise ValueError(f"fault target list has duplicates: {list(target)!r}")
        if any(not isinstance(item, int) for item in ids):
            raise TypeError(f"fault target list must hold partition ids, got {target!r}")
        return ids
    raise TypeError(
        f"fault target must be a partition id, a list of them, or "
        f"{ALL_PARTITIONS!r}, got {type(target).__name__}"
    )


def _normalize_param(name: str, value):
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        # Ints and floats must hash/serialize identically (5000 vs 5000.0), or
        # equal plans would produce different orchestrator cache keys.
        return float(value)
    raise TypeError(
        f"fault parameter {name!r} must be a scalar, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class FaultEvent:
    """One injection: a registered fault ``kind`` applied over a time window.

    ``duration_us=None`` means the fault is permanent (or, for ``crash``,
    resolved by the cluster's own failure-detection/recovery machinery).
    ``params`` holds the fault type's parameters as sorted ``(name, value)``
    pairs; the :func:`fault` helper and JSON documents spell them as plain
    keywords (``delay_us=5000``).  Validation is eager: an unknown kind,
    missing/unknown parameter, or a window on a non-windowed fault type
    raises at construction with a did-you-mean hint.
    """

    kind: str
    at_us: float = 0.0
    duration_us: Optional[float] = None
    target: Union[int, str, tuple] = 0
    params: tuple = ()

    def __post_init__(self) -> None:
        def set_field(name: str, value) -> None:
            object.__setattr__(self, name, value)

        entry = FAULT_REGISTRY.entry(self.kind)
        at_us = float(self.at_us)
        if at_us < 0:
            raise ValueError(f"fault at_us must be >= 0, got {at_us}")
        set_field("at_us", at_us)
        if self.duration_us is not None:
            if not entry.metadata.get("windowed", True):
                raise ValueError(
                    f"fault type {self.kind!r} does not take a duration_us window"
                )
            duration = float(self.duration_us)
            if duration <= 0:
                raise ValueError(f"fault duration_us must be > 0, got {duration}")
            set_field("duration_us", duration)
        set_field("target", _normalize_target(self.target))

        params = dict(self.params or ())
        required = entry.metadata.get("params", ())
        for name in params:
            if name not in required:
                raise ValueError(
                    f"unknown parameter {name!r} for fault type {self.kind!r}"
                    f"{suggestion_hint(str(name), required)}; expected: "
                    f"{', '.join(required) or '<none>'}"
                )
        missing = [name for name in required if name not in params]
        if missing:
            raise ValueError(
                f"fault type {self.kind!r} is missing parameter(s) "
                f"{', '.join(map(repr, missing))}"
            )
        set_field(
            "params",
            tuple((name, _normalize_param(name, params[name]))
                  for name in sorted(params)),
        )

    # -- registry-backed behaviour ------------------------------------------------
    @property
    def handler(self):
        """The registered fault-type class (``apply``/``revert`` staticmethods)."""
        return FAULT_REGISTRY.get(self.kind)

    @property
    def requires_membership(self) -> bool:
        return bool(FAULT_REGISTRY.entry(self.kind).metadata.get("requires_membership"))

    def targets(self, n_partitions: int) -> tuple:
        """Resolve the target selector against a concrete cluster size."""
        if self.target == ALL_PARTITIONS:
            return tuple(range(n_partitions))
        if isinstance(self.target, int):
            return (self.target,)
        return self.target

    # -- JSON round trip ---------------------------------------------------------
    def to_json_dict(self) -> dict:
        """Flat JSON form: parameters sit next to the event fields."""
        data: dict = {"kind": self.kind, "at_us": self.at_us}
        if self.duration_us is not None:
            data["duration_us"] = self.duration_us
        data["target"] = (
            list(self.target) if isinstance(self.target, tuple) else self.target
        )
        data.update(dict(self.params))
        return data

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "FaultEvent":
        if not isinstance(data, Mapping):
            raise TypeError(f"fault event must be a JSON object, got {type(data).__name__}")
        if "kind" not in data:
            raise ValueError("fault event is missing the required 'kind' field")
        fields = {name: data[name] for name in _EVENT_FIELDS if name in data}
        params = {name: value for name, value in data.items()
                  if name not in _EVENT_FIELDS}
        return cls(params=tuple(sorted(params.items())), **fields)


def fault(kind: str, at_us: float = 0.0, *, target=0,
          duration_us: Optional[float] = None, **params) -> FaultEvent:
    """Ergonomic :class:`FaultEvent` constructor with keyword parameters::

        fault("message_delay", at_us=0, target=1, delay_us=5_000.0)
    """
    return FaultEvent(kind=kind, at_us=at_us, duration_us=duration_us,
                      target=target, params=tuple(sorted(params.items())))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, frozen sequence of :class:`FaultEvent`\\ s.

    Accepts events as :class:`FaultEvent` instances or their JSON dict form;
    the declared order is preserved (it breaks ties between actions scheduled
    at the same simulated time).
    """

    events: tuple = ()

    def __post_init__(self) -> None:
        normalized = []
        for event in self.events or ():
            if isinstance(event, FaultEvent):
                normalized.append(event)
            elif isinstance(event, Mapping):
                normalized.append(FaultEvent.from_json_dict(event))
            else:
                raise TypeError(
                    f"fault plan entries must be FaultEvent or JSON objects, "
                    f"got {type(event).__name__}"
                )
        object.__setattr__(self, "events", tuple(normalized))

    @classmethod
    def coerce(cls, value) -> Optional["FaultPlan"]:
        """``None`` | plan | event | iterable-of-events -> plan (or ``None``)."""
        if value is None:
            return None
        if isinstance(value, cls):
            return value if value.events else None
        if isinstance(value, (FaultEvent, Mapping)):
            value = [value]
        if isinstance(value, Iterable):
            plan = cls(events=tuple(value))
            return plan if plan.events else None
        raise TypeError(
            f"faults must be a FaultPlan or a list of fault events, got "
            f"{type(value).__name__}"
        )

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __iter__(self):
        return iter(self.events)

    def extend(self, events: Iterable) -> "FaultPlan":
        """A new plan with ``events`` appended."""
        return FaultPlan(events=self.events + tuple(events))

    @property
    def requires_membership(self) -> bool:
        """True when any event needs the cluster's failure detector running."""
        return any(event.requires_membership for event in self.events)

    def max_partition(self) -> int:
        """Highest explicitly targeted partition id (-1 when none is explicit)."""
        highest = -1
        for event in self.events:
            target = event.target
            if isinstance(target, int):
                highest = max(highest, target)
            elif isinstance(target, tuple):
                highest = max(highest, *target)
        return highest

    # -- JSON round trip ---------------------------------------------------------
    def to_json_list(self) -> list:
        return [event.to_json_dict() for event in self.events]

    @classmethod
    def from_json_list(cls, data: Sequence) -> "FaultPlan":
        if isinstance(data, Mapping):
            data = [data]
        if not isinstance(data, Sequence) or isinstance(data, str):
            raise TypeError(f"fault plan must be a JSON array, got {type(data).__name__}")
        return cls(events=tuple(data))

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_json_list(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_json_list(json.loads(text))


class FaultScheduler:
    """Applies a :class:`FaultPlan` deterministically inside the event order.

    Zero-time events are applied synchronously when :meth:`start` runs (during
    ``Cluster.start()``, before the first simulation event — the same point at
    which the legacy scalar knobs were installed).  Timed applies and window
    reverts are driven by one simulation process that sleeps between
    consecutive action times, so a plan with a single timed event schedules
    exactly the events the legacy ``CrashInjector`` did.
    """

    def __init__(self, cluster: "Cluster", plan: Optional[FaultPlan] = None):
        self.cluster = cluster
        self.env = cluster.env
        self.plan = plan if plan is not None else FaultPlan()
        self.applied = 0
        self.reverted = 0

    def start(self) -> None:
        if not self.plan.events:
            return
        n_partitions = self.cluster.config.n_partitions
        highest = self.plan.max_partition()
        if highest >= n_partitions:
            raise ValueError(
                f"fault plan targets partition {highest} but the cluster has "
                f"only {n_partitions} partitions"
            )
        self._check_window_overlaps(n_partitions)
        # (time, seq, action) — applies in plan order, each window's revert
        # sequenced directly after its apply so same-time ties stay stable.
        timeline: list = []
        for index, event in enumerate(self.plan.events):
            timeline.append((event.at_us, 2 * index, event, False))
            if event.duration_us is not None:
                timeline.append(
                    (event.at_us + event.duration_us, 2 * index + 1, event, True)
                )
        timeline.sort(key=lambda entry: (entry[0], entry[1]))

        pending = []
        for when, _, event, is_revert in timeline:
            if when == 0.0 and not is_revert:
                self._apply(event)
            else:
                pending.append((when, event, is_revert))
        if pending:
            self.env.process(self._run(pending), name="fault-scheduler")

    def _check_window_overlaps(self, n_partitions: int) -> None:
        """Reject same-kind events whose windows overlap on a shared target.

        Reverts are absolute clears (``set_extra_delay_to(p, 0.0)``, …), not
        restores of prior state, so a window ending inside another same-kind
        injection on the same target would silently cancel it.  That is a
        plan-authoring error; fail it loudly before the simulation starts.
        """
        spans = []  # (kind, targets, start, end, has_window)
        for event in self.plan.events:
            end = (event.at_us + event.duration_us
                   if event.duration_us is not None else float("inf"))
            spans.append((event.kind, set(event.targets(n_partitions)),
                          event.at_us, end, event.duration_us is not None))
        for i, (kind, targets, start, end, windowed) in enumerate(spans):
            for other in spans[:i]:
                o_kind, o_targets, o_start, o_end, o_windowed = other
                if kind != o_kind or not (windowed or o_windowed):
                    continue
                if targets.isdisjoint(o_targets):
                    continue
                if start < o_end and o_start < end:
                    raise ValueError(
                        f"fault plan has overlapping {kind!r} windows on "
                        f"partition(s) {sorted(targets & o_targets)}: a "
                        f"window's revert would cancel the other injection"
                    )

    def _run(self, pending) -> Generator:
        now = 0.0
        for when, event, is_revert in pending:
            if when > now:
                yield self.env.timeout(when - now)
                now = when
            if is_revert:
                self._revert(event)
            else:
                self._apply(event)

    def _apply(self, event: FaultEvent) -> None:
        handler = event.handler
        params = dict(event.params)
        for partition_id in event.targets(self.cluster.config.n_partitions):
            handler.apply(self.cluster, partition_id, params)
        self.applied += 1

    def _revert(self, event: FaultEvent) -> None:
        handler = event.handler
        params = dict(event.params)
        for partition_id in event.targets(self.cluster.config.n_partitions):
            handler.revert(self.cluster, partition_id, params)
        self.reverted += 1


# ---------------------------------------------------------------------------
# Built-in fault types
# ---------------------------------------------------------------------------

@register_fault(
    "crash", requires_membership=True,
    description="kill a partition leader; recovery runs via failure detection "
                "(or at the window end, if a duration is given)",
)
class CrashFault:
    """The Fig. 12b experiment: a partition leader dies at a fixed time."""

    @staticmethod
    def apply(cluster: "Cluster", partition_id: int, params: dict) -> None:
        server = cluster.servers[partition_id]
        server.crash()
        cluster.durability.notify_crash(partition_id)
        cluster.counters.increment("crashes_injected")

    @staticmethod
    def revert(cluster: "Cluster", partition_id: int, params: dict) -> None:
        # The heartbeat detector usually recovers the partition first; the
        # window end only forces recovery if it is still down.
        cluster.recovery.trigger(partition_id)


@register_fault(
    "recover", windowed=False,
    description="explicitly run the §5.2 recovery sequence for a crashed partition",
)
class RecoverFault:
    @staticmethod
    def apply(cluster: "Cluster", partition_id: int, params: dict) -> None:
        cluster.recovery.trigger(partition_id)


@register_fault(
    "message_delay", params=("delay_us",),
    description="delay the durability scheme's control messages from a "
                "partition (Fig. 13a's lagging watermark/epoch)",
)
class MessageDelayFault:
    @staticmethod
    def apply(cluster: "Cluster", partition_id: int, params: dict) -> None:
        cluster.durability.set_message_delay(partition_id, params["delay_us"])

    @staticmethod
    def revert(cluster: "Cluster", partition_id: int, params: dict) -> None:
        cluster.durability.set_message_delay(partition_id, 0.0)


@register_fault(
    "slow_partition", params=("delay_us",),
    description="inflate one-way latency of every message *to* a partition "
                "(Fig. 13b's slow partition)",
)
class SlowPartitionFault:
    @staticmethod
    def apply(cluster: "Cluster", partition_id: int, params: dict) -> None:
        cluster.network.set_extra_delay_to(partition_id, params["delay_us"])

    @staticmethod
    def revert(cluster: "Cluster", partition_id: int, params: dict) -> None:
        cluster.network.set_extra_delay_to(partition_id, 0.0)


@register_fault(
    "slow_source", params=("delay_us",),
    description="inflate one-way latency of every message *from* a partition",
)
class SlowSourceFault:
    @staticmethod
    def apply(cluster: "Cluster", partition_id: int, params: dict) -> None:
        cluster.network.set_extra_delay_from(partition_id, params["delay_us"])

    @staticmethod
    def revert(cluster: "Cluster", partition_id: int, params: dict) -> None:
        cluster.network.set_extra_delay_from(partition_id, 0.0)


@register_fault(
    "network_partition",
    description="drop every message to a partition for the window (the node "
                "itself keeps running; RPCs to it fail as unreachable)",
)
class NetworkPartitionFault:
    @staticmethod
    def apply(cluster: "Cluster", partition_id: int, params: dict) -> None:
        cluster.network.set_unreachable(partition_id, True)
        cluster.counters.increment("partitions_isolated")

    @staticmethod
    def revert(cluster: "Cluster", partition_id: int, params: dict) -> None:
        cluster.network.set_unreachable(partition_id, False)


@register_fault(
    "clock_skew", params=("skew_us",), windowed=False,
    description="push a partition's commit-timestamp floor ahead of real time, "
                "as a fast local clock would",
)
class ClockSkewFault:
    @staticmethod
    def apply(cluster: "Cluster", partition_id: int, params: dict) -> None:
        server = cluster.servers[partition_id]
        skewed = cluster.env.now + params["skew_us"]
        if skewed > server.ts_floor:
            server.ts_floor = skewed
        server.note_ts(skewed)


# ---------------------------------------------------------------------------
# Replication-level faults (follower-targeted; see repro.replication.raft)
# ---------------------------------------------------------------------------

@register_fault(
    "follower_lag", params=("follower", "delay_us"),
    description="stretch one follower's replication-ack round trip; quorum "
                "latency shifts to the next-fastest replica",
)
class FollowerLagFault:
    @staticmethod
    def apply(cluster: "Cluster", partition_id: int, params: dict) -> None:
        replication = cluster.servers[partition_id].replication
        replication.set_follower_lag(int(params["follower"]), params["delay_us"])

    @staticmethod
    def revert(cluster: "Cluster", partition_id: int, params: dict) -> None:
        replication = cluster.servers[partition_id].replication
        replication.set_follower_lag(int(params["follower"]), 0.0)


@register_fault(
    "follower_crash", params=("follower",),
    description="drop one follower out of the quorum (degrades quorum math; "
                "recovers at the window end or via an explicit "
                "follower_recover event)",
)
class FollowerCrashFault:
    @staticmethod
    def apply(cluster: "Cluster", partition_id: int, params: dict) -> None:
        replication = cluster.servers[partition_id].replication
        replication.crash_follower(int(params["follower"]))
        cluster.counters.increment("follower_crashes_injected")

    @staticmethod
    def revert(cluster: "Cluster", partition_id: int, params: dict) -> None:
        replication = cluster.servers[partition_id].replication
        replication.recover_follower(int(params["follower"]))


@register_fault(
    "follower_recover", params=("follower",), windowed=False,
    description="bring a crashed follower back, caught up to the leader's "
                "durable log prefix",
)
class FollowerRecoverFault:
    @staticmethod
    def apply(cluster: "Cluster", partition_id: int, params: dict) -> None:
        replication = cluster.servers[partition_id].replication
        replication.recover_follower(int(params["follower"]))


@register_fault(
    "leader_flap", params=("cycles", "interval_us"), windowed=False,
    requires_membership=True,
    description="crash a partition leader repeatedly (N crash->detect->elect "
                "cycles at a fixed interval); cycles that land while the "
                "leader is still down are skipped",
)
class LeaderFlapFault:
    """Repeated fail-over: exercises elect_new_leader under sustained load."""

    @staticmethod
    def apply(cluster: "Cluster", partition_id: int, params: dict) -> None:
        cycles = int(params["cycles"])
        interval_us = float(params["interval_us"])
        if cycles < 1:
            raise ValueError(f"leader_flap cycles must be >= 1, got {cycles}")
        if interval_us <= 0:
            raise ValueError(
                f"leader_flap interval_us must be > 0, got {interval_us}"
            )

        def flapper() -> Generator:
            for cycle in range(cycles):
                if cycle:
                    yield cluster.env.timeout(interval_us)
                server = cluster.servers[partition_id]
                if server.crashed:
                    # The previous crash has not finished recovery yet; a real
                    # flap cannot re-kill a dead leader, so skip this cycle.
                    continue
                server.crash()
                cluster.durability.notify_crash(partition_id)
                cluster.counters.increment("crashes_injected")
                cluster.counters.increment("leader_flaps")

        cluster.env.process(flapper(), name=f"leader-flap-p{partition_id}")


@register_fault(
    "stale_read", params=("fraction",),
    description="window where the given fraction of reads observes the "
                "pre-durable snapshot; counted in the 'stale_reads' metric "
                "(observational: timing is unchanged)",
)
class StaleReadFault:
    @staticmethod
    def apply(cluster: "Cluster", partition_id: int, params: dict) -> None:
        cluster.set_stale_read_fraction(partition_id, params["fraction"])

    @staticmethod
    def revert(cluster: "Cluster", partition_id: int, params: dict) -> None:
        cluster.set_stale_read_fraction(partition_id, 0.0)


# ---------------------------------------------------------------------------
# The standard storm
# ---------------------------------------------------------------------------

def standard_storm(warmup_us: float, duration_us: float) -> list:
    """The curated degradation/recovery fault plan behind the storm figure.

    A fixed sequence of staggered faults scaled to the measurement window
    (``warmup_us`` .. ``warmup_us + duration_us``): a lagging follower, a slow
    partition, a follower crash, a double leader flap, and a stale-read
    window.  Every event lands at a fixed fraction of the window so the same
    storm shape stresses any scale; pair it with a fast failure detector
    (e.g. ``heartbeat_interval_us=500, heartbeat_timeout_us=2000``) so the
    leader flaps actually recover inside the window.  Requires >= 2
    partitions and >= 2 replicas per partition.
    """
    warmup_us = float(warmup_us)
    duration_us = float(duration_us)
    if duration_us <= 0:
        raise ValueError(f"standard_storm duration_us must be > 0, got {duration_us}")

    def at(fraction: float) -> float:
        return warmup_us + fraction * duration_us

    def span(fraction: float) -> float:
        return fraction * duration_us

    return [
        fault("follower_lag", at_us=at(0.05), duration_us=span(0.20),
              target=0, follower=0, delay_us=400.0),
        fault("slow_partition", at_us=at(0.15), duration_us=span(0.15),
              target=1, delay_us=200.0),
        fault("follower_crash", at_us=at(0.30), duration_us=span(0.10),
              target=0, follower=0),
        fault("leader_flap", at_us=at(0.45), target=1,
              cycles=2, interval_us=span(0.10)),
        fault("stale_read", at_us=at(0.75), duration_us=span(0.15),
              target=ALL_PARTITIONS, fraction=0.2),
    ]


# ---------------------------------------------------------------------------
# Legacy-knob compilation (the compatibility shims)
# ---------------------------------------------------------------------------

def compile_legacy_faults(
    durability_message_delay: Optional[tuple] = None,
    network_extra_delay_to: Optional[tuple] = None,
    crash_partition: Optional[int] = None,
    crash_time_us: Optional[float] = None,
) -> list:
    """Compile the pre-plan scalar knobs into :class:`FaultEvent`\\ s.

    ``ScenarioSpec.durability_message_delay`` / ``network_extra_delay_to`` and
    ``SystemConfig.crash_partition`` / ``crash_time_us`` survive as thin
    shims over this function; the produced events reproduce the legacy
    behaviour bit-identically (zero-time knobs apply synchronously before the
    first simulation event, the crash draws the same timeout the old
    ``CrashInjector`` process did).
    """
    events = []
    if durability_message_delay is not None:
        partition, delay_us = durability_message_delay
        events.append(fault("message_delay", target=int(partition), delay_us=delay_us))
    if network_extra_delay_to is not None:
        partition, delay_us = network_extra_delay_to
        events.append(fault("slow_partition", target=int(partition), delay_us=delay_us))
    if crash_partition is not None and crash_time_us is not None:
        events.append(fault("crash", at_us=crash_time_us, target=int(crash_partition)))
    return events
