"""COCO-style epoch-based distributed group commit (§2.3).

One partition (partition 0) acts as the epoch coordinator.  Every
``epoch_length_us`` it runs the synchronous protocol:

1. ``GROUP-PREPARE`` to every partition.  A partition closes admission of new
   transactions, waits for in-flight transactions of the epoch to drain,
   flushes its log, and answers ``GROUP-READY``.
2. Once every partition is ready the coordinator sends ``GROUP-COMMIT``;
   partitions acknowledge all transactions of the epoch to their clients and
   re-open admission.
3. If a partition has crashed the coordinator sends ``GROUP-ABORT`` and every
   transaction of the epoch is aborted (crash-induced abort).

The synchronous barrier is exactly what limits COCO's scalability in the
paper (Figs. 13 and 14): the stall seen by every partition is the *maximum*
drain+flush time over all partitions plus the coordinator's message handling,
both of which grow with the number of partitions.
"""

from __future__ import annotations

from typing import Optional

from ..registry import register_durability
from ..sim.engine import Event, all_of
from ..sim.network import NodeUnreachable
from .base import CRASH_ABORTED, DURABLE, DurabilityScheme
from .logging import LogRecordKind

__all__ = ["CocoGroupCommit"]


class _PartitionEpochState:
    """Per-partition admission gate and pending-transaction lists."""

    def __init__(self, env):
        self.env = env
        self.closed = False
        self.open_event: Optional[Event] = None
        # epoch number -> list of (txn, completion event)
        self.pending: dict[int, list] = {}
        self.inflight = 0
        self.drained_event: Optional[Event] = None

    def gate(self) -> Optional[Event]:
        if not self.closed:
            return None
        if self.open_event is None or self.open_event.triggered:
            self.open_event = self.env.event()
        return self.open_event

    def close(self) -> None:
        self.closed = True

    def open(self) -> None:
        self.closed = False
        if self.open_event is not None and not self.open_event.triggered:
            self.open_event.succeed(None)
        self.open_event = None


@register_durability("coco", description="COCO epoch-based synchronous group commit")
class CocoGroupCommit(DurabilityScheme):
    name = "coco"

    def __init__(self, cluster):
        super().__init__(cluster)
        self.epoch = 0
        self.coordinator_partition = 0
        self._states = {p: _PartitionEpochState(self.env) for p in range(self.config.n_partitions)}
        self._crashed: set[int] = set()
        self._message_delay_us: dict[int, float] = {}
        self.stats = {"epochs_committed": 0, "epochs_aborted": 0, "barrier_time_us": 0.0}

    def set_message_delay(self, partition_id: int, delay_us: float) -> None:
        self._message_delay_us[partition_id] = float(delay_us)

    # -- worker-facing API ---------------------------------------------------
    def start(self) -> None:
        self.env.process(self._epoch_loop(), name="coco-epoch-manager")

    def admission_gate(self, server) -> Optional[Event]:
        return self._states[server.partition_id].gate()

    def transaction_begin(self, server) -> None:
        self._states[server.partition_id].inflight += 1

    def transaction_finished(self, server) -> None:
        state = self._states[server.partition_id]
        state.inflight -= 1
        if state.inflight <= 0 and state.drained_event is not None and not state.drained_event.triggered:
            state.drained_event.succeed(None)

    def transaction_executed(self, server, txn) -> Event:
        done = self.env.event()
        state = self._states[server.partition_id]
        state.pending.setdefault(self.epoch, []).append((txn, done))
        return done

    # -- epoch protocol ---------------------------------------------------------
    def _epoch_loop(self):
        rng = self.cluster.rng_for("coco-epoch")
        while True:
            yield self.env.timeout(self.config.epoch_length_us)
            barrier_start = self.env.now
            committing_epoch = self.epoch
            ready = []
            aborted = False
            for partition_id in range(self.config.n_partitions):
                if partition_id in self._crashed or self.cluster.servers[partition_id].crashed:
                    aborted = True
                    continue
                # Coordinator-side handling cost per message (prepare + ready).
                yield self.env.timeout(self.config.cpu_message_handling_us * 2)
                ready.append(
                    self.env.process(
                        self._prepare_partition(partition_id, rng),
                        name=f"coco-prepare-p{partition_id}",
                    )
                )
            if ready:
                results = yield all_of(self.env, ready)
                if any(isinstance(r, Exception) or r is False for r in results):
                    aborted = True
            if aborted or any(self.cluster.servers[p].crashed for p in range(self.config.n_partitions)):
                self._abort_epoch(committing_epoch)
            else:
                self._commit_epoch(committing_epoch)
            self.stats["barrier_time_us"] += self.env.now - barrier_start
            self.epoch += 1
            # GROUP-COMMIT / GROUP-ABORT delivery: one-way message, partitions
            # re-open admission when it arrives.
            for partition_id in range(self.config.n_partitions):
                self._states[partition_id].open()

    def _prepare_partition(self, partition_id: int, rng):
        """GROUP-PREPARE handling at one partition (runs remotely via RPC)."""
        server = self.cluster.servers[partition_id]
        state = self._states[partition_id]

        def handle_prepare():
            state.close()
            # Wait for in-flight transactions of this epoch to drain.
            if state.inflight > 0:
                state.drained_event = self.env.event()
                yield state.drained_event
                state.drained_event = None
            # Flush the epoch's log records (plus OS-noise jitter).
            jitter = rng.exponential(self.config.epoch_jitter_us)
            yield self.env.timeout(jitter)
            yield from server.log.flush()
            server.log.append(LogRecordKind.EPOCH, payload={"epoch": self.epoch})
            return True

        try:
            result = yield from self.cluster.network.rpc(
                self.coordinator_partition, partition_id, handle_prepare
            )
        except NodeUnreachable:
            return False
        # Lagging epoch message (GROUP-READY delayed on the wire, Fig. 13a):
        # the whole epoch barrier waits for it.
        delay = self._message_delay_us.get(partition_id, 0.0)
        if delay > 0:
            yield self.env.timeout(delay)
        return result

    def _resolve_epoch(self, epoch: int, outcome: str) -> None:
        """Acknowledge every pending transaction of ``epoch`` (and earlier).

        The whole epoch's completion callbacks wake through one shared
        fast-lane notify per partition (see ``Environment.succeed_all``)
        instead of one scheduled event per transaction.
        """
        for state in self._states.values():
            released = []
            for pending_epoch in [e for e in state.pending if e <= epoch]:
                for _txn, done in state.pending.pop(pending_epoch):
                    if not done.triggered:
                        released.append(done)
            if released:
                self.env.succeed_all(released, outcome)

    def _commit_epoch(self, epoch: int) -> None:
        self.stats["epochs_committed"] += 1
        self._resolve_epoch(epoch, DURABLE)

    def _abort_epoch(self, epoch: int) -> None:
        self.stats["epochs_aborted"] += 1
        self._resolve_epoch(epoch, CRASH_ABORTED)

    # -- failure handling ----------------------------------------------------------
    def notify_crash(self, partition_id: int) -> None:
        self._crashed.add(partition_id)

    def notify_recovered(self, partition_id: int) -> None:
        self._crashed.discard(partition_id)
