"""Durability: write-ahead logging and the group-commit schemes of §6.4."""

from ..registry import DURABILITY_REGISTRY, register_durability
from .base import CRASH_ABORTED, DURABLE, DurabilityScheme
from .clv import ControlledLockViolation
from .coco import CocoGroupCommit
from .logging import LogManager, LogRecord, LogRecordKind
from .sync import SyncDurability

__all__ = [
    "CRASH_ABORTED",
    "DURABLE",
    "DurabilityScheme",
    "ControlledLockViolation",
    "CocoGroupCommit",
    "LogManager",
    "LogRecord",
    "LogRecordKind",
    "SyncDurability",
    "create_durability_scheme",
]

# The no-op base class doubles as the "no durability tracking" scheme for unit
# tests and micro-benches; the name is registered here because it is a policy
# choice, not a property of the class itself.
register_durability("none", description="no durability tracking (tests / micro-benches)")(
    DurabilityScheme
)


def create_durability_scheme(name: str, cluster) -> DurabilityScheme:
    """Factory used by the cluster to instantiate the configured scheme."""
    return DURABILITY_REGISTRY.get(name)(cluster)
