"""Durability: write-ahead logging and the group-commit schemes of §6.4."""

from .base import CRASH_ABORTED, DURABLE, DurabilityScheme
from .clv import ControlledLockViolation
from .coco import CocoGroupCommit
from .logging import LogManager, LogRecord, LogRecordKind
from .sync import SyncDurability

__all__ = [
    "CRASH_ABORTED",
    "DURABLE",
    "DurabilityScheme",
    "ControlledLockViolation",
    "CocoGroupCommit",
    "LogManager",
    "LogRecord",
    "LogRecordKind",
    "SyncDurability",
]


def create_durability_scheme(name: str, cluster) -> DurabilityScheme:
    """Factory used by the cluster to instantiate the configured scheme."""
    from ..core.watermark import WatermarkGroupCommit

    schemes = {
        "none": DurabilityScheme,
        "sync": SyncDurability,
        "coco": CocoGroupCommit,
        "clv": ControlledLockViolation,
        "wm": WatermarkGroupCommit,
    }
    try:
        return schemes[name](cluster)
    except KeyError as exc:
        raise ValueError(f"unknown durability scheme {name!r}") from exc
