"""Synchronous per-transaction durability.

The classic pre-group-commit design: the transaction's log records are
flushed (quorum-replicated) on every involved partition before the result is
returned.  Used as the durability pairing for TAPIR (whose prepare round
already reaches a replica quorum, so the extra flush models the commit
decision record) and as a baseline in the logging-ablation benches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..registry import register_durability
from ..sim.engine import Event, all_of
from .base import CRASH_ABORTED, DURABLE, DurabilityScheme

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.server import Server
    from ..txn.transaction import Transaction

__all__ = ["SyncDurability"]


@register_durability("sync", description="synchronous per-transaction logging (no group commit)")
class SyncDurability(DurabilityScheme):
    name = "sync"

    def transaction_executed(self, server: "Server", txn: "Transaction") -> Event:
        done = self.env.event()
        self.env.process(self._flush_all(server, txn, done), name=f"sync-flush-{txn.tid}")
        return done

    def _flush_all(self, server, txn, done: Event):
        partitions = sorted(txn.all_partitions())
        flush_processes = []
        for partition_id in partitions:
            target = self.cluster.servers[partition_id]
            if target.crashed:
                continue
            flush_processes.append(
                self.env.process(target.log.flush(), name=f"flush-p{partition_id}")
            )
        if flush_processes:
            yield all_of(self.env, flush_processes)
        if any(self.cluster.servers[p].crashed for p in partitions):
            done.succeed(CRASH_ABORTED)
        else:
            done.succeed(DURABLE)
