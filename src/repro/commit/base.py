"""Durability-scheme interface.

After a protocol has installed a transaction's writes (and released its
locks), the transaction is *executed* but its result may not yet be returned
to the client: the durability scheme decides when it is safe to acknowledge.
This is where the schemes compared in §6.4 differ:

* ``sync`` — flush the involved partitions' logs on the critical path;
* ``coco`` — COCO's epoch-based synchronous distributed group commit;
* ``clv``  — controlled lock violation (background flusher + dependency wait);
* ``wm``   — Primo's watermark-based asynchronous group commit
  (implemented in :mod:`repro.core.watermark`);
* ``none`` — acknowledge immediately (unit tests and micro-benches).

The worker loop calls :meth:`transaction_executed` and waits on the returned
event; the event's value is ``"durable"`` or ``"crash_aborted"``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..sim.engine import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster
    from ..cluster.server import Server
    from ..txn.transaction import Transaction

__all__ = ["DurabilityScheme", "DURABLE", "CRASH_ABORTED"]

DURABLE = "durable"
CRASH_ABORTED = "crash_aborted"


class DurabilityScheme:
    """Base class: acknowledge immediately (the ``none`` scheme)."""

    name = "none"

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.env = cluster.env
        self.config = cluster.config

    def start(self) -> None:
        """Spawn any background processes (epoch manager, flushers, ...)."""

    def transaction_executed(self, server: "Server", txn: "Transaction") -> Event:
        """Return an event that fires when the result may be returned."""
        event = self.env.event()
        event.succeed(DURABLE)
        return event

    def admission_gate(self, server: "Server") -> Optional[Event]:
        """If non-None, the worker must wait on it before starting a transaction."""
        return None

    def transaction_begin(self, server: "Server") -> None:
        """A worker started (an attempt of) a transaction on ``server``."""

    def transaction_finished(self, server: "Server") -> None:
        """The attempt finished executing (committed or aborted)."""

    def execution_overhead_us(self, txn: "Transaction") -> float:
        """Extra critical-path CPU time this scheme adds per transaction."""
        return 0.0

    def set_message_delay(self, partition_id: int, delay_us: float) -> None:
        """Delay this scheme's own coordination messages from one partition.

        Used by the watermark/epoch *lagging* experiment (Fig. 13a): only the
        group-commit control messages are delayed, not data traffic.
        """

    def notify_crash(self, partition_id: int) -> None:
        """A partition leader crashed; fail whatever cannot survive it."""

    def notify_recovered(self, partition_id: int) -> None:
        """The partition has a new leader and normal processing resumed."""
