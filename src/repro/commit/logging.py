"""Per-partition write-ahead log.

Protocols append a redo/undo record per transaction per involved partition
when they install the write-set; the durability scheme decides *when* the
buffered tail gets persisted (synchronously, per epoch, per watermark
interval, or by a background flusher).  Persistence itself is delegated to the
partition's :class:`~repro.replication.raft.ReplicationGroup` — a quorum ack
makes a prefix durable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..sim.engine import Environment, Event
from ..replication.raft import ReplicationGroup

__all__ = ["LogRecordKind", "LogRecord", "LogManager"]


class LogRecordKind(enum.Enum):
    WRITESET = "writeset"        # redo (+ undo before-images) of one transaction
    WATERMARK = "watermark"      # persisted partition watermark (WM scheme)
    EPOCH = "epoch"              # COCO epoch boundary marker
    COMMIT_DECISION = "commit"   # 2PC coordinator commit decision
    PREPARE = "prepare"          # 2PC participant prepare record


@dataclass
class LogRecord:
    lsn: int
    kind: LogRecordKind
    txn_ts: Optional[float] = None
    txn_tid: Any = None
    payload: dict = field(default_factory=dict)
    appended_at: float = 0.0


class LogManager:
    """Append-only log buffer with quorum-replicated flushes."""

    def __init__(
        self,
        env: Environment,
        partition_id: int,
        replication: ReplicationGroup,
        log_write_us: float = 15.0,
    ):
        self.env = env
        self.partition_id = partition_id
        self.replication = replication
        self.log_write_us = log_write_us
        self._next_lsn = 1
        self._buffer: list[LogRecord] = []
        self._all_records: list[LogRecord] = []
        # Full-history retention feeds the recovery helpers below; the
        # cluster turns it off for fault-free runs (nothing can ever crash,
        # so the history is unreachable) to keep log memory bounded by the
        # unflushed tail instead of growing with every committed transaction.
        self.retain_history = True
        self.durable_lsn = 0
        self._flush_in_progress = False
        self._flush_waiters: list[Event] = []
        self.stats = {"appends": 0, "flushes": 0, "records_flushed": 0}

    # -- appends ----------------------------------------------------------------
    def append(
        self,
        kind: LogRecordKind,
        txn_ts: Optional[float] = None,
        txn_tid: Any = None,
        payload: Optional[dict] = None,
    ) -> LogRecord:
        record = LogRecord(
            lsn=self._next_lsn,
            kind=kind,
            txn_ts=txn_ts,
            txn_tid=txn_tid,
            payload=payload or {},
            appended_at=self.env.now,
        )
        self._next_lsn += 1
        self._buffer.append(record)
        if self.retain_history:
            self._all_records.append(record)
        self.stats["appends"] += 1
        return record

    def append_writeset(self, txn, entries, before_images: dict) -> LogRecord:
        """Append the redo/undo record for one transaction on this partition."""
        payload = {
            "writes": [
                (entry.table, entry.key, dict(entry.updates), entry.is_insert, entry.is_delete)
                for entry in entries
            ],
            "before_images": before_images,
        }
        return self.append(
            LogRecordKind.WRITESET, txn_ts=txn.effective_ts(), txn_tid=txn.tid, payload=payload
        )

    # -- flush ------------------------------------------------------------------
    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def unpersisted_count(self) -> int:
        return len(self._buffer)

    def unpersisted_min_ts(self) -> Optional[float]:
        """Minimum transaction timestamp among unpersisted write-set records."""
        ts_values = [r.txn_ts for r in self._buffer if r.kind is LogRecordKind.WRITESET and r.txn_ts is not None]
        return min(ts_values) if ts_values else None

    def is_durable(self, lsn: int) -> bool:
        return lsn <= self.durable_lsn

    def flush(self) -> Generator[Event, object, int]:
        """Persist everything appended so far; returns the new durable LSN.

        Concurrent callers piggyback on the in-flight flush (group flush): the
        second caller waits for the first flush to finish, then flushes any
        remainder itself.
        """
        if self._flush_in_progress:
            waiter = self.env.event()
            self._flush_waiters.append(waiter)
            yield waiter
            if not self._buffer:
                return self.durable_lsn
        if not self._buffer:
            return self.durable_lsn
        self._flush_in_progress = True
        batch, self._buffer = self._buffer, []
        target_lsn = batch[-1].lsn
        try:
            # Serialise the batch locally, then replicate for the quorum ack.
            yield self.env.timeout(self.log_write_us)
            yield from self.replication.replicate(target_lsn, batch)
        finally:
            self._flush_in_progress = False
            waiters, self._flush_waiters = self._flush_waiters, []
            for waiter in waiters:
                waiter.succeed(None)
        self.durable_lsn = max(self.durable_lsn, target_lsn)
        self.stats["flushes"] += 1
        self.stats["records_flushed"] += len(batch)
        return self.durable_lsn

    # -- recovery helpers ----------------------------------------------------------
    def _require_history(self) -> None:
        if not self.retain_history:
            raise RuntimeError(
                f"log history was not retained on partition {self.partition_id} "
                "(fault-free run); recovery helpers are unavailable"
            )

    def records(self, kind: Optional[LogRecordKind] = None) -> list[LogRecord]:
        self._require_history()
        if kind is None:
            return list(self._all_records)
        return [r for r in self._all_records if r.kind is kind]

    def writeset_records_at_or_after(self, ts: float) -> list[LogRecord]:
        """Write-set records with transaction timestamp >= ts (rollback targets)."""
        self._require_history()
        return [
            r
            for r in self._all_records
            if r.kind is LogRecordKind.WRITESET and r.txn_ts is not None and r.txn_ts >= ts
        ]

    def latest_persisted_watermark(self) -> float:
        """The most recent partition watermark known durable (used at fail-over)."""
        self._require_history()
        persisted = [
            r.payload.get("watermark", 0.0)
            for r in self._all_records
            if r.kind is LogRecordKind.WATERMARK and r.lsn <= self.replication.highest_replicated_lsn()
        ]
        return max(persisted) if persisted else 0.0
