"""Controlled Lock Violation (CLV) durability.

CLV (Graefe et al., SIGMOD'13) releases locks before the log is durable and
tracks commit dependencies at a fine grain so a transaction can be
acknowledged as soon as (a) its own log records are durable on every involved
partition and (b) the transactions it read from are durable.  Compared to the
group-commit schemes it offers lower latency but pays a per-access dependency
tracking cost on the critical path — which is why the paper finds it slower
than both COCO and WM (Fig. 11).

The reproduction models the two essential characteristics:

* a background flusher per partition with a short flush interval, so the
  acknowledgement latency is a fraction of a millisecond rather than the
  10 ms group-commit interval;
* a per-record-access CPU overhead (``clv_tracking_overhead_us``) charged on
  the transaction's critical path for maintaining the dependency graph.

Dependencies between transactions on the same partition are subsumed by the
log-prefix rule (a flush persists everything appended before it), which is
how CLV implementations batch dependency releases in practice.
"""

from __future__ import annotations

from ..registry import register_durability
from ..sim.engine import Event
from .base import CRASH_ABORTED, DURABLE, DurabilityScheme

__all__ = ["ControlledLockViolation"]


class _PendingTxn:
    __slots__ = ("txn", "event", "needed")

    def __init__(self, txn, event: Event, needed: dict[int, int]):
        self.txn = txn
        self.event = event
        # partition id -> LSN that must be durable on that partition.
        self.needed = needed


@register_durability("clv", description="controlled lock violation (early lock release)")
class ControlledLockViolation(DurabilityScheme):
    name = "clv"

    #: Background flush interval (µs). Short so latency stays sub-millisecond.
    flush_interval_us = 200.0

    def __init__(self, cluster):
        super().__init__(cluster)
        self._pending: list[_PendingTxn] = []
        self._crashed: set[int] = set()
        self.stats = {"flush_rounds": 0, "acks": 0}

    def start(self) -> None:
        for partition_id in range(self.config.n_partitions):
            self.env.process(self._flusher(partition_id), name=f"clv-flusher-p{partition_id}")

    def execution_overhead_us(self, txn) -> float:
        accesses = len(txn.read_set) + len(txn.write_set)
        return accesses * self.config.clv_tracking_overhead_us

    def transaction_executed(self, server, txn) -> Event:
        done = self.env.event()
        needed = {}
        for partition_id in sorted(txn.all_partitions()):
            target = self.cluster.servers[partition_id]
            needed[partition_id] = target.log.last_lsn
        self._pending.append(_PendingTxn(txn, done, needed))
        return done

    def _flusher(self, partition_id: int):
        server = self.cluster.servers[partition_id]
        while True:
            yield self.env.timeout(self.flush_interval_us)
            if server.crashed:
                continue
            if server.log.unpersisted_count > 0:
                yield from server.log.flush()
                self.stats["flush_rounds"] += 1
            self._release_ready()

    def _release_ready(self) -> None:
        # A flush round typically makes a whole batch of transactions durable
        # at once; their completion callbacks wake through one shared
        # fast-lane notify (Environment.succeed_all) instead of one scheduled
        # event each.  Crash-aborted ones stay individually succeeded in
        # pending order (the rare path).
        released = []
        still_pending = []
        for pending in self._pending:
            if pending.event.triggered:
                continue
            if any(p in self._crashed for p in pending.needed):
                pending.event.succeed(CRASH_ABORTED)
                continue
            durable_everywhere = all(
                self.cluster.servers[p].log.durable_lsn >= lsn
                for p, lsn in pending.needed.items()
            )
            if durable_everywhere:
                released.append(pending.event)
                self.stats["acks"] += 1
            else:
                still_pending.append(pending)
        self._pending = still_pending
        if released:
            self.env.succeed_all(released, DURABLE)

    def notify_crash(self, partition_id: int) -> None:
        self._crashed.add(partition_id)
        self._release_ready()

    def notify_recovered(self, partition_id: int) -> None:
        self._crashed.discard(partition_id)
