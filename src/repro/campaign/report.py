"""Campaign status and statistical reports over the shared result cache.

Both commands are **pure readers**: they stream the manifest, look each
cell's content key up in ``cache/``, and never simulate, claim, or write
anything outside ``reports/``.  Running them concurrently with executors is
safe and is how long campaigns are monitored.

The report aggregates the run table by grid point: every row is one factor
assignment, its ``seed_reps`` repetitions collapsed to ``mean ± 95% CI``
(Student-t across seeds — see :func:`repro.bench.report.confidence_interval_95`)
per metric.  Rows missing repetitions (campaign still running) are reported
with the reps they have and flagged, so a mid-flight report is usable but
unambiguous.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..bench.orchestrator import ResultCache
from ..bench.report import confidence_interval_95, format_mean_ci
from ..cluster.results import RunResult
from ..registry import suggestion_hint
from .manifest import Manifest, load_manifest

__all__ = [
    "DEFAULT_METRICS",
    "CampaignStatus",
    "REPORT_METRICS",
    "campaign_report",
    "campaign_status",
    "render_markdown",
]

#: Metric name -> how to read it off a RunResult.  The report's vocabulary;
#: ``--metrics`` validates against it with did-you-mean hints.
REPORT_METRICS = {
    "throughput_ktps": lambda r: r.throughput_ktps,
    "committed": lambda r: float(r.committed),
    "aborted": lambda r: float(r.aborted),
    "abort_rate": lambda r: r.abort_rate,
    "mean_latency_ms": lambda r: r.mean_latency_ms,
    "p50_latency_ms": lambda r: r.p50_latency_ms,
    "p99_latency_ms": lambda r: r.p99_latency_ms,
    "p999_latency_ms": lambda r: r.p999_latency_ms,
    "network_messages": lambda r: float(r.network_messages),
}

DEFAULT_METRICS = ("throughput_ktps", "abort_rate", "p99_latency_ms")


def resolve_metrics(names: Optional[Sequence[str]]) -> tuple[str, ...]:
    if not names:
        return DEFAULT_METRICS
    resolved = []
    for name in names:
        if name not in REPORT_METRICS:
            raise ValueError(
                f"unknown report metric {name!r}"
                f"{suggestion_hint(name, tuple(REPORT_METRICS))}; metrics: "
                f"{', '.join(REPORT_METRICS)}"
            )
        resolved.append(name)
    return tuple(resolved)


@dataclass
class CampaignStatus:
    """Progress of a campaign: done / claimed / pending cell counts."""

    name: str = ""
    total_cells: int = 0
    done: int = 0        # valid cache entry exists
    claimed: int = 0     # live claim file (an executor is on it right now)
    pending: int = 0     # neither

    @property
    def complete(self) -> bool:
        return self.done >= self.total_cells and self.total_cells > 0

    def describe(self) -> str:
        pct = 100.0 * self.done / self.total_cells if self.total_cells else 0.0
        return (
            f"campaign {self.name!r}: {self.done}/{self.total_cells} cells "
            f"done ({pct:.1f}%), {self.claimed} in flight, "
            f"{self.pending} pending"
        )

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "total_cells": self.total_cells,
            "done": self.done,
            "claimed": self.claimed,
            "pending": self.pending,
            "complete": self.complete,
        }


def campaign_status(directory, manifest: Optional[Manifest] = None) -> CampaignStatus:
    """Count done / in-flight / pending cells without touching anything."""
    manifest = manifest if manifest is not None else load_manifest(directory)
    cache = ResultCache(manifest.dirs.cache_dir)
    claims_dir = manifest.dirs.claims_dir
    status = CampaignStatus(name=manifest.name)
    for manifest_cell in manifest.iter_cells():
        status.total_cells += 1
        if cache.contains_key(manifest_cell.key):
            status.done += 1
        elif (claims_dir / f"{manifest_cell.key}.claim").exists():
            status.claimed += 1
        else:
            status.pending += 1
    return status


@dataclass
class ReportRow:
    """One run-table row: a factor assignment with per-metric statistics."""

    factors: dict
    reps_expected: int
    reps_present: int = 0
    metrics: dict = field(default_factory=dict)  # name -> {mean, ci95, n, values}

    @property
    def complete(self) -> bool:
        return self.reps_present >= self.reps_expected


def campaign_report(directory, metrics: Optional[Sequence[str]] = None,
                    manifest: Optional[Manifest] = None) -> dict:
    """Aggregate the campaign into a JSON-shaped report document.

    Shape::

        {"campaign": ..., "metrics": [...], "complete": bool,
         "rows_total": N, "rows_complete": M,
         "rows": [{"factors": {...}, "reps_expected": R, "reps_present": r,
                   "metrics": {"throughput_ktps":
                       {"mean": ..., "ci95": ..., "n": r, "values": [...]}}}]}

    Rows appear in grid order.  Cells not yet in the cache simply do not
    contribute repetitions; a report over a half-run campaign is well-formed.
    """
    manifest = manifest if manifest is not None else load_manifest(directory)
    metric_names = resolve_metrics(metrics)
    cache = ResultCache(manifest.dirs.cache_dir)
    spec = manifest.spec

    # Grid order is manifest order with reps innermost, so rows materialize
    # in order while streaming; keyed by the canonical factor JSON.
    rows: dict[str, ReportRow] = {}
    for manifest_cell in manifest.iter_cells():
        row_key = json.dumps(manifest_cell.factors, sort_keys=True,
                             separators=(",", ":"))
        row = rows.get(row_key)
        if row is None:
            row = rows[row_key] = ReportRow(
                factors=manifest_cell.factors,
                reps_expected=spec.seed_reps,
            )
        result = cache.get_by_key(manifest_cell.key)
        if result is None:
            continue
        row.reps_present += 1
        for name in metric_names:
            row.metrics.setdefault(name, []).append(_metric(result, name))

    report_rows = []
    for row in rows.values():
        stats = {}
        for name in metric_names:
            values = row.metrics.get(name, [])
            if not values:
                stats[name] = {"mean": None, "ci95": None, "n": 0, "values": []}
                continue
            mean, half = confidence_interval_95(values)
            stats[name] = {"mean": mean, "ci95": half, "n": len(values),
                           "values": list(values)}
        report_rows.append({
            "factors": row.factors,
            "reps_expected": row.reps_expected,
            "reps_present": row.reps_present,
            "complete": row.complete,
            "metrics": stats,
        })

    complete_rows = sum(1 for row in report_rows if row["complete"])
    return {
        "campaign": spec.to_json_dict(),
        "metrics": list(metric_names),
        "factor_names": list(spec.factor_names),
        "seed_reps": spec.seed_reps,
        "rows_total": len(report_rows),
        "rows_complete": complete_rows,
        "complete": complete_rows == len(report_rows) and bool(report_rows),
        "rows": report_rows,
    }


def _metric(result: RunResult, name: str) -> float:
    return float(REPORT_METRICS[name](result))


def render_markdown(report: dict) -> str:
    """The report document as a GitHub-flavored Markdown run table."""
    campaign = report["campaign"]
    factor_names = report["factor_names"]
    metric_names = report["metrics"]
    lines = [
        f"# Campaign `{campaign['name']}`",
        "",
        f"- base: protocol `{campaign['base']['protocol']}`, workload "
        f"`{campaign['base']['workload']}`, scale "
        f"`{campaign['base']['scale']['name']}`",
        f"- grid: {report['rows_total']} point(s) × {report['seed_reps']} "
        f"seed rep(s); {report['rows_complete']}/{report['rows_total']} "
        "rows complete",
        "- intervals: mean ± 95% CI (Student-t across seed reps)",
        "",
    ]
    header = [*factor_names, "reps",
              *(name.replace("_", " ") for name in metric_names)]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join(" --- " for _ in header) + "|")
    for row in report["rows"]:
        cells = [_md_value(row["factors"].get(name)) for name in factor_names]
        reps = f"{row['reps_present']}/{row['reps_expected']}"
        if not row["complete"]:
            reps += " ⚠"
        cells.append(reps)
        for name in metric_names:
            stats = row["metrics"][name]
            if stats["n"] == 0:
                cells.append("—")
            elif name.endswith("_rate"):
                mean, half = stats["mean"], stats["ci95"]
                cells.append(f"{mean:.1%} ± {half:.1%}" if half
                             else f"{mean:.1%}")
            else:
                cells.append(format_mean_ci(stats["mean"], stats["ci95"]))
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)


def _md_value(value) -> str:
    if isinstance(value, dict):
        return "`" + json.dumps(value, sort_keys=True) + "`"
    if isinstance(value, list):
        return "`" + json.dumps(value) + "`"
    return f"`{value}`"
