"""Command-line entry point: ``python -m repro.campaign <command> ...``.

Four subcommands cover the campaign lifecycle:

``compile <campaign.json> --out DIR``
    Expand a :class:`~repro.campaign.spec.CampaignSpec` file into an on-disk
    run table (manifest + cells + empty cache/claims dirs).

``run DIR [--shard i/n] [--jobs N]``
    Execute (a shard of) the campaign.  Run the same command on as many
    machines/shards as you like — they cooperate through the shared cache
    and claim files; rerunning a finished campaign executes nothing.

``status DIR [--json]``
    One line (or JSON) of progress: done / in-flight / pending cells.

``report DIR [--metrics m1,m2] [--out FILE] [--json FILE] [--summary FILE]``
    Aggregate the run table: one row per factor assignment, each metric as
    mean ± 95% CI across seed reps.  Markdown to stdout; the Markdown and
    JSON artifacts go to ``--out``/``--json``, each defaulting independently
    into ``DIR/reports/``; ``--summary`` appends the same Markdown to a file
    (point it at ``$GITHUB_STEP_SUMMARY`` in CI).
"""

from __future__ import annotations

import argparse
import json
import sys

from .executor import (
    DEFAULT_CLAIM_TTL_S,
    main_progress,
    parse_shard,
    run_campaign,
)
from .manifest import ManifestError, compile_campaign, load_manifest
from .report import (
    campaign_report,
    campaign_status,
    render_markdown,
    resolve_metrics,
)
from .spec import CampaignSpec


def _cmd_compile(args, parser) -> int:
    try:
        with open(args.campaign, "r", encoding="utf-8") as fh:
            spec = CampaignSpec.from_json_dict(json.load(fh))
    except (OSError, ValueError, TypeError) as exc:
        parser.error(f"{args.campaign}: {exc}")
    progress = None if args.quiet else main_progress()
    manifest = compile_campaign(spec, args.out, progress=progress)
    print(f"[campaign] {manifest.total_cells} cells -> {manifest.dirs.root}")
    return 0


def _cmd_run(args, parser) -> int:
    try:
        shard = parse_shard(args.shard)
    except ValueError as exc:
        parser.error(str(exc))
    manifest = load_manifest(args.directory)
    progress = None if args.quiet else main_progress()
    stats = run_campaign(
        args.directory, shard=shard, jobs=args.jobs,
        claim_ttl_s=args.claim_ttl, progress=progress, manifest=manifest,
    )
    print(f"[campaign] {manifest.name}: {stats.describe(shard)}")
    if stats.errors:
        for cell_id, message in stats.errors:
            print(f"[campaign]   failed {cell_id}: {message}", file=sys.stderr)
        return 1
    return 0


def _cmd_status(args, parser) -> int:
    status = campaign_status(args.directory)
    if args.json:
        print(json.dumps(status.to_json_dict(), indent=2, sort_keys=True))
    else:
        print(status.describe())
    # Scriptable completion check: exit 0 when done, 2 while work remains
    # (CI gates on `status` after the matrix shards join).
    return 0 if status.complete else 2


def _cmd_report(args, parser) -> int:
    metrics = None
    if args.metrics:
        try:
            metrics = resolve_metrics(
                [name.strip() for name in args.metrics.split(",") if name.strip()])
        except ValueError as exc:
            parser.error(str(exc))
    manifest = load_manifest(args.directory)
    report = campaign_report(args.directory, metrics=metrics, manifest=manifest)
    markdown = render_markdown(report)
    print(markdown)
    written = []
    # Each artifact defaults independently into the campaign's reports/
    # directory, so `--json out.json` still writes reports/report.md (and
    # `--out table.md` still writes reports/report.json).
    reports_dir = manifest.dirs.reports_dir
    md_path = args.out or str(reports_dir / "report.md")
    json_path = args.json_out or str(reports_dir / "report.json")
    if not args.out or not args.json_out:
        reports_dir.mkdir(parents=True, exist_ok=True)
    with open(md_path, "w", encoding="utf-8") as fh:
        fh.write(markdown)
    written.append(md_path)
    if args.summary and args.summary != md_path:
        with open(args.summary, "a", encoding="utf-8") as fh:
            fh.write(markdown)
        written.append(args.summary)
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    written.append(json_path)
    for path in written:
        print(f"[campaign] wrote {path}", file=sys.stderr)
    return 0 if report["complete"] else 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Compile, execute and report declarative run-table "
                    "campaigns (see examples/campaigns/).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile", help="expand a campaign JSON file into a run-table directory")
    p_compile.add_argument("campaign", help="CampaignSpec JSON file")
    p_compile.add_argument("--out", "-o", required=True, metavar="DIR",
                           help="campaign directory to create/refresh")
    p_compile.add_argument("--quiet", action="store_true",
                           help="suppress progress lines on stderr")

    p_run = sub.add_parser(
        "run", help="execute (a shard of) a compiled campaign")
    p_run.add_argument("directory", help="compiled campaign directory")
    p_run.add_argument("--shard", metavar="i/n", default=None,
                       help="run only cells with index %% n == i (0-based); "
                            "default: all cells")
    p_run.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for cell execution "
                            "(default: 1, inline)")
    p_run.add_argument("--claim-ttl", type=float, default=DEFAULT_CLAIM_TTL_S,
                       metavar="S",
                       help="seconds before another executor's claim counts "
                            f"as abandoned (default: {DEFAULT_CLAIM_TTL_S:g}; "
                            "must exceed one cell's wall time)")
    p_run.add_argument("--quiet", action="store_true",
                       help="suppress per-cell progress lines on stderr")

    p_status = sub.add_parser(
        "status", help="print campaign progress (exit 0 when complete, 2 otherwise)")
    p_status.add_argument("directory", help="compiled campaign directory")
    p_status.add_argument("--json", action="store_true",
                          help="machine-readable status document")

    p_report = sub.add_parser(
        "report", help="aggregate results: mean ± 95%% CI per run-table row")
    p_report.add_argument("directory", help="compiled campaign directory")
    p_report.add_argument("--metrics", metavar="M1,M2,...",
                          help="comma-separated RunResult metrics (default: "
                               "throughput_ktps,abort_rate,p99_latency_ms)")
    p_report.add_argument("--out", metavar="FILE",
                          help="write the Markdown table to FILE (default: "
                               "<dir>/reports/report.md)")
    p_report.add_argument("--json", dest="json_out", metavar="FILE",
                          help="write the JSON report document to FILE "
                               "(default: <dir>/reports/report.json)")
    p_report.add_argument("--summary", metavar="FILE",
                          help="append the Markdown to FILE (e.g. "
                               "$GITHUB_STEP_SUMMARY)")

    args = parser.parse_args(argv)
    if getattr(args, "jobs", 1) < 1:
        parser.error("--jobs must be >= 1")
    handler = {
        "compile": _cmd_compile,
        "run": _cmd_run,
        "status": _cmd_status,
        "report": _cmd_report,
    }[args.command]
    try:
        return handler(args, parser)
    except ManifestError as exc:
        print(f"[campaign] error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
