"""Declarative campaigns: a run table over scenario factors × seed reps.

A :class:`CampaignSpec` lifts the repo's scenario machinery one level: where
a :class:`~repro.scenario.ScenarioSpec` is *one* evaluation point, a campaign
is a named **factorial experiment** — a base scenario varied over explicit
factor levels (any axis :meth:`ScenarioSpec.derive` accepts: spec fields,
``SystemConfig`` knobs, workload config fields), with every grid point
repeated under ``seed_reps`` distinct seeds so reports can attach confidence
intervals to each row.

Like scenarios, campaigns are frozen, JSON-round-trippable and validated
**eagerly**: factor names are checked against :func:`repro.scenario.known_axes`
at construction — with did-you-mean hints — so a typo'd factor fails when the
campaign file is written, not after the first thousand cells simulated.
Factor *values* validate lazily as each cell's spec is derived (the grid is a
lazy :class:`~repro.scenario.SweepGrid`; a million-cell campaign never holds
a million specs).

The JSON form mirrors the dataclass::

    {
      "name": "contention_study",
      "base": {"protocol": "primo", "workload": "ycsb", "scale": "tiny"},
      "factors": {"protocol": ["primo", "sundial"],
                  "zipf_theta": [0.2, 0.8]},
      "seed_reps": 3
    }

See ``examples/campaigns/`` for a cookbook and :mod:`repro.campaign.manifest`
for how a campaign compiles into an on-disk run table executors share.
"""

from __future__ import annotations

import dataclasses
import json
import re
from dataclasses import dataclass, fields
from typing import Iterator, Mapping, Optional

from ..bench.orchestrator import Cell
from ..cluster.config import SystemConfig
from ..registry import UnknownNameError, suggestion_hint
from ..scenario import ScenarioSpec, SweepGrid, known_axes, sweep

__all__ = ["CampaignCell", "CampaignSpec", "DEFAULT_SEED0"]

#: Seed of the first repetition when neither the campaign nor its base
#: scenario pins one (the ``SystemConfig`` default; rep ``r`` runs seed0+r).
DEFAULT_SEED0 = SystemConfig.__dataclass_fields__["seed"].default

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass(frozen=True)
class CampaignCell:
    """One scheduled simulation of a campaign: a grid point × one seed rep.

    ``key`` is the orchestrator content key of ``spec`` — the address of this
    cell's result in the shared cache and of its claim file, identical no
    matter which executor computes it.  ``factors`` is the grid point's level
    assignment (without the seed), the grouping key reports aggregate over.
    """

    index: int            # position in manifest order (grid-major, reps inner)
    cell_id: str          # "g<grid_index>r<rep>" — human-stable within a campaign
    key: str              # content hash (Cell.cache_key) — stable across campaigns
    seed: int
    factors: tuple        # sorted (name, value) pairs, JSON-shaped values
    spec: ScenarioSpec

    @property
    def factor_dict(self) -> dict:
        return {name: value for name, value in self.factors}

    @property
    def factor_json(self) -> dict:
        """The assignment with frozen values thawed back to JSON shapes —
        what manifests serialize and :meth:`ScenarioSpec.derive` accepts
        (a frozen dict level, e.g. an arrival spec, is a tuple of pairs
        that ``derive`` would reject)."""
        return {name: _plain(_unfreeze(value)) for name, value in self.factors}

    def cell(self, campaign_name: str) -> Cell:
        """The orchestrator :class:`Cell` this campaign cell executes as."""
        return Cell(figure=f"campaign:{campaign_name}", key=self.cell_id,
                    spec=self.spec)


def _plain(value):
    if isinstance(value, tuple):
        return [_plain(item) for item in value]
    if isinstance(value, Mapping):
        return {k: _plain(v) for k, v in value.items()}
    return value


def _freeze_level(value):
    if isinstance(value, list):
        return tuple(_freeze_level(item) for item in value)
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze_level(v)) for k, v in value.items()))
    return value


@dataclass(frozen=True)
class CampaignSpec:
    """A named factorial experiment over scenarios, with seed repetitions.

    ``factors`` maps axis names (anything the base spec's
    :meth:`~repro.scenario.ScenarioSpec.derive` accepts) to their level
    lists; the run table is the full cartesian product, last factor fastest,
    each point repeated ``seed_reps`` times under seeds ``seed0 .. seed0 +
    seed_reps - 1``.  ``seed0`` defaults to the base scenario's seed override
    when present, else the ``SystemConfig`` default — so a one-rep campaign
    of a base scenario simulates *exactly* that scenario.
    """

    name: str
    base: ScenarioSpec
    factors: tuple = ()          # sorted (name, levels-tuple) pairs
    seed_reps: int = 1
    seed0: Optional[int] = None

    def __post_init__(self) -> None:
        def set_field(field_name: str, value) -> None:
            object.__setattr__(self, field_name, value)

        if not isinstance(self.name, str) or not _NAME_RE.match(self.name):
            raise ValueError(
                f"campaign name {self.name!r} must be a non-empty string of "
                "letters, digits, '.', '_' or '-' (it names files and CI "
                "artifacts)"
            )
        if not isinstance(self.base, ScenarioSpec):
            set_field("base", ScenarioSpec.from_json_dict(self.base))
        if not isinstance(self.seed_reps, int) or isinstance(self.seed_reps, bool) \
                or self.seed_reps < 1:
            raise ValueError(f"seed_reps must be an integer >= 1, got {self.seed_reps!r}")
        if self.seed0 is not None and (not isinstance(self.seed0, int)
                                       or isinstance(self.seed0, bool)):
            raise ValueError(f"seed0 must be an integer, got {self.seed0!r}")

        factors = dict(self.factors or ())
        # The seed axis belongs to the campaign's repetition machinery, not
        # the factor grid — letting it in would double-count repetitions.
        if "seed" in factors:
            raise ValueError(
                "'seed' cannot be a campaign factor; use seed_reps/seed0 — "
                "repetitions are how campaigns vary seeds"
            )
        frozen = []
        for factor, levels in factors.items():
            if isinstance(levels, (str, bytes)) or not hasattr(levels, "__iter__"):
                raise ValueError(
                    f"campaign {self.name!r}, factor {factor!r}: levels must "
                    f"be a list of values, got {levels!r}"
                )
            level_tuple = tuple(_freeze_level(level) for level in levels)
            if not level_tuple:
                raise ValueError(
                    f"campaign {self.name!r}, factor {factor!r} has no levels")
            if len(set(level_tuple)) != len(level_tuple):
                raise ValueError(
                    f"campaign {self.name!r}, factor {factor!r} repeats a level")
            frozen.append((factor, level_tuple))
        set_field("factors", tuple(sorted(frozen)))

        # Campaign-level factor validation, eagerly and with context: names
        # must be derivable axes of the base, accounting for any workloads a
        # "workload" factor switches to (its levels expand the axis set).
        frozen_map = dict(self.factors)
        workload_levels = [_unfreeze(level)
                           for level in frozen_map.get("workload", ())]
        try:
            axes = known_axes(self.base, extra_workloads=workload_levels)
        except UnknownNameError as exc:
            # A typo'd workload *level* surfaces while collecting axes; point
            # at the factor so the campaign author sees where to fix it.
            raise ValueError(
                f"campaign {self.name!r}, factor 'workload': {exc}") from None
        for factor in frozen_map:
            if factor not in axes:
                raise ValueError(
                    f"campaign {self.name!r} has unknown factor {factor!r}"
                    f"{suggestion_hint(str(factor), axes)}; factors are spec "
                    "fields, SystemConfig fields, or workload config fields"
                )

    # -- derived shape -----------------------------------------------------------
    @property
    def factor_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.factors)

    @property
    def effective_seed0(self) -> int:
        if self.seed0 is not None:
            return self.seed0
        return dict(self.base.config_overrides).get("seed", DEFAULT_SEED0)

    def grid(self) -> SweepGrid:
        """The lazy factor grid (one spec per run-table row, seeds not applied)."""
        axes = {name: [_unfreeze(level) for level in levels]
                for name, levels in self.factors}
        return sweep(self.base, **axes) if axes else sweep(self.base)

    @property
    def grid_points(self) -> int:
        points = 1
        for _, levels in self.factors:
            points *= len(levels)
        return points

    @property
    def total_cells(self) -> int:
        return self.grid_points * self.seed_reps

    def cells(self) -> Iterator[CampaignCell]:
        """Stream every scheduled cell in manifest order (grid-major).

        Derivation is lazy — each yielded cell's spec exists only while the
        consumer holds it — so compiling or scanning a huge campaign is O(1)
        in memory.  Seeds apply *after* the factor assignment, so two grid
        points share nothing but the base.
        """
        seed0 = self.effective_seed0
        index = 0
        for grid_index, (assignment, spec) in enumerate(self.grid().combinations()):
            frozen = tuple(sorted(
                (name, _freeze_level(_plain(value)))
                for name, value in assignment.items()
            ))
            for rep in range(self.seed_reps):
                seed = seed0 + rep
                seeded = spec.derive(seed=seed)
                cell_id = f"g{grid_index}r{rep}"
                yield CampaignCell(
                    index=index,
                    cell_id=cell_id,
                    key=Cell(figure=f"campaign:{self.name}", key=cell_id,
                             spec=seeded).cache_key(),
                    seed=seed,
                    factors=frozen,
                    spec=seeded,
                )
                index += 1

    # -- JSON round trip ---------------------------------------------------------
    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "base": self.base.to_json_dict(),
            "factors": {name: [_plain(_unfreeze(level)) for level in levels]
                        for name, levels in self.factors},
            "seed_reps": self.seed_reps,
            "seed0": self.seed0,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "CampaignSpec":
        if not isinstance(data, Mapping):
            raise TypeError(
                f"campaign must be a JSON object, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown campaign field(s) {', '.join(map(repr, unknown))}"
                f"{suggestion_hint(unknown[0], tuple(sorted(known)))}"
            )
        for required in ("name", "base"):
            if required not in data:
                raise ValueError(f"campaign is missing the required {required!r} field")
        kwargs = dict(data)
        kwargs["factors"] = tuple(sorted(dict(kwargs.get("factors") or {}).items()))
        if kwargs.get("seed_reps") is None:
            kwargs["seed_reps"] = 1
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_json_dict(json.loads(text))

    def canonical_json(self) -> str:
        """Key-sorted minimal JSON — the campaign's stable identity."""
        return json.dumps(self.to_json_dict(), sort_keys=True,
                          separators=(",", ":"))

    def describe(self) -> str:
        axes = ", ".join(f"{name}[{len(levels)}]" for name, levels in self.factors)
        return (
            f"campaign {self.name!r}: {self.grid_points} grid point(s)"
            f"{' (' + axes + ')' if axes else ''} × {self.seed_reps} seed "
            f"rep(s) = {self.total_cells} cells"
        )


def _unfreeze(value):
    """Invert :func:`_freeze_level`: nested pair-tuples back to dicts/lists.

    A frozen mapping is a tuple of (str, value) pairs; a frozen list is any
    other tuple.  Scalars pass through.
    """
    if isinstance(value, tuple):
        if value and all(
            isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], str)
            for item in value
        ):
            return {name: _unfreeze(item) for name, item in value}
        return [_unfreeze(item) for item in value]
    return value


# dataclasses.replace support mirrors ScenarioSpec.derive for campaigns.
def _replace(self, **changes) -> CampaignSpec:
    if "factors" in changes and isinstance(changes["factors"], Mapping):
        changes["factors"] = tuple(sorted(changes["factors"].items()))
    return dataclasses.replace(self, **changes)


CampaignSpec.replace = _replace
