"""Coordinator-free campaign execution: claims + content-keyed cache.

Any number of executors — processes on one machine (``--jobs``), separate
hosts on a shared filesystem, CI matrix shards — run the same manifest
concurrently with **no coordinator process**.  Two pieces make that safe:

Claims
    Before simulating a cell, an executor atomically creates
    ``claims/<content-key>.claim`` with ``O_CREAT | O_EXCL`` — the filesystem
    guarantees exactly one winner per key.  Losers skip the cell and move on;
    the winner releases the claim after publishing its result.  A claim whose
    mtime is older than the TTL belongs to a **dead executor** (killed
    mid-cell): reclaim goes through ``os.rename`` to a reclaimer-private
    tombstone — of N concurrent reclaimers exactly one rename succeeds, the
    winner re-checks the tombstone's age (a claim refreshed between stat and
    rename is restored, not reaped), and only that winner retries the
    ``O_CREAT | O_EXCL`` creation.  Duplicate concurrent execution is thereby
    confined to vanishing scheduling windows — and is harmless anyway:
    results are deterministic and cache writes are atomic, so concurrent
    writers publish identical bytes.  (The same applies if an executor
    simply outlives the TTL on one cell.)

Results
    The shared :class:`~repro.bench.orchestrator.ResultCache` is the only
    result store and the only completion record.  A cell is *done* iff a
    valid entry exists under its content key; executors check the cache
    before claiming, so re-running a finished campaign executes **zero**
    simulations, and a crashed executor loses at most its in-flight cells
    (their claims expire; their finished cells are already published).

Sharding (``--shard i/n``) is an optional static pre-partition by cell index
— it removes claim contention entirely when shards are disjoint by
construction (CI matrix jobs with per-shard caches), while the claim protocol
alone suffices when executors genuinely share a directory.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from ..bench.orchestrator import ResultCache, execute_cell_json
from .manifest import Manifest, load_manifest

__all__ = [
    "DEFAULT_CLAIM_TTL_S",
    "ExecutorStats",
    "parse_shard",
    "run_campaign",
    "sweep_stale_claims",
    "try_claim",
]

#: Default seconds before an unreleased claim counts as abandoned.  Must
#: comfortably exceed one cell's wall time; tiny/small-scale cells finish in
#: seconds, so 15 minutes is conservative without stranding cells for long
#: after a crash.
DEFAULT_CLAIM_TTL_S = 900.0


def parse_shard(text: Optional[str]) -> tuple[int, int]:
    """Parse ``"i/n"`` (0-based) into ``(i, n)``; ``None`` means ``(0, 1)``."""
    if text is None:
        return (0, 1)
    try:
        index_text, _, count_text = text.partition("/")
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"shard must look like 'i/n' (e.g. '0/2'), got {text!r}") from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard {text!r} out of range: need 0 <= i < n with n >= 1")
    return (index, count)


def _claim_path(claims_dir: Path, key: str) -> Path:
    return claims_dir / f"{key}.claim"


def try_claim(claims_dir: Path, key: str,
              claim_ttl_s: float = DEFAULT_CLAIM_TTL_S) -> bool:
    """Atomically claim one cell; ``True`` iff this executor now owns it.

    A live claim by someone else returns ``False``.  A stale claim (mtime
    older than ``claim_ttl_s``) is reaped with a single winner: it is
    renamed to a reclaimer-private tombstone (only one concurrent rename
    can succeed; the losers back off), the tombstone's age is re-checked —
    a claim refreshed between the stat and the rename is renamed back, not
    reaped — and only the reclaimer that removed a genuinely stale claim
    retries the ``O_CREAT | O_EXCL`` creation.
    """
    claims_dir.mkdir(parents=True, exist_ok=True)
    path = _claim_path(claims_dir, key)
    payload = json.dumps({
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "claimed_at": time.time(),
    })
    for attempt in range(2):
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            if attempt:
                return False
            try:
                age = time.time() - path.stat().st_mtime
            except OSError:
                continue  # released between open and stat: retry the claim
            if age < claim_ttl_s:
                return False
            if not _reap_claim(path, claim_ttl_s):
                return False  # another reclaimer won the race; not our cell
            continue
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(payload)
        return True
    return False


def _reap_claim(path: Path, claim_ttl_s: float) -> bool:
    """Remove one stale claim with a single winner; ``True`` iff we did.

    Plain unlink-then-retry lets two reclaimers both "succeed": B stats the
    stale claim, A reaps it and ``O_EXCL``-creates a fresh one, then B
    unlinks A's *fresh* claim and claims too.  Renaming first closes that:
    exactly one rename of the claim succeeds (everyone else gets ENOENT and
    backs off), and the winner — now sole owner of the tombstone — re-checks
    its age, renaming a claim that turned out fresh back into place instead
    of reaping it.
    """
    tombstone = path.with_name(f"{path.name}.reap{os.getpid()}")
    try:
        os.rename(path, tombstone)
    except OSError:
        return False  # already reaped (or released) by someone else
    try:
        stale = time.time() - tombstone.stat().st_mtime >= claim_ttl_s
    except OSError:
        return False  # tombstone gone (swept concurrently): treat as lost
    if not stale:
        # The stat that sent us here saw a different, older claim file; we
        # grabbed a live one — put it back untouched and back off.
        try:
            os.rename(tombstone, path)
        except OSError:
            pass
        return False
    try:
        os.unlink(tombstone)
    except OSError:
        pass
    return True


def release_claim(claims_dir: Path, key: str) -> None:
    try:
        _claim_path(claims_dir, key).unlink()
    except OSError:
        pass


def sweep_stale_claims(claims_dir, claim_ttl_s: float = DEFAULT_CLAIM_TTL_S,
                       dry_run: bool = False) -> tuple[int, int]:
    """Remove expired claim files; returns ``(count, bytes_reclaimed)``.

    Executors reclaim lazily (only for cells they visit), so a campaign
    abandoned mid-run can leave dead claims behind; ``scripts/cache_gc.py
    --claims`` sweeps them eagerly.  Reap tombstones orphaned by a reclaimer
    killed mid-reap age out the same way.  Live claims are never touched.
    """
    claims_dir = Path(claims_dir)
    swept = 0
    bytes_reclaimed = 0
    if not claims_dir.is_dir():
        return (0, 0)
    now = time.time()
    for path in sorted(claims_dir.glob("*.claim")) + \
            sorted(claims_dir.glob("*.claim.reap*")):
        try:
            stat = path.stat()
            if now - stat.st_mtime < claim_ttl_s:
                continue
            if not dry_run:
                path.unlink()
            swept += 1
            bytes_reclaimed += stat.st_size
        except OSError:
            continue  # claimed/released concurrently; fine
    return (swept, bytes_reclaimed)


@dataclass
class ExecutorStats:
    """Accounting for one executor pass over a manifest."""

    total_cells: int = 0       # manifest lines visited
    executed: int = 0          # simulations this executor ran
    cache_hits: int = 0        # cells already published when visited
    skipped_claimed: int = 0   # cells another live executor owned
    skipped_shard: int = 0     # cells outside this executor's shard
    reclaimed: int = 0         # expired claims this executor reaped
    wall_s: float = 0.0
    errors: list = field(default_factory=list)  # (cell_id, message) pairs

    @property
    def completed_here(self) -> int:
        return self.executed + self.cache_hits

    def describe(self, shard: tuple[int, int]) -> str:
        parts = [
            f"{self.total_cells} cells",
            f"{self.executed} executed",
            f"{self.cache_hits} cached",
        ]
        if shard != (0, 1):
            parts.append(f"{self.skipped_shard} other-shard")
        if self.skipped_claimed:
            parts.append(f"{self.skipped_claimed} claimed elsewhere")
        if self.reclaimed:
            parts.append(f"{self.reclaimed} stale claims reclaimed")
        if self.errors:
            parts.append(f"{len(self.errors)} FAILED")
        return f"shard {shard[0]}/{shard[1]}: " + ", ".join(parts) + \
               f" in {self.wall_s:.1f}s"


def run_campaign(directory, shard: tuple[int, int] = (0, 1), jobs: int = 1,
                 claim_ttl_s: float = DEFAULT_CLAIM_TTL_S,
                 progress: Optional[Callable[[str], None]] = None,
                 manifest: Optional[Manifest] = None) -> ExecutorStats:
    """Execute (this shard of) a compiled campaign until no work remains.

    Streams the manifest once: for each cell in this shard, check the shared
    cache (done → skip), try to claim (lost → skip; someone live owns it),
    else simulate — inline with ``jobs=1``, or on a bounded process pool —
    publish to the cache, and release the claim.  Everything is idempotent:
    rerunning a finished campaign streams straight through on cache hits.

    A cell whose simulation *raises* is recorded in ``stats.errors`` and its
    claim released so another executor (or a rerun) can retry; the executor
    keeps going — one poisoned cell must not strand a million-cell campaign.
    """
    manifest = manifest if manifest is not None else load_manifest(directory)
    manifest.check_substrate()
    shard_index, shard_count = shard
    if not 0 <= shard_index < shard_count:
        raise ValueError(f"shard index {shard_index} out of range for "
                         f"{shard_count} shard(s)")
    notify = progress or (lambda message: None)
    cache = ResultCache(manifest.dirs.cache_dir)
    claims_dir = manifest.dirs.claims_dir
    stats = ExecutorStats()
    start = time.perf_counter()

    def publish(cell, result_json: dict, key: str) -> None:
        cache.put(cell, result_json)
        release_claim(claims_dir, key)
        stats.executed += 1
        notify(f"finished   {cell.cell_id}")

    def fail(cell_id: str, key: str, exc: BaseException) -> None:
        stats.errors.append((cell_id, f"{type(exc).__name__}: {exc}"))
        release_claim(claims_dir, key)
        notify(f"FAILED     {cell_id}: {exc}")

    pool = ProcessPoolExecutor(max_workers=jobs) if jobs > 1 else None
    in_flight: dict = {}  # future -> (orchestrator cell, content key)
    try:
        for manifest_cell in manifest.iter_cells():
            stats.total_cells += 1
            if manifest_cell.index % shard_count != shard_index:
                stats.skipped_shard += 1
                continue
            key = manifest_cell.key
            if cache.contains_key(key):
                stats.cache_hits += 1
                continue
            claim_existed = _claim_path(claims_dir, key).exists()
            if not try_claim(claims_dir, key, claim_ttl_s):
                stats.skipped_claimed += 1
                notify(f"claimed    {manifest_cell.cell_id} (by another executor)")
                continue
            if claim_existed:
                stats.reclaimed += 1
            # Claimed after the cache check — but a reclaimed cell may have
            # been published by its dying owner; recheck before simulating.
            if cache.contains_key(key):
                release_claim(claims_dir, key)
                stats.cache_hits += 1
                continue
            try:
                cell = manifest.derive_cell(manifest_cell)
            except Exception:
                release_claim(claims_dir, key)
                raise  # derivation drift poisons every cell: stop loudly
            notify(f"running    {cell.cell_id}")
            if pool is None:
                try:
                    publish(cell, execute_cell_json(cell), key)
                except Exception as exc:  # noqa: BLE001 — isolate poisoned cells
                    fail(cell.cell_id, key, exc)
                continue
            in_flight[pool.submit(execute_cell_json, cell)] = (cell, key)
            # Bound in-flight work so a huge manifest streams instead of
            # enqueueing (and claiming!) every remaining cell at once.
            while len(in_flight) >= 2 * jobs:
                _drain_one(in_flight, publish, fail)
        while in_flight:
            _drain_one(in_flight, publish, fail)
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
            # Anything still claimed but never published (pool torn down by
            # an exception) goes back to the table.
            for cell, key in in_flight.values():
                release_claim(claims_dir, key)
    stats.wall_s = time.perf_counter() - start
    return stats


def _drain_one(in_flight: dict, publish, fail) -> None:
    done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
    for future in done:
        cell, key = in_flight.pop(future)
        try:
            publish(cell, future.result(), key)
        except Exception as exc:  # noqa: BLE001 — isolate poisoned cells
            fail(cell.cell_id, key, exc)


def main_progress(stream=None) -> Callable[[str], None]:
    """The default ``[campaign] ...`` progress printer (stderr)."""
    stream = stream if stream is not None else sys.stderr

    def notify(message: str) -> None:
        print(f"[campaign] {message}", file=stream)

    return notify
