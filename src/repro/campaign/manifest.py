"""The on-disk campaign run table shared by every cooperating executor.

Compiling a :class:`~repro.campaign.spec.CampaignSpec` produces a directory::

    <campaign-dir>/
      manifest.json     # campaign spec + shape + substrate version (written last)
      cells.jsonl       # one line per scheduled cell, in manifest order
      cache/            # shared ResultCache — the only result store
      claims/           # executor claim files (see repro.campaign.executor)
      reports/          # rendered status/report artifacts

``cells.jsonl`` lines are deliberately *lean* — index, cell id, content key,
seed, factor assignment — and do **not** embed the derived scenario JSON: an
executor re-derives each spec from the manifest's base + factors only for
cells it actually runs, so scanning a million-line manifest for status (or
skipping straight past cached cells) never constructs a spec.  The recorded
content key doubles as an integrity check: a derived spec whose key disagrees
with the manifest means the code that derived it has drifted from the code
that compiled it, and the executor refuses rather than poisoning the cache.

Compilation streams (O(1) memory) and writes ``manifest.json`` *last*, so a
directory with a manifest is always a complete run table — an interrupted
compile leaves no manifest and is simply re-run.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional

from ..bench.orchestrator import SUBSTRATE_VERSION, Cell
from .spec import CampaignSpec

__all__ = [
    "CampaignDirs",
    "Manifest",
    "ManifestCell",
    "ManifestError",
    "MANIFEST_SCHEMA_VERSION",
    "compile_campaign",
    "load_manifest",
]

#: Version of the manifest directory format.  v1: manifest.json + cells.jsonl
#: with lean per-cell lines keyed by orchestrator content hashes.
MANIFEST_SCHEMA_VERSION = 1


class ManifestError(RuntimeError):
    """A campaign directory is missing, incomplete, or version-skewed."""


@dataclass(frozen=True)
class CampaignDirs:
    """The fixed layout of a compiled campaign directory."""

    root: Path

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @property
    def cells_path(self) -> Path:
        return self.root / "cells.jsonl"

    @property
    def cache_dir(self) -> Path:
        return self.root / "cache"

    @property
    def claims_dir(self) -> Path:
        return self.root / "claims"

    @property
    def reports_dir(self) -> Path:
        return self.root / "reports"


@dataclass(frozen=True)
class ManifestCell:
    """One ``cells.jsonl`` line: everything needed to claim, find, or group
    a cell — but not its spec, which is derived on demand.

    ``factors`` holds plain JSON-shaped values (dicts/lists/scalars, never
    the campaign's internal frozen tuples), so :meth:`Manifest.derive_cell`
    can feed them straight to :meth:`ScenarioSpec.derive` — dict-valued
    levels like arrival specs or workload mixes included."""

    index: int
    cell_id: str
    key: str
    seed: int
    factors: dict

    def to_json_line(self) -> str:
        return json.dumps(
            {"index": self.index, "id": self.cell_id, "key": self.key,
             "seed": self.seed, "factors": self.factors},
            sort_keys=True, separators=(",", ":"),
        )

    @classmethod
    def from_json_line(cls, line: str, lineno: int, path) -> "ManifestCell":
        try:
            data = json.loads(line)
            return cls(index=int(data["index"]), cell_id=str(data["id"]),
                       key=str(data["key"]), seed=int(data["seed"]),
                       factors=dict(data["factors"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(
                f"{path}:{lineno}: corrupt manifest cell line ({exc})") from None


class Manifest:
    """A loaded campaign manifest: the spec, the shape, and a cell stream."""

    def __init__(self, dirs: CampaignDirs, spec: CampaignSpec,
                 total_cells: int, substrate_version: str) -> None:
        self.dirs = dirs
        self.spec = spec
        self.total_cells = total_cells
        self.substrate_version = substrate_version

    @property
    def name(self) -> str:
        return self.spec.name

    def check_substrate(self) -> None:
        """Refuse to execute a manifest compiled against different physics.

        The manifest's content keys hash the substrate version, so a skewed
        executor would miss every cache entry and re-simulate the campaign
        under semantics its report would mislabel.  Recompile instead.
        """
        if self.substrate_version != SUBSTRATE_VERSION:
            raise ManifestError(
                f"manifest {self.dirs.manifest_path} was compiled for "
                f"substrate {self.substrate_version} but this checkout is "
                f"{SUBSTRATE_VERSION}; recompile the campaign "
                "(python -m repro.campaign compile ...)"
            )

    def iter_cells(self) -> Iterator[ManifestCell]:
        """Stream the run table in manifest order (O(1) memory)."""
        with open(self.dirs.cells_path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if line:
                    yield ManifestCell.from_json_line(line, lineno,
                                                      self.dirs.cells_path)

    def derive_cell(self, manifest_cell: ManifestCell) -> Cell:
        """Rebuild the runnable orchestrator cell for one manifest line.

        The spec is re-derived from the campaign base + the line's factor
        assignment + its seed; the resulting content key must equal the
        compiled one — a mismatch means spec derivation or serialization
        semantics changed without a substrate version bump.
        """
        spec = self.spec.base.derive(**manifest_cell.factors).derive(
            seed=manifest_cell.seed)
        cell = Cell(figure=f"campaign:{self.name}", key=manifest_cell.cell_id,
                    spec=spec)
        derived_key = cell.cache_key()
        if derived_key != manifest_cell.key:
            raise ManifestError(
                f"cell {manifest_cell.cell_id} of campaign {self.name!r} "
                f"derives content key {derived_key} but the manifest recorded "
                f"{manifest_cell.key}; the checkout's scenario semantics have "
                "drifted from the compiled manifest — recompile the campaign"
            )
        return cell


def compile_campaign(spec: CampaignSpec, directory,
                     progress: Optional[Callable[[str], None]] = None) -> Manifest:
    """Expand a campaign into its on-disk run table (streaming, atomic-ish).

    Safe to re-run: recompiling the *same* campaign into the same directory
    rewrites identical files (content keys are deterministic), and results
    already in ``cache/`` remain valid because they are addressed by content,
    not by position.  Compiling a *different* campaign into a directory that
    already has a manifest is refused — that would silently orphan the old
    run table's claims and reports.
    """
    dirs = CampaignDirs(Path(directory))
    notify = progress or (lambda message: None)
    if dirs.manifest_path.exists():
        try:
            with open(dirs.manifest_path, "r", encoding="utf-8") as fh:
                existing = json.load(fh)
            same = existing.get("campaign") == spec.to_json_dict()
        except (OSError, ValueError):
            same = False  # corrupt manifest: overwrite it
        if not same and _has_state(dirs):
            raise ManifestError(
                f"{dirs.root} already holds a different campaign's manifest; "
                "compile into a fresh directory (or delete the old one)"
            )
    dirs.root.mkdir(parents=True, exist_ok=True)
    dirs.cache_dir.mkdir(exist_ok=True)
    dirs.claims_dir.mkdir(exist_ok=True)
    dirs.reports_dir.mkdir(exist_ok=True)

    total = 0
    fd, tmp_path = tempfile.mkstemp(dir=dirs.root, prefix=".tmp-cells-",
                                    suffix=".jsonl")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            for campaign_cell in spec.cells():
                line = ManifestCell(
                    index=campaign_cell.index,
                    cell_id=campaign_cell.cell_id,
                    key=campaign_cell.key,
                    seed=campaign_cell.seed,
                    factors=campaign_cell.factor_json,
                ).to_json_line()
                fh.write(line + "\n")
                total += 1
                if total % 10_000 == 0:
                    notify(f"compiled {total} cells...")
        os.replace(tmp_path, dirs.cells_path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise

    manifest_doc = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "name": spec.name,
        "substrate_version": SUBSTRATE_VERSION,
        "campaign": spec.to_json_dict(),
        "total_cells": total,
        "grid_points": spec.grid_points,
        "seed_reps": spec.seed_reps,
        "factor_names": list(spec.factor_names),
    }
    fd, tmp_path = tempfile.mkstemp(dir=dirs.root, prefix=".tmp-manifest-",
                                    suffix=".json")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(manifest_doc, fh, indent=2, sort_keys=True)
        os.replace(tmp_path, dirs.manifest_path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    notify(f"compiled {spec.describe()} -> {dirs.root}")
    return Manifest(dirs, spec, total, SUBSTRATE_VERSION)


def _has_state(dirs: CampaignDirs) -> bool:
    """Whether a campaign directory holds anything an overwrite would orphan."""
    for sub in (dirs.cache_dir, dirs.claims_dir):
        if sub.is_dir() and any(sub.iterdir()):
            return True
    return False


def load_manifest(directory) -> Manifest:
    """Open a compiled campaign directory, validating shape and versions."""
    dirs = CampaignDirs(Path(directory))
    if not dirs.manifest_path.is_file():
        raise ManifestError(
            f"{dirs.root} has no manifest.json; compile the campaign first "
            "(python -m repro.campaign compile <campaign.json> --out "
            f"{dirs.root})"
        )
    try:
        with open(dirs.manifest_path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ManifestError(f"{dirs.manifest_path}: unreadable ({exc})") from None
    if not isinstance(doc, dict) or doc.get("schema") != MANIFEST_SCHEMA_VERSION:
        raise ManifestError(
            f"{dirs.manifest_path}: unsupported manifest schema "
            f"{doc.get('schema') if isinstance(doc, dict) else doc!r} "
            f"(this checkout reads v{MANIFEST_SCHEMA_VERSION})"
        )
    try:
        spec = CampaignSpec.from_json_dict(doc["campaign"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ManifestError(
            f"{dirs.manifest_path}: invalid campaign spec ({exc})") from None
    if not dirs.cells_path.is_file():
        raise ManifestError(
            f"{dirs.root} has a manifest but no cells.jsonl; recompile")
    return Manifest(dirs, spec, int(doc.get("total_cells", 0)),
                    str(doc.get("substrate_version", "")))
