"""Campaigns: declarative run-table experiments over the scenario grid.

The repo's third orchestration layer.  Where :mod:`repro.scenario` runs one
evaluation point and :mod:`repro.bench` sweeps the paper's fixed figures,
a **campaign** is a user-defined factorial experiment: a base scenario ×
explicit factor levels × seed repetitions, compiled to an on-disk run table
that any number of cooperating executors — local processes, CI matrix
shards, hosts on a shared filesystem — complete together with no
coordinator, then reduced to a statistical report (mean ± 95% CI per row).

    python -m repro.campaign compile experiment.json --out runs/exp
    python -m repro.campaign run runs/exp --shard 0/2 --jobs 4   # host A
    python -m repro.campaign run runs/exp --shard 1/2 --jobs 4   # host B
    python -m repro.campaign status runs/exp
    python -m repro.campaign report runs/exp --out report.md

Crash-safe and idempotent by construction: results live in a content-keyed
:class:`~repro.bench.orchestrator.ResultCache`, in-flight cells are guarded
by expiring claim files, and re-running a finished campaign executes zero
simulations.  See ``examples/campaigns/`` and the README's "Running
campaigns" section.
"""

from .executor import (
    DEFAULT_CLAIM_TTL_S,
    ExecutorStats,
    parse_shard,
    run_campaign,
    sweep_stale_claims,
)
from .manifest import (
    MANIFEST_SCHEMA_VERSION,
    CampaignDirs,
    Manifest,
    ManifestError,
    compile_campaign,
    load_manifest,
)
from .report import (
    DEFAULT_METRICS,
    REPORT_METRICS,
    CampaignStatus,
    campaign_report,
    campaign_status,
    render_markdown,
)
from .spec import CampaignCell, CampaignSpec

__all__ = [
    "DEFAULT_CLAIM_TTL_S",
    "DEFAULT_METRICS",
    "MANIFEST_SCHEMA_VERSION",
    "REPORT_METRICS",
    "CampaignCell",
    "CampaignDirs",
    "CampaignSpec",
    "CampaignStatus",
    "ExecutorStats",
    "Manifest",
    "ManifestError",
    "campaign_report",
    "campaign_status",
    "compile_campaign",
    "load_manifest",
    "parse_shard",
    "render_markdown",
    "run_campaign",
    "sweep_stale_claims",
]
