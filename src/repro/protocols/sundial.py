"""Sundial: TicToc-based distributed concurrency control + 2PC.

Sundial (Yu et al., VLDB'18) extends TicToc's logical leases to distributed
transactions.  Reads take no locks and record the observed ``[wts, rts]``
lease; at commit a 2PC round locks the write-set, computes the commit
timestamp from the lease constraints, and renews (extends) the leases of the
read records on every involved partition.  Lease renewal is what makes Sundial
the strongest 2PC-based baseline in the paper: like Primo it rarely aborts
local readers, but unlike Primo it still pays the two 2PC round trips inside
the contention footprint.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from ..commit.logging import LogRecordKind
from ..core.tictoc import compute_commit_ts
from ..storage.lock import LockMode, LockPolicy
from ..txn.context import TxnContext
from ..txn.transaction import (
    AbortReason,
    ReadEntry,
    Transaction,
    TxnAborted,
    UserAbort,
    WriteEntry,
)
from ..registry import register_protocol
from .base import BaseProtocol, install_write_entries
from .two_pc import TwoPhaseCommitMixin

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.server import Server

__all__ = ["SundialProtocol", "SundialContext"]


class SundialContext(TxnContext):
    """Lease-stamped OCC reads; writes buffered."""

    def __init__(self, protocol, server, txn):
        super().__init__(protocol, server, txn)
        self.records: dict = {}

    def _protocol_read(self, partition: int, table: str, key) -> Generator:
        cost = self.protocol.config.cpu_record_access_us
        if cost > 0:
            yield self.env.timeout(cost)
        existing = self.txn.find_read(partition, table, key)
        if existing is not None:
            return dict(existing.value)
        if self.is_local(partition):
            record = self.server.store.table(table).get(key)
            if record is None:
                raise TxnAborted(AbortReason.VALIDATION, f"missing record {table}:{key}")
            entry = ReadEntry(
                partition=partition, table=table, key=key,
                value=record.snapshot(), wts=record.wts, rts=record.rts,
                version=record.version, locked=False, local=True,
            )
            self.records[(partition, table, key)] = record
            self.txn.add_read(entry)
            if self.txn.lower_bound_ts == 0.0:
                self.txn.lower_bound_ts = max(record.wts, self.server.ts_floor + 1)
            return entry.value
        status, value, wts, rts = yield from self.protocol.remote_read(
            self.server, self.txn, partition, table, key
        )
        if status != "ok":
            raise TxnAborted(AbortReason.VALIDATION, f"remote read {table}:{key}")
        entry = ReadEntry(
            partition=partition, table=table, key=key,
            value=value, wts=wts, rts=rts, locked=False, local=False,
        )
        self.txn.add_read(entry)
        return value

    def _protocol_write(self, entry: WriteEntry) -> Generator:
        cost = self.protocol.config.cpu_record_access_us
        if cost > 0:
            yield self.env.timeout(cost)
        self.txn.add_write(entry)


@register_protocol("sundial", default_durability="coco",
                   description="TicToc-based (Sundial) + 2PC")
class SundialProtocol(TwoPhaseCommitMixin, BaseProtocol):
    name = "sundial"
    lock_policy = LockPolicy.WAIT_DIE

    def create_context(self, server: "Server", txn: Transaction) -> SundialContext:
        return SundialContext(self, server, txn)

    def run_transaction(self, server: "Server", txn: Transaction,
                        logic: Callable[[TxnContext], Generator]) -> Generator:
        try:
            context = yield from self._execute_logic(server, txn, logic)
            txn.execute_end_time = self.env.now
            if txn.is_distributed:
                yield from self.run_two_phase_commit(server, txn, context)
            else:
                yield from self._commit_single_partition(server, txn, context)
            txn.commit_end_time = self.env.now
            return True
        except UserAbort:
            self._cleanup_abort(server, txn)
            txn.abort_reason = AbortReason.USER
            return False
        except TxnAborted as aborted:
            self._cleanup_abort(server, txn)
            if txn.abort_reason is None:
                txn.abort_reason = aborted.reason
            return False

    # -- execution-phase remote read ----------------------------------------------------
    def remote_read(self, server: "Server", txn: Transaction, partition: int,
                    table: str, key) -> Generator:
        target = self.server_of(partition)

        def handler():
            if target.crashed:
                return ("crashed", None, 0.0, 0.0)
            record = target.store.table(table).get(key)
            if record is None:
                return ("missing", None, 0.0, 0.0)
            return ("ok", record.snapshot(), record.wts, record.rts)

        result = yield from self.network.rpc(server.partition_id, partition, handler)
        return result

    # -- commit-timestamp + validation ------------------------------------------------------
    def choose_commit_ts(self, server: "Server", txn: Transaction, context) -> float:
        return compute_commit_ts(txn, server.ts_floor)

    def _lock_and_renew(self, server: "Server", txn: Transaction, writes: list,
                        reads: list, commit_ts: float) -> Generator:
        """Sundial prepare work at one partition: lock writes, renew read leases."""
        lock_manager = server.store.lock_manager
        for entry in sorted(writes, key=lambda w: (w.table, str(w.key))):
            record = server.store.table(entry.table).get(entry.key)
            if record is None:
                if entry.is_insert:
                    continue
                return False
            ok = lock_manager.acquire_nowait(txn.tid, record, LockMode.EXCLUSIVE)
            if type(ok) is not bool:
                ok = yield ok
            if not ok:
                return False
        written = {(w.table, w.key) for w in writes}
        for entry in reads:
            record = server.store.table(entry.table).get(entry.key)
            if record is None:
                return False
            if record.wts != entry.wts:
                return False
            if (entry.table, entry.key) in written:
                continue
            if commit_ts <= record.rts:
                continue
            holders = lock_manager.holders_of(record)
            if any(holder != txn.tid for holder in holders):
                return False
            record.extend_rts(commit_ts)
        yield from self.cpu(self.config.cpu_record_access_us * max(1, len(writes) + len(reads)))
        return True

    # -- single-partition fast path (plain TicToc) --------------------------------------------
    def _commit_single_partition(self, server: "Server", txn: Transaction, context) -> Generator:
        commit_start = self.env.now
        commit_ts = compute_commit_ts(txn, server.ts_floor)
        txn.ts = commit_ts
        ok = yield from self._lock_and_renew(
            server, txn,
            txn.writes_for_partition(server.partition_id),
            txn.reads_for_partition(server.partition_id),
            commit_ts,
        )
        if not ok:
            self._abort(txn, AbortReason.VALIDATION, "sundial local validation")
        install_write_entries(server, txn, txn.write_set, commit_ts)
        server.store.lock_manager.release_all(txn.tid)
        server.note_ts(commit_ts)
        txn.add_breakdown("commit", self.env.now - commit_start)

    # -- 2PC hooks ------------------------------------------------------------------------------
    def prepare_local(self, server: "Server", txn: Transaction, context) -> Generator:
        ok = yield from self._lock_and_renew(
            server, txn,
            txn.writes_for_partition(server.partition_id),
            txn.reads_for_partition(server.partition_id),
            txn.ts,
        )
        return ok

    def prepare_participant(self, participant: "Server", txn: Transaction,
                            writes: list, reads: list, commit_ts) -> Generator:
        if participant.crashed:
            return False
        ok = yield from self._lock_and_renew(participant, txn, writes, reads, commit_ts)
        if ok:
            participant.log.append(LogRecordKind.PREPARE, txn_ts=commit_ts, txn_tid=txn.tid)
        return ok

    def commit_local(self, server: "Server", txn: Transaction, context, commit_ts) -> Generator:
        local_writes = txn.writes_for_partition(server.partition_id)
        yield from self.cpu(self.config.cpu_record_access_us * max(1, len(local_writes)))
        install_write_entries(server, txn, local_writes, commit_ts)
        server.store.lock_manager.release_all(txn.tid)

    def commit_participant(self, participant: "Server", txn: Transaction,
                           writes: list, reads: list, commit_ts) -> Generator:
        if participant.crashed:
            return
        yield from self.cpu(self.config.cpu_record_access_us * max(1, len(writes)))
        install_write_entries(participant, txn, writes, commit_ts)
        participant.store.lock_manager.release_all(txn.tid)
        participant.note_ts(commit_ts)

    def _cleanup_abort(self, server: "Server", txn: Transaction) -> None:
        server.store.lock_manager.release_all(txn.tid)
        for partition in txn.participants:
            participant = self.server_of(partition)
            self.network.send(
                server.partition_id, partition, self.abort_participant, participant, txn
            )
