"""Concurrency-control protocols: Primo and the six baselines of §6.1.1."""

from .aria import AriaProtocol
from .base import BaseProtocol, install_write_entries
from .silo import SiloProtocol
from .sundial import SundialProtocol
from .tapir import TapirProtocol
from .two_pc import TwoPhaseCommitMixin
from .two_pl import TwoPLNoWaitProtocol, TwoPLWaitDieProtocol

__all__ = [
    "AriaProtocol",
    "BaseProtocol",
    "SiloProtocol",
    "SundialProtocol",
    "TapirProtocol",
    "TwoPhaseCommitMixin",
    "TwoPLNoWaitProtocol",
    "TwoPLWaitDieProtocol",
    "install_write_entries",
    "create_protocol",
]


def create_protocol(name: str, cluster) -> BaseProtocol:
    """Factory used by the cluster to instantiate the configured protocol."""
    from ..core.primo import PrimoProtocol

    protocols = {
        "primo": PrimoProtocol,
        "2pl_nw": TwoPLNoWaitProtocol,
        "2pl_wd": TwoPLWaitDieProtocol,
        "silo": SiloProtocol,
        "sundial": SundialProtocol,
        "aria": AriaProtocol,
        "tapir": TapirProtocol,
    }
    try:
        return protocols[name](cluster)
    except KeyError as exc:
        raise ValueError(f"unknown protocol {name!r}") from exc
