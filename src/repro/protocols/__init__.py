"""Concurrency-control protocols: Primo and the six baselines of §6.1.1."""

from .aria import AriaProtocol
from .base import BaseProtocol, install_write_entries
from .silo import SiloProtocol
from .sundial import SundialProtocol
from .tapir import TapirProtocol
from .two_pc import TwoPhaseCommitMixin
from .two_pl import TwoPLNoWaitProtocol, TwoPLWaitDieProtocol

__all__ = [
    "AriaProtocol",
    "BaseProtocol",
    "SiloProtocol",
    "SundialProtocol",
    "TapirProtocol",
    "TwoPhaseCommitMixin",
    "TwoPLNoWaitProtocol",
    "TwoPLWaitDieProtocol",
    "install_write_entries",
    "create_protocol",
]


def create_protocol(name: str, cluster) -> BaseProtocol:
    """Factory used by the cluster to instantiate the configured protocol."""
    from ..registry import PROTOCOL_REGISTRY

    return PROTOCOL_REGISTRY.get(name)(cluster)
