"""Protocol interface and the helpers shared by every concurrency-control scheme.

A protocol is instantiated once per cluster and is given the coordinating
server plus the transaction whenever the worker loop runs an attempt:

    outcome = yield from protocol.run_transaction(server, txn, logic)

``logic`` is the workload's transaction body (a generator taking a
:class:`~repro.txn.context.TxnContext`).  The returned outcome is ``True`` for
commit and ``False`` for abort; on abort ``txn.abort_reason`` says why, which
the worker uses to decide whether to retry.

Shared helpers implemented here:

* routing (which server owns a partition, local vs. remote),
* the write-set installer used by every protocol's commit phase (applies
  updates/inserts/deletes, bumps TicToc timestamps, collects before-images and
  appends the partition's redo/undo log record),
* remote index lookups,
* per-operation CPU cost accounting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Iterable

from ..storage.lock import LockPolicy
from ..storage.table import TableError
from ..txn.context import TxnContext
from ..txn.transaction import AbortReason, Transaction, TxnAborted, WriteEntry

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster
    from ..cluster.server import Server

__all__ = ["BaseProtocol", "install_write_entries"]


def install_write_entries(server: "Server", txn: Transaction, entries: Iterable[WriteEntry],
                          commit_ts: float, log: bool = True) -> dict:
    """Apply a transaction's buffered writes to one partition's storage.

    Returns the before-images (key -> previous value or ``None`` for inserts)
    and, when ``log`` is true, appends the partition's redo/undo record so the
    durability scheme can persist it.
    """
    before_images: dict = {}
    entries = list(entries)
    for entry in entries:
        table = server.store.table(entry.table)
        if entry.is_insert:
            before_images[(entry.table, entry.key)] = None
            try:
                record = table.insert(entry.key, entry.updates)
            except TableError:
                # The record exists (e.g. a retried attempt already inserted
                # it); treat as an overwrite so retries stay idempotent.
                record = table.require(entry.key)
                record.install_fields(entry.updates, commit_ts)
                continue
            record.wts = commit_ts
            record.rts = commit_ts
        elif entry.is_delete:
            record = table.get(entry.key)
            if record is not None:
                before_images[(entry.table, entry.key)] = record.snapshot()
                table.delete(entry.key)
        else:
            record = table.require(entry.key)
            before_images[(entry.table, entry.key)] = record.snapshot()
            record.install_fields(entry.updates, commit_ts)
    if log and entries:
        server.log.append_writeset(txn, entries, before_images)
    return before_images


class BaseProtocol:
    """Abstract protocol; subclasses implement the context and commit path."""

    name = "base"
    #: Lock policy installed on every partition's lock manager.
    lock_policy = LockPolicy.WAIT_DIE
    #: Aria replaces the per-worker closed loop with its own batch runner.
    runs_own_loop = False

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.env = cluster.env
        self.config = cluster.config
        self.network = cluster.network

    # -- topology helpers ---------------------------------------------------
    def server_of(self, partition: int) -> "Server":
        return self.cluster.servers[partition]

    def cpu(self, duration_us: float) -> Generator:
        """Charge CPU time on the coordinator's critical path."""
        if duration_us > 0:
            yield self.env.timeout(duration_us)

    # -- operations shared by all contexts ------------------------------------
    def index_lookup(self, server: "Server", txn: Transaction, partition: int,
                     table: str, index: str, index_key) -> Generator:
        """Secondary-index lookup (not transactionally protected, like DBx1000)."""
        yield from self.cpu(self.config.cpu_record_access_us)
        if partition == server.partition_id:
            return server.store.table(table).index_lookup(index, index_key)
        target = self.server_of(partition)

        def remote_lookup():
            return target.store.table(table).index_lookup(index, index_key)

        keys = yield from self.network.rpc(server.partition_id, partition, remote_lookup)
        return keys

    # -- protocol interface --------------------------------------------------
    def create_context(self, server: "Server", txn: Transaction) -> TxnContext:
        raise NotImplementedError

    def run_transaction(self, server: "Server", txn: Transaction,
                        logic: Callable[[TxnContext], Generator]) -> Generator:
        """Run one attempt; returns True on commit, False on abort."""
        raise NotImplementedError

    # -- common execution-phase driver ------------------------------------------
    def _execute_logic(self, server: "Server", txn: Transaction,
                       logic: Callable[[TxnContext], Generator]) -> Generator:
        """Drive the workload logic with this protocol's context.

        Charges the per-transaction compute cost and lets :class:`TxnAborted`
        propagate to the caller (which performs protocol-specific cleanup).
        """
        context = self.create_context(server, txn)
        cost = self.config.cpu_txn_logic_us
        if cost > 0:
            yield self.env.timeout(cost)
        yield from logic(context)
        return context

    # -- abort helpers ------------------------------------------------------------
    def _abort(self, txn: Transaction, reason: AbortReason, detail: str = "") -> None:
        txn.abort_reason = reason
        raise TxnAborted(reason, detail)

    def release_locks_everywhere(self, txn: Transaction) -> None:
        """Best-effort lock release on every partition (abort/crash cleanup)."""
        for partition in txn.all_partitions():
            server = self.server_of(partition)
            server.store.lock_manager.release_all(txn.tid)
