"""TAPIR (simplified): co-designed atomic commit + inconsistent replication.

TAPIR (Zhang et al., TOCS'18) executes transactions optimistically and commits
with a single round of messages to the participants' replica groups: the
prepare carries the read versions and the write-set, each replica group
validates with OCC checks, and the quorum answer both decides the transaction
and makes it durable (no separate log flush, no group commit).  The result is
the design point the paper contrasts with Primo in §6.6: low latency (one
round trip, no batching) but OCC retries under contention and no contention
footprint reduction.

Simplifications versus the real system: the inconsistent-replication fast
path always succeeds (no slow-path retries), and the per-partition prepared
set stands in for the replicas' OCC state.  Matching §6.6, the benchmark
harness restricts TAPIR (and Primo, for fairness) to one worker per server.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from ..sim.engine import all_of
from ..sim.network import NodeUnreachable
from ..storage.lock import LockPolicy
from ..txn.context import TxnContext
from ..txn.transaction import (
    AbortReason,
    ReadEntry,
    Transaction,
    TxnAborted,
    UserAbort,
    WriteEntry,
)
from ..registry import register_protocol
from .base import BaseProtocol, install_write_entries

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.server import Server

__all__ = ["TapirProtocol", "TapirContext"]


class TapirContext(TxnContext):
    """OCC execution phase: versioned reads without locks."""

    def __init__(self, protocol, server, txn):
        super().__init__(protocol, server, txn)
        self.records: dict = {}

    def _protocol_read(self, partition: int, table: str, key) -> Generator:
        yield from self.protocol.cpu(self.protocol.config.cpu_record_access_us)
        existing = self.txn.find_read(partition, table, key)
        if existing is not None:
            return dict(existing.value)
        if self.is_local(partition):
            record = self.server.store.table(table).get(key)
            if record is None:
                raise TxnAborted(AbortReason.VALIDATION, f"missing record {table}:{key}")
            entry = ReadEntry(
                partition=partition, table=table, key=key,
                value=record.snapshot(), version=record.version,
                locked=False, local=True,
            )
            self.records[(partition, table, key)] = record
            self.txn.add_read(entry)
            return entry.value
        status, value, version = yield from self.protocol.remote_read(
            self.server, self.txn, partition, table, key
        )
        if status != "ok":
            raise TxnAborted(AbortReason.VALIDATION, f"remote read {table}:{key}")
        entry = ReadEntry(
            partition=partition, table=table, key=key,
            value=value, version=version, locked=False, local=False,
        )
        self.txn.add_read(entry)
        return value

    def _protocol_write(self, entry: WriteEntry) -> Generator:
        yield from self.protocol.cpu(self.protocol.config.cpu_record_access_us)
        self.txn.add_write(entry)


@register_protocol("tapir", default_durability="sync",
                   description="co-designed commit + inconsistent replication")
class TapirProtocol(BaseProtocol):
    name = "tapir"
    lock_policy = LockPolicy.NO_WAIT

    def __init__(self, cluster):
        super().__init__(cluster)
        # Per-partition OCC state of prepared-but-undecided transactions:
        # partition -> {(table, key): set of tids with a prepared write}.
        self._prepared_writes: dict[int, dict] = {
            p: {} for p in range(self.config.n_partitions)
        }
        self._prepared_reads: dict[int, dict] = {
            p: {} for p in range(self.config.n_partitions)
        }

    def create_context(self, server: "Server", txn: Transaction) -> TapirContext:
        return TapirContext(self, server, txn)

    def run_transaction(self, server: "Server", txn: Transaction,
                        logic: Callable[[TxnContext], Generator]) -> Generator:
        try:
            context = yield from self._execute_logic(server, txn, logic)
            txn.execute_end_time = self.env.now
            yield from self._commit(server, txn)
            txn.commit_end_time = self.env.now
            return True
        except UserAbort:
            self._cleanup(txn)
            txn.abort_reason = AbortReason.USER
            return False
        except TxnAborted as aborted:
            self._cleanup(txn)
            if txn.abort_reason is None:
                txn.abort_reason = aborted.reason
            return False

    # -- execution-phase remote read ----------------------------------------------------
    def remote_read(self, server: "Server", txn: Transaction, partition: int,
                    table: str, key) -> Generator:
        target = self.server_of(partition)

        def handler():
            if target.crashed:
                return ("crashed", None, 0)
            record = target.store.table(table).get(key)
            if record is None:
                return ("missing", None, 0)
            return ("ok", record.snapshot(), record.version)

        result = yield from self.network.rpc(server.partition_id, partition, handler)
        return result

    # -- single-round commit --------------------------------------------------------------
    def _commit(self, server: "Server", txn: Transaction) -> Generator:
        commit_start = self.env.now
        partitions = sorted(txn.all_partitions())
        prepare_calls = []
        for partition in partitions:
            reads = txn.reads_for_partition(partition)
            writes = txn.writes_for_partition(partition)
            prepare_calls.append(
                self.env.process(
                    self._prepare_rpc(server, partition, txn, reads, writes),
                    name=f"tapir-prepare-{txn.tid}-p{partition}",
                )
            )
        votes = yield all_of(self.env, prepare_calls)
        txn.add_breakdown("2pc", self.env.now - commit_start)
        if not all(v is True for v in votes):
            self._send_decision(server, txn, commit=False)
            self._abort(txn, AbortReason.VALIDATION, "TAPIR prepare rejected")
        commit_ts = server.highest_ts_seen + 1
        txn.ts = commit_ts
        self._send_decision(server, txn, commit=True, commit_ts=commit_ts)
        server.note_ts(commit_ts)
        txn.add_breakdown("commit", self.env.now - commit_start)

    def _prepare_rpc(self, server, partition, txn, reads, writes):
        def handler():
            return self._validate_at(partition, txn, reads, writes)

        try:
            # One round trip to the partition's replica quorum: the inconsistent
            # replication fast path costs the same as a single RPC.
            vote = yield from self.network.rpc(server.partition_id, partition, handler)
        except NodeUnreachable:
            return False
        return vote

    def _validate_at(self, partition: int, txn: Transaction, reads, writes) -> bool:
        target = self.server_of(partition)
        if target.crashed:
            return False
        prepared_writes = self._prepared_writes[partition]
        prepared_reads = self._prepared_reads[partition]
        written = {(w.table, w.key) for w in writes}
        for entry in reads:
            record = target.store.table(entry.table).get(entry.key)
            if record is None or record.version != entry.version:
                return False
            owners = prepared_writes.get((entry.table, entry.key), set())
            if owners - {txn.tid}:
                return False
        for entry in writes:
            owners = prepared_writes.get((entry.table, entry.key), set())
            if owners - {txn.tid}:
                return False
            readers = prepared_reads.get((entry.table, entry.key), set())
            if readers - {txn.tid}:
                return False
        for entry in writes:
            prepared_writes.setdefault((entry.table, entry.key), set()).add(txn.tid)
        for entry in reads:
            if (entry.table, entry.key) not in written:
                prepared_reads.setdefault((entry.table, entry.key), set()).add(txn.tid)
        return True

    def _send_decision(self, server: "Server", txn: Transaction, commit: bool,
                       commit_ts: float = 0.0) -> None:
        for partition in sorted(txn.all_partitions()):
            if partition == server.partition_id:
                self._apply_decision(partition, txn, commit, commit_ts)
            else:
                self.network.send(
                    server.partition_id, partition,
                    self._apply_decision, partition, txn, commit, commit_ts,
                )

    def _apply_decision(self, partition: int, txn: Transaction, commit: bool,
                        commit_ts: float) -> None:
        target = self.server_of(partition)
        self._forget(partition, txn)
        if not commit or target.crashed:
            return
        writes = txn.writes_for_partition(partition)
        if writes:
            install_write_entries(target, txn, writes, commit_ts)
            target.note_ts(commit_ts)

    def _forget(self, partition: int, txn: Transaction) -> None:
        for table_key, owners in list(self._prepared_writes[partition].items()):
            owners.discard(txn.tid)
            if not owners:
                del self._prepared_writes[partition][table_key]
        for table_key, readers in list(self._prepared_reads[partition].items()):
            readers.discard(txn.tid)
            if not readers:
                del self._prepared_reads[partition][table_key]

    def _cleanup(self, txn: Transaction) -> None:
        for partition in range(self.config.n_partitions):
            self._forget(partition, txn)
