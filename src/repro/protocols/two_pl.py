"""2PL + 2PC baselines (Spanner-style, §2.1).

Execution phase: every read takes a *shared* lock (remote reads do so at the
participant via an RPC); writes are buffered.  Commit phase: standard 2PC
(see :mod:`repro.protocols.two_pc`) where prepare upgrades the locks of the
write-set to exclusive and installs nothing until the commit decision.

Two variants differ only in the deadlock-handling policy:

* ``2pl_nw`` — NO_WAIT: a conflicting lock request aborts immediately;
* ``2pl_wd`` — WAIT_DIE: older transactions wait, younger ones abort.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from ..commit.logging import LogRecordKind
from ..storage.lock import LockMode, LockPolicy
from ..txn.context import TxnContext
from ..txn.transaction import (
    AbortReason,
    ReadEntry,
    Transaction,
    TxnAborted,
    UserAbort,
    WriteEntry,
)
from ..registry import register_protocol
from .base import BaseProtocol, install_write_entries
from .two_pc import TwoPhaseCommitMixin

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.server import Server

__all__ = ["TwoPLNoWaitProtocol", "TwoPLWaitDieProtocol", "TwoPLContext"]


class TwoPLContext(TxnContext):
    """Execution-phase context: shared locks for reads, buffered writes."""

    def __init__(self, protocol, server, txn):
        super().__init__(protocol, server, txn)
        self.records: dict = {}

    def _protocol_read(self, partition: int, table: str, key) -> Generator:
        cost = self.protocol.config.cpu_record_access_us
        if cost > 0:
            yield self.env.timeout(cost)
        existing = self.txn.find_read(partition, table, key)
        if existing is not None:
            return dict(existing.value)
        if self.is_local(partition):
            record = self.server.store.table(table).get(key)
            if record is None:
                raise TxnAborted(AbortReason.VALIDATION, f"missing record {table}:{key}")
            ok = self.server.store.lock_manager.acquire_nowait(
                self.txn.tid, record, LockMode.SHARED
            )
            if type(ok) is not bool:
                ok = yield ok
            if not ok:
                raise TxnAborted(AbortReason.LOCK_CONFLICT, f"S-lock {table}:{key}")
            entry = ReadEntry(
                partition=partition, table=table, key=key,
                value=record.snapshot(), wts=record.wts, rts=record.rts,
                version=record.version, locked=True, local=True,
            )
            self.records[(partition, table, key)] = record
            self.txn.add_read(entry)
            return entry.value
        status, value, version = yield from self.protocol.remote_read(
            self.server, self.txn, partition, table, key
        )
        if status != "ok":
            raise TxnAborted(AbortReason.LOCK_CONFLICT, f"remote S-lock {table}:{key}")
        entry = ReadEntry(
            partition=partition, table=table, key=key,
            value=value, version=version, locked=True, local=False,
        )
        self.txn.add_read(entry)
        return value

    def _protocol_write(self, entry: WriteEntry) -> Generator:
        cost = self.protocol.config.cpu_record_access_us
        if cost > 0:
            yield self.env.timeout(cost)
        self.txn.add_write(entry)


@register_protocol("2pl_nw", default_durability="coco",
                   description="2PL NO_WAIT + 2PC (Spanner-like)")
class TwoPLNoWaitProtocol(TwoPhaseCommitMixin, BaseProtocol):
    """2PL with NO_WAIT deadlock prevention + 2PC."""

    name = "2pl_nw"
    lock_policy = LockPolicy.NO_WAIT

    # -- protocol interface -----------------------------------------------------
    def create_context(self, server: "Server", txn: Transaction) -> TwoPLContext:
        return TwoPLContext(self, server, txn)

    def run_transaction(self, server: "Server", txn: Transaction,
                        logic: Callable[[TxnContext], Generator]) -> Generator:
        try:
            context = yield from self._execute_logic(server, txn, logic)
            txn.execute_end_time = self.env.now
            yield from self.run_two_phase_commit(server, txn, context)
            txn.commit_end_time = self.env.now
            return True
        except UserAbort:
            self._cleanup_abort(server, txn)
            txn.abort_reason = AbortReason.USER
            return False
        except TxnAborted as aborted:
            self._cleanup_abort(server, txn)
            if txn.abort_reason is None:
                txn.abort_reason = aborted.reason
            return False

    # -- execution-phase remote read ------------------------------------------------
    def remote_read(self, server: "Server", txn: Transaction, partition: int,
                    table: str, key) -> Generator:
        target = self.server_of(partition)

        def handler() -> Generator:
            if target.crashed:
                return ("crashed", None, 0)
            record = target.store.table(table).get(key)
            if record is None:
                return ("missing", None, 0)
            ok = target.store.lock_manager.acquire_nowait(
                txn.tid, record, LockMode.SHARED
            )
            if type(ok) is not bool:
                ok = yield ok
            if not ok:
                return ("conflict", None, 0)
            return ("ok", record.snapshot(), record.version)

        result = yield from self.network.rpc(server.partition_id, partition, handler)
        return result

    # -- 2PC hooks ----------------------------------------------------------------------
    def prepare_local(self, server: "Server", txn: Transaction, context) -> Generator:
        ok = yield from self._upgrade_write_locks(server, txn, context)
        return ok

    def prepare_participant(self, participant: "Server", txn: Transaction,
                            writes: list, reads: list, commit_ts) -> Generator:
        if participant.crashed:
            return False
        yield from self.cpu(self.config.cpu_record_access_us * max(1, len(writes)))
        for entry in writes:
            record = participant.store.table(entry.table).get(entry.key)
            if record is None:
                if entry.is_insert:
                    continue
                return False
            ok = participant.store.lock_manager.acquire_nowait(
                txn.tid, record, LockMode.EXCLUSIVE
            )
            if type(ok) is not bool:
                ok = yield ok
            if not ok:
                return False
        participant.log.append(LogRecordKind.PREPARE, txn_ts=commit_ts, txn_tid=txn.tid)
        return True

    def commit_local(self, server: "Server", txn: Transaction, context, commit_ts) -> Generator:
        local_writes = txn.writes_for_partition(server.partition_id)
        yield from self.cpu(self.config.cpu_record_access_us * max(1, len(local_writes)))
        install_write_entries(server, txn, local_writes, commit_ts)
        server.store.lock_manager.release_all(txn.tid)

    def commit_participant(self, participant: "Server", txn: Transaction,
                           writes: list, reads: list, commit_ts) -> Generator:
        if participant.crashed:
            return
        yield from self.cpu(self.config.cpu_record_access_us * max(1, len(writes)))
        install_write_entries(participant, txn, writes, commit_ts)
        participant.store.lock_manager.release_all(txn.tid)
        participant.note_ts(commit_ts)

    # -- helpers --------------------------------------------------------------------------
    def _upgrade_write_locks(self, server: "Server", txn: Transaction, context) -> Generator:
        for entry in txn.writes_for_partition(server.partition_id):
            record = context.records.get((entry.partition, entry.table, entry.key))
            if record is None:
                record = server.store.table(entry.table).get(entry.key)
                if record is None:
                    if entry.is_insert:
                        continue
                    return False
            ok = server.store.lock_manager.acquire_nowait(
                txn.tid, record, LockMode.EXCLUSIVE
            )
            if type(ok) is not bool:
                ok = yield ok
            if not ok:
                return False
        return True

    def _cleanup_abort(self, server: "Server", txn: Transaction) -> None:
        server.store.lock_manager.release_all(txn.tid)
        for partition in txn.participants:
            participant = self.server_of(partition)
            self.network.send(
                server.partition_id, partition, self.abort_participant, participant, txn
            )


@register_protocol("2pl_wd", default_durability="coco",
                   description="2PL WAIT_DIE + 2PC")
class TwoPLWaitDieProtocol(TwoPLNoWaitProtocol):
    """2PL with WAIT_DIE deadlock prevention + 2PC."""

    name = "2pl_wd"
    lock_policy = LockPolicy.WAIT_DIE
