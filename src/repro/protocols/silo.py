"""Silo-style OCC + 2PC (the distributed variant used in COCO).

Execution phase: reads take no locks and record the observed version; writes
are buffered.  Commit phase runs over 2PC: *prepare* locks the write-set
records (NO_WAIT style — a lock conflict votes NO) and validates the
partition's portion of the read-set (version unchanged and not locked by
another transaction); *commit* installs the writes and releases.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from ..commit.logging import LogRecordKind
from ..storage.lock import LockMode, LockPolicy
from ..txn.context import TxnContext
from ..txn.transaction import (
    AbortReason,
    ReadEntry,
    Transaction,
    TxnAborted,
    UserAbort,
    WriteEntry,
)
from ..registry import register_protocol
from .base import BaseProtocol, install_write_entries
from .two_pc import TwoPhaseCommitMixin

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.server import Server

__all__ = ["SiloProtocol", "SiloContext"]


class SiloContext(TxnContext):
    """OCC execution phase: version-stamped reads, buffered writes."""

    def __init__(self, protocol, server, txn):
        super().__init__(protocol, server, txn)
        self.records: dict = {}

    def _protocol_read(self, partition: int, table: str, key) -> Generator:
        yield from self.protocol.cpu(self.protocol.config.cpu_record_access_us)
        existing = self.txn.find_read(partition, table, key)
        if existing is not None:
            return dict(existing.value)
        if self.is_local(partition):
            record = self.server.store.table(table).get(key)
            if record is None:
                raise TxnAborted(AbortReason.VALIDATION, f"missing record {table}:{key}")
            entry = ReadEntry(
                partition=partition, table=table, key=key,
                value=record.snapshot(), wts=record.wts, rts=record.rts,
                version=record.version, locked=False, local=True,
            )
            self.records[(partition, table, key)] = record
            self.txn.add_read(entry)
            return entry.value
        status, value, version = yield from self.protocol.remote_read(
            self.server, self.txn, partition, table, key
        )
        if status != "ok":
            raise TxnAborted(AbortReason.VALIDATION, f"remote read {table}:{key}")
        entry = ReadEntry(
            partition=partition, table=table, key=key,
            value=value, version=version, locked=False, local=False,
        )
        self.txn.add_read(entry)
        return value

    def _protocol_write(self, entry: WriteEntry) -> Generator:
        yield from self.protocol.cpu(self.protocol.config.cpu_record_access_us)
        self.txn.add_write(entry)


@register_protocol("silo", default_durability="coco",
                   description="OCC (Silo) + 2PC, distributed variant from COCO")
class SiloProtocol(TwoPhaseCommitMixin, BaseProtocol):
    name = "silo"
    lock_policy = LockPolicy.NO_WAIT

    def create_context(self, server: "Server", txn: Transaction) -> SiloContext:
        return SiloContext(self, server, txn)

    def run_transaction(self, server: "Server", txn: Transaction,
                        logic: Callable[[TxnContext], Generator]) -> Generator:
        try:
            context = yield from self._execute_logic(server, txn, logic)
            txn.execute_end_time = self.env.now
            if txn.is_distributed:
                yield from self.run_two_phase_commit(server, txn, context)
            else:
                yield from self._commit_single_partition(server, txn, context)
            txn.commit_end_time = self.env.now
            return True
        except UserAbort:
            self._cleanup_abort(server, txn)
            txn.abort_reason = AbortReason.USER
            return False
        except TxnAborted as aborted:
            self._cleanup_abort(server, txn)
            if txn.abort_reason is None:
                txn.abort_reason = aborted.reason
            return False

    # -- execution-phase remote read -----------------------------------------------
    def remote_read(self, server: "Server", txn: Transaction, partition: int,
                    table: str, key) -> Generator:
        target = self.server_of(partition)

        def handler():
            if target.crashed:
                return ("crashed", None, 0)
            record = target.store.table(table).get(key)
            if record is None:
                return ("missing", None, 0)
            return ("ok", record.snapshot(), record.version)

        result = yield from self.network.rpc(server.partition_id, partition, handler)
        return result

    # -- validation helpers ------------------------------------------------------------
    def _lock_and_validate(self, server: "Server", txn: Transaction,
                           writes: list, reads: list) -> Generator:
        """Silo prepare work for one partition: lock writes, validate reads."""
        lock_manager = server.store.lock_manager
        for entry in sorted(writes, key=lambda w: (w.table, str(w.key))):
            record = server.store.table(entry.table).get(entry.key)
            if record is None:
                if entry.is_insert:
                    continue
                return False
            granted = lock_manager.try_acquire(txn.tid, record, LockMode.EXCLUSIVE)
            if not granted:
                return False
        written = {(w.table, w.key) for w in writes}
        for entry in reads:
            record = server.store.table(entry.table).get(entry.key)
            if record is None:
                return False
            if record.version != entry.version:
                return False
            if (entry.table, entry.key) in written:
                continue
            holders = lock_manager.holders_of(record)
            if any(holder != txn.tid for holder in holders):
                return False
        yield from self.cpu(self.config.cpu_record_access_us * max(1, len(writes) + len(reads)))
        return True

    # -- single-partition fast path ------------------------------------------------------
    def _commit_single_partition(self, server: "Server", txn: Transaction, context) -> Generator:
        commit_start = self.env.now
        ok = yield from self._lock_and_validate(
            server, txn,
            txn.writes_for_partition(server.partition_id),
            txn.reads_for_partition(server.partition_id),
        )
        if not ok:
            self._abort(txn, AbortReason.VALIDATION, "silo local validation")
        commit_ts = server.highest_ts_seen + 1
        txn.ts = commit_ts
        install_write_entries(server, txn, txn.write_set, commit_ts)
        server.store.lock_manager.release_all(txn.tid)
        server.note_ts(commit_ts)
        txn.add_breakdown("commit", self.env.now - commit_start)

    # -- 2PC hooks --------------------------------------------------------------------------
    def prepare_local(self, server: "Server", txn: Transaction, context) -> Generator:
        ok = yield from self._lock_and_validate(
            server, txn,
            txn.writes_for_partition(server.partition_id),
            txn.reads_for_partition(server.partition_id),
        )
        return ok

    def prepare_participant(self, participant: "Server", txn: Transaction,
                            writes: list, reads: list, commit_ts) -> Generator:
        if participant.crashed:
            return False
        ok = yield from self._lock_and_validate(participant, txn, writes, reads)
        if ok:
            participant.log.append(LogRecordKind.PREPARE, txn_ts=commit_ts, txn_tid=txn.tid)
        return ok

    def commit_local(self, server: "Server", txn: Transaction, context, commit_ts) -> Generator:
        local_writes = txn.writes_for_partition(server.partition_id)
        yield from self.cpu(self.config.cpu_record_access_us * max(1, len(local_writes)))
        install_write_entries(server, txn, local_writes, commit_ts)
        server.store.lock_manager.release_all(txn.tid)

    def commit_participant(self, participant: "Server", txn: Transaction,
                           writes: list, reads: list, commit_ts) -> Generator:
        if participant.crashed:
            return
        yield from self.cpu(self.config.cpu_record_access_us * max(1, len(writes)))
        install_write_entries(participant, txn, writes, commit_ts)
        participant.store.lock_manager.release_all(txn.tid)
        participant.note_ts(commit_ts)

    def _cleanup_abort(self, server: "Server", txn: Transaction) -> None:
        server.store.lock_manager.release_all(txn.tid)
        for partition in txn.participants:
            participant = self.server_of(partition)
            self.network.send(
                server.partition_id, partition, self.abort_participant, participant, txn
            )
