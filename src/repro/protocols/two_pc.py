"""Two-phase commit, shared by the 2PC-based baselines (§2.1).

The coordinator runs the commit phase of a distributed transaction as:

1. **Prepare** — in parallel, each participant receives the write-set destined
   for it (Unsolicited-Vote: the writes ride along with the PREPARE message),
   performs the protocol-specific prepare work (lock upgrades for 2PL,
   validation for Silo/Sundial), appends a prepare log record and votes.
2. **Commit/Abort** — if every vote is YES the coordinator logs the commit
   decision, installs its local writes, and sends COMMIT to the participants,
   which install their writes, log, release locks and acknowledge.  A NO vote
   (or an unreachable participant) turns the round into ABORT (Presumed-Abort:
   the abort decision is not logged).

Log records are appended here but *not* flushed — durability is the group
commit scheme's job, exactly as the paper configures the baselines (§6.1.3).
The two network round trips charged here are what Primo removes from the
contention footprint.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..commit.logging import LogRecordKind
from ..sim.engine import all_of
from ..sim.network import NodeUnreachable
from ..txn.transaction import AbortReason, Transaction

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.server import Server

__all__ = ["TwoPhaseCommitMixin"]


class TwoPhaseCommitMixin:
    """Commit-phase driver; protocols provide the prepare/commit hooks."""

    # -- hooks every 2PC-based protocol implements -------------------------------
    def prepare_local(self, server: "Server", txn: Transaction, context) -> Generator:
        """Coordinator-side prepare; return True to vote YES."""
        raise NotImplementedError

    def prepare_participant(self, participant: "Server", txn: Transaction,
                            writes: list, reads: list, commit_ts) -> Generator:
        """Participant-side prepare; return True to vote YES."""
        raise NotImplementedError

    def commit_local(self, server: "Server", txn: Transaction, context, commit_ts) -> Generator:
        raise NotImplementedError

    def commit_participant(self, participant: "Server", txn: Transaction,
                           writes: list, reads: list, commit_ts) -> Generator:
        raise NotImplementedError

    def abort_participant(self, participant: "Server", txn: Transaction) -> None:
        participant.store.lock_manager.release_all(txn.tid)

    def choose_commit_ts(self, server: "Server", txn: Transaction, context) -> float:
        """Logical install timestamp (protocols may override, e.g. Sundial)."""
        return server.highest_ts_seen + 1

    # -- the 2PC driver ------------------------------------------------------------
    def run_two_phase_commit(self, server: "Server", txn: Transaction, context) -> Generator:
        """Run prepare + commit; raises :class:`TxnAborted` if any vote is NO."""
        two_pc_start = self.env.now
        commit_ts = self.choose_commit_ts(server, txn, context)
        txn.ts = commit_ts

        # ---- prepare phase -------------------------------------------------
        local_vote = yield from self.prepare_local(server, txn, context)
        votes = [local_vote]
        participant_calls = []
        for partition in sorted(txn.participants):
            participant = self.server_of(partition)
            writes = txn.writes_for_partition(partition)
            reads = txn.reads_for_partition(partition)
            participant_calls.append(
                self.env.process(
                    self._prepare_rpc(server, participant, txn, writes, reads, commit_ts),
                    name=f"2pc-prepare-{txn.tid}-p{partition}",
                )
            )
        if participant_calls:
            remote_votes = yield all_of(self.env, participant_calls)
            votes.extend(bool(v) and not isinstance(v, Exception) for v in remote_votes)
        txn.add_breakdown("2pc", self.env.now - two_pc_start)

        if not all(votes):
            self._abort_everywhere(server, txn)
            self._abort(txn, AbortReason.LOCK_CONFLICT, "2PC prepare voted NO")

        # ---- commit phase ---------------------------------------------------
        commit_start = self.env.now
        server.log.append(
            LogRecordKind.COMMIT_DECISION, txn_ts=commit_ts, txn_tid=txn.tid
        )
        yield from self.commit_local(server, txn, context, commit_ts)
        commit_calls = []
        for partition in sorted(txn.participants):
            participant = self.server_of(partition)
            writes = txn.writes_for_partition(partition)
            reads = txn.reads_for_partition(partition)
            commit_calls.append(
                self.env.process(
                    self._commit_rpc(server, participant, txn, writes, reads, commit_ts),
                    name=f"2pc-commit-{txn.tid}-p{partition}",
                )
            )
        if commit_calls:
            yield all_of(self.env, commit_calls)
        server.note_ts(commit_ts)
        txn.add_breakdown("commit", self.env.now - commit_start)
        return commit_ts

    # -- RPC wrappers -----------------------------------------------------------------
    def _prepare_rpc(self, server, participant, txn, writes, reads, commit_ts):
        def handler():
            result = yield from self.prepare_participant(participant, txn, writes, reads, commit_ts)
            return result

        try:
            vote = yield from self.network.rpc(
                server.partition_id, participant.partition_id, handler
            )
        except NodeUnreachable:
            return False
        return vote

    def _commit_rpc(self, server, participant, txn, writes, reads, commit_ts):
        def handler():
            yield from self.commit_participant(participant, txn, writes, reads, commit_ts)
            return True

        try:
            yield from self.network.rpc(
                server.partition_id, participant.partition_id, handler
            )
        except NodeUnreachable:
            return False
        return True

    # -- abort path ----------------------------------------------------------------------
    def _abort_everywhere(self, server: "Server", txn: Transaction) -> None:
        server.store.lock_manager.release_all(txn.tid)
        for partition in txn.participants:
            participant = self.server_of(partition)
            self.network.send(
                server.partition_id,
                partition,
                self.abort_participant,
                participant,
                txn,
            )
