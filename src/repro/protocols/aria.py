"""Aria: deterministic batch execution without prior read/write-set knowledge.

Aria (Lu et al., VLDB'20) processes transactions in batches.  Within a batch
every transaction reads the snapshot produced by the previous batch and makes
*reservations* for its writes; a barrier then lets every partition learn the
reservations, and the commit phase deterministically aborts transactions that
lost a write-after-write reservation or read a record a smaller-ID transaction
reserves for writing.  Aborted transactions rerun in the next batch.

What the model captures (matching §2.2 / §6.2 of the Primo paper):

* no per-transaction 2PC and no write-set logging (inputs are logged by the
  sequencing layer, off the critical path);
* two synchronisation barriers per batch (one round trip each) plus the
  sequencing epoch, which show up as the ``wait_batch``/``sequence`` latency
  components;
* conflict aborts that grow quickly with contention because the reservation
  window spans the whole batch.

Aria replaces the per-worker closed loop: the cluster starts
:meth:`AriaProtocol.run_loop` instead of spawning workers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..sim.engine import all_of
from ..storage.lock import LockPolicy
from ..txn.context import TxnContext
from ..txn.transaction import (
    AbortReason,
    ReadEntry,
    Transaction,
    TxnAborted,
    UserAbort,
    WriteEntry,
)
from ..registry import register_protocol
from .base import BaseProtocol, install_write_entries

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.server import Server

__all__ = ["AriaProtocol", "AriaContext"]


class AriaContext(TxnContext):
    """Snapshot reads + write reservations."""

    def __init__(self, protocol, server, txn):
        super().__init__(protocol, server, txn)

    def _protocol_read(self, partition: int, table: str, key) -> Generator:
        yield from self.protocol.cpu(self.protocol.config.cpu_record_access_us)
        existing = self.txn.find_read(partition, table, key)
        if existing is not None:
            return dict(existing.value)
        if self.is_local(partition):
            record = self.server.store.table(table).get(key)
            if record is None:
                raise TxnAborted(AbortReason.VALIDATION, f"missing record {table}:{key}")
            value = record.snapshot()
        else:
            status, value = yield from self.protocol.remote_snapshot_read(
                self.server, partition, table, key
            )
            if status != "ok":
                raise TxnAborted(AbortReason.VALIDATION, f"remote read {table}:{key}")
        entry = ReadEntry(
            partition=partition, table=table, key=key, value=value,
            locked=False, local=self.is_local(partition),
        )
        self.txn.add_read(entry)
        return value

    def _protocol_write(self, entry: WriteEntry) -> Generator:
        yield from self.protocol.cpu(self.protocol.config.cpu_record_access_us)
        self.txn.add_write(entry)
        # Reservation messages are batched with the execution phase: no
        # blocking round trip, the reservation table is updated directly.
        self.protocol.reserve_write(entry.partition, entry.table, entry.key, self.txn.tid)


@register_protocol("aria", default_durability="none",
                   description="deterministic batch execution")
class AriaProtocol(BaseProtocol):
    name = "aria"
    lock_policy = LockPolicy.NO_WAIT
    runs_own_loop = True

    def __init__(self, cluster):
        super().__init__(cluster)
        # partition -> {(table, key): smallest reserving TID}
        self._write_reservations: dict[int, dict] = {}
        self._batch_counter = 0
        self.stats = {"batches": 0, "reexecutions": 0}

    def create_context(self, server: "Server", txn: Transaction) -> AriaContext:
        return AriaContext(self, server, txn)

    def run_transaction(self, server, txn, logic):  # pragma: no cover - not used
        raise NotImplementedError("Aria uses its own batch loop (run_loop)")

    # -- reservations -----------------------------------------------------------
    def reserve_write(self, partition: int, table: str, key, tid) -> None:
        reservations = self._write_reservations.setdefault(partition, {})
        current = reservations.get((table, key))
        if current is None or tid < current:
            reservations[(table, key)] = tid

    def _lost_reservation(self, txn: Transaction) -> bool:
        for entry in txn.write_set:
            owner = self._write_reservations.get(entry.partition, {}).get(
                (entry.table, entry.key)
            )
            if owner is not None and owner < txn.tid:
                return True
        return False

    def _reads_conflict(self, txn: Transaction) -> bool:
        for entry in txn.read_set:
            owner = self._write_reservations.get(entry.partition, {}).get(
                (entry.table, entry.key)
            )
            if owner is not None and owner < txn.tid:
                return True
        return False

    # -- remote snapshot read ------------------------------------------------------
    def remote_snapshot_read(self, server: "Server", partition: int, table: str, key):
        target = self.server_of(partition)

        def handler():
            if target.crashed:
                return ("crashed", None)
            record = target.store.table(table).get(key)
            if record is None:
                return ("missing", None)
            return ("ok", record.snapshot())

        result = yield from self.network.rpc(server.partition_id, partition, handler)
        return result

    # -- the batch loop ----------------------------------------------------------------
    def run_loop(self) -> Generator:
        """Main Aria driver started by the cluster instead of worker fibers."""
        config = self.config
        sources = {
            p: self.cluster.new_txn_source(p, stream_id=0)
            for p in range(config.n_partitions)
        }
        # Transactions carried over from the previous batch after an abort.
        carry_over: dict[int, list] = {p: [] for p in range(config.n_partitions)}
        while not self.cluster.stopped:
            batch_start = self.env.now
            self._write_reservations = {p: {} for p in range(config.n_partitions)}
            self._batch_counter += 1
            self.stats["batches"] += 1

            # ---- sequencing: assemble the batch -------------------------------
            batch: dict[int, list] = {}
            for partition in range(config.n_partitions):
                entries = list(carry_over[partition])
                while len(entries) < config.aria_batch_size_per_partition:
                    spec = sources[partition].next()
                    server = self.cluster.servers[partition]
                    txn = server.new_transaction(spec.name)
                    txn.first_start_time = self.env.now
                    entries.append((spec, txn))
                batch[partition] = entries
                carry_over[partition] = []

            # ---- execution phase ------------------------------------------------
            execution_results: list = []
            partition_processes = []
            for partition, entries in batch.items():
                server = self.cluster.servers[partition]
                partition_processes.append(
                    self.env.process(
                        self._execute_partition(server, entries, execution_results),
                        name=f"aria-exec-p{partition}",
                    )
                )
            yield all_of(self.env, partition_processes)
            execution_end = self.env.now

            # ---- barrier 1: exchange reservations --------------------------------
            yield from self._barrier()

            # ---- commit phase ------------------------------------------------------
            for txn, spec, ok, server in execution_results:
                if not ok:
                    txn.abort_reason = txn.abort_reason or AbortReason.VALIDATION
                    self.cluster.record_abort(server, txn)
                    if txn.abort_reason is not AbortReason.USER:
                        fresh = server.new_transaction(spec.name)
                        fresh.first_start_time = txn.first_start_time
                        carry_over[server.partition_id].append((spec, fresh))
                    continue
                if self._lost_reservation(txn) or self._reads_conflict(txn):
                    txn.abort_reason = AbortReason.RESERVATION
                    self.cluster.record_abort(server, txn)
                    self.stats["reexecutions"] += 1
                    fresh = server.new_transaction(spec.name)
                    fresh.first_start_time = txn.first_start_time
                    carry_over[server.partition_id].append((spec, fresh))
                    continue
                commit_ts = server.highest_ts_seen + 1
                txn.ts = commit_ts
                for partition in sorted(txn.all_partitions()):
                    target = self.server_of(partition)
                    writes = txn.writes_for_partition(partition)
                    if writes:
                        install_write_entries(target, txn, writes, commit_ts, log=False)
                        target.note_ts(commit_ts)
                txn.commit_end_time = self.env.now
                txn.add_breakdown("wait_batch", max(0.0, execution_end - txn.execute_end_time))
                txn.add_breakdown("sequence", self.config.epoch_length_us / 2.0)
                txn.durable_time = self.env.now
                self.cluster.record_commit(server, txn)
                self.cluster.record_durable(server, txn)

            # ---- barrier 2: all partitions agree the batch is done -----------------
            yield from self._barrier()
            # Avoid spinning when the simulation is otherwise idle.
            if self.env.now - batch_start < self.config.cpu_txn_logic_us:
                yield self.env.timeout(self.config.cpu_txn_logic_us)

    def _execute_partition(self, server: "Server", entries: list, results: list) -> Generator:
        """Execute the partition's share of the batch on its worker fibers."""
        queue = list(entries)
        fibers = []
        for _ in range(self.config.concurrency_per_partition):
            fibers.append(
                self.env.process(self._partition_worker(server, queue, results))
            )
        yield all_of(self.env, fibers)

    def _partition_worker(self, server: "Server", queue: list, results: list) -> Generator:
        while queue:
            spec, txn = queue.pop(0)
            txn.start_time = self.env.now
            context = self.create_context(server, txn)
            ok = True
            try:
                yield from self.cpu(self.config.cpu_txn_logic_us)
                yield from spec.logic(context)
            except UserAbort:
                txn.abort_reason = AbortReason.USER
                ok = False
            except TxnAborted as aborted:
                txn.abort_reason = aborted.reason
                ok = False
            txn.execute_end_time = self.env.now
            txn.add_breakdown("execute", txn.execute_end_time - txn.start_time)
            results.append((txn, spec, ok, server))

    def _barrier(self) -> Generator:
        """One synchronisation round across all partitions (coordinator at 0)."""
        round_trip = self.network.roundtrip_us(0, (self.config.n_partitions - 1) or 0)
        handling = self.config.cpu_message_handling_us * 2 * self.config.n_partitions
        yield self.env.timeout(round_trip + handling)
