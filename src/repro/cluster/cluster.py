"""The public entry point: a simulated shared-nothing cluster.

Typical use (see ``examples/quickstart.py``)::

    from repro import Cluster, SystemConfig
    from repro.workloads import YCSBWorkload, YCSBConfig

    config = SystemConfig.for_protocol("primo", n_partitions=4)
    workload = YCSBWorkload(YCSBConfig(zipf_theta=0.6))
    result = Cluster(config, workload).run()
    print(result.throughput_ktps, result.mean_latency_ms)

``Cluster`` wires together the simulation environment, the network, one
server per partition, the configured protocol and durability scheme, the
membership/recovery machinery and the workload, runs the closed-loop workers
for the configured (simulated) duration and returns a :class:`RunResult`.
"""

from __future__ import annotations

import gc
from collections import defaultdict
from typing import Optional

from ..arrivals import AdmissionQueue, ArrivalSpec, start_open_loop
from ..commit import create_durability_scheme
from ..faults import FaultPlan, FaultScheduler, compile_legacy_faults
from ..protocols import create_protocol
from ..replication.membership import MembershipService
from ..sim.engine import Environment
from ..sim.network import Network
from ..sim.randgen import DeterministicRandom, derive_seed, stable_hash
from ..sim.stats import Counter, RunMetrics, WindowedRecorder
from ..sim.topology import RegionTopology
from ..txn.transaction import Transaction
from ..workloads.base import Workload
from .config import SystemConfig
from .recovery import RecoveryCoordinator
from .results import RunResult
from .server import Server, follower_node_base
from .worker import worker_loop

__all__ = ["Cluster"]


class Cluster:
    """A simulated cluster running one protocol on one workload.

    ``faults`` is an optional declarative :class:`~repro.faults.FaultPlan`
    (or a list of fault events); the legacy ``config.crash_partition`` /
    ``config.crash_time_us`` knobs are compiled onto the same plan, so both
    spellings share one injection path.  ``arrival`` is an optional
    :class:`~repro.arrivals.ArrivalSpec` (or its kind name / JSON form)
    selecting an open-loop arrival process; ``None`` — and the explicit
    ``"closed"`` kind — run the historical closed-loop worker pool
    bit-identically.  ``topology`` is an optional
    :class:`~repro.sim.topology.RegionTopology` (or its JSON form) placing
    partition leaders and their replication followers into regions behind a
    region×region latency matrix; ``None`` keeps the scalar-latency fast path.
    """

    def __init__(self, config: SystemConfig, workload: Workload,
                 faults: Optional[FaultPlan] = None,
                 arrival: Optional[ArrivalSpec] = None,
                 topology: Optional[RegionTopology] = None):
        config.validate()
        self.config = config
        self.workload = workload
        self.arrival = ArrivalSpec.coerce(arrival)
        self.topology = RegionTopology.coerce(topology)
        # Per-partition open-loop admission queues (empty for closed loops);
        # their drop/depth accounting folds into ``counters`` at run end.
        self.admission_queues: dict[int, AdmissionQueue] = {}
        self.env = Environment()
        self.network = Network(
            self.env,
            one_way_latency_us=config.one_way_network_latency_us,
            local_latency_us=config.local_message_latency_us,
        )
        if self.topology is not None:
            self.network.install_topology(
                self._resolve_node_regions(self.topology),
                self.topology.latency_us,
            )
        self.stopped = False
        # ``stale_read`` fault state: per-partition fractions of reads served
        # from the pre-durable follower snapshot during an injection window.
        # The flag keeps the per-read check to one attribute load when no
        # window is active, and the RNG is created lazily on first use so
        # plans without stale_read draw nothing extra.
        self.stale_read_active = False
        self._stale_read_fraction: dict[int, float] = {}
        self._stale_read_rng: Optional[DeterministicRandom] = None
        # Set by the recovery coordinator while it quiesces and rolls back;
        # workers wait on it before starting new transaction attempts.
        self.pause_event = None
        self.counters = Counter()

        # Protocol first (its lock policy configures the partitions' lock managers).
        self.protocol = create_protocol(config.protocol, self)
        if self.arrival is not None and self.protocol.runs_own_loop:
            raise ValueError(
                f"protocol {config.protocol!r} drives its own execution loop "
                "and does not support arrival processes (open loops or "
                "closed-loop think time)"
            )
        self.servers: dict[int, Server] = {
            p: Server(self, p, self.protocol.lock_policy)
            for p in range(config.n_partitions)
        }
        self.durability = create_durability_scheme(config.durability, self)
        self.membership = MembershipService(
            self.env,
            config.n_partitions,
            heartbeat_interval_us=config.heartbeat_interval_us,
            heartbeat_timeout_us=config.heartbeat_timeout_us,
        )
        self.recovery = RecoveryCoordinator(self)
        plan = FaultPlan.coerce(faults) or FaultPlan()
        self.fault_plan = plan.extend(compile_legacy_faults(
            crash_partition=config.crash_partition,
            crash_time_us=config.crash_time_us,
        ))
        self.fault_scheduler = FaultScheduler(self, self.fault_plan)
        # The logs' full record history exists only for the recovery sweep
        # after an injected fault (§5.2 rollback, watermark agreement).  A
        # fault-free run can never call those helpers, so it drops the
        # history and log memory stays bounded by the unflushed tail — at the
        # million-key tiers the retained write-sets would otherwise dominate
        # the heap.  Retention does not affect event timing, so results stay
        # bit-identical either way.
        if not self.fault_plan.events:
            for server in self.servers.values():
                server.log.retain_history = False
                server.replication.retain_entries = False

        # Measurement state.
        self.metrics = RunMetrics()
        self._measure_start = config.warmup_us
        self._measure_end = config.warmup_us + config.duration_us
        if self.fault_plan.events:
            # Windowed throughput/latency time series for degradation and
            # recovery analysis.  Only fault-plan runs pay for (and report)
            # it, so fault-free runs keep byte-identical result documents.
            self.metrics.timeline = WindowedRecorder(
                window_us=config.epoch_length_us / 4.0,
                origin_us=self._measure_start,
            )
        self._per_txn_type: dict[str, int] = defaultdict(int)
        self._abort_reasons: dict[str, int] = defaultdict(int)
        self._started = False

        # Populate the database.
        self.workload.load(self)

    def _resolve_node_regions(self, topology: RegionTopology) -> dict[int, int]:
        """Map every node id — leaders and followers — to its region index."""
        node_regions: dict[int, int] = {}
        n_partitions = self.config.n_partitions
        n_followers = self.config.replicas_per_partition - 1
        for partition_id in range(n_partitions):
            node_regions[partition_id] = topology.partition_region_index(partition_id)
            base = follower_node_base(n_partitions, partition_id)
            for index in range(n_followers):
                node_regions[base + index] = topology.follower_region_index(
                    partition_id, index)
        return node_regions

    # -- stale-read fault surface ------------------------------------------------
    def set_stale_read_fraction(self, partition_id: int, fraction: float) -> None:
        """Serve ``fraction`` of the partition's reads from the pre-durable
        follower snapshot (0 clears the window)."""
        if fraction:
            if not 0.0 < fraction <= 1.0:
                raise ValueError(
                    f"stale_read fraction must be in (0, 1], got {fraction}"
                )
            self._stale_read_fraction[partition_id] = float(fraction)
            if self._stale_read_rng is None:
                self._stale_read_rng = self.rng_for("stale_read")
        else:
            self._stale_read_fraction.pop(partition_id, None)
        self.stale_read_active = bool(self._stale_read_fraction)

    def note_read(self, partition_id: int) -> None:
        """Called per read while a stale_read window is active: draw whether
        this read observed the follower snapshot at the durable watermark.

        The model is observational — the read's *freshness* degrades (counted
        as ``stale_reads``), the value itself is the snapshot the §5.2
        guarantee would serve — so timing and commit counts stay identical to
        the no-fault run; the RNG draws only inside the window.
        """
        fraction = self._stale_read_fraction.get(partition_id)
        if not fraction:
            return
        if self._stale_read_rng.boolean(fraction):
            self.counters.increment("stale_reads")

    # -- helpers used by protocols / schemes / workloads ----------------------------
    def rng_for(self, label: str) -> DeterministicRandom:
        # stable_hash, not hash(): str hashing is randomized per process, which
        # made fixed-seed runs non-reproducible across interpreter invocations.
        return DeterministicRandom(derive_seed(self.config.seed, stable_hash(label)))

    def new_txn_source(self, partition_id: int, stream_id: int):
        return self.workload.make_source(self, partition_id, stream_id)

    def server_of(self, partition_id: int) -> Server:
        return self.servers[partition_id]

    # -- measurement -------------------------------------------------------------------
    def _in_window(self, time_us: float) -> bool:
        return self._measure_start <= time_us < self._measure_end

    def record_commit(self, server: Server, txn: Transaction) -> None:
        """A transaction finished its commit phase (writes installed)."""
        if not self._in_window(self.env._now):
            return
        self.metrics.committed += 1
        self._per_txn_type[txn.name] += 1
        txn.breakdown["_counted"] = 1.0
        if self.metrics.timeline is not None:
            # The throughput series counts *commits* as they happen: durable
            # notifications resolve in batches (and a crash can swallow them
            # entirely), which would erase the degradation curve the timeline
            # exists to show.  Latency is attributed to the commit window when
            # the durable notification resolves it (see record_durable).
            self.metrics.timeline.record(self.env._now)
            txn.breakdown["_commit_time"] = self.env._now

    def record_durable(self, server: Server, txn: Transaction) -> None:
        """The transaction's result was returned to the client."""
        breakdown = txn.breakdown
        if "_counted" not in breakdown:
            return
        metrics = self.metrics
        latency = max(0.0, txn.durable_time - txn.first_start_time)
        metrics.latency.record(latency)
        if metrics.timeline is not None:
            # Attributed to the commit window (stamped in record_commit); the
            # latency itself runs through to durability, so a pre-crash commit
            # that waits out recovery shows up as a latency spike in the
            # window where it committed.
            metrics.timeline.record_latency(
                breakdown.get("_commit_time", txn.durable_time), latency
            )
        timer = metrics.breakdown
        for component, value in breakdown.items():
            if not component.startswith("_"):
                timer.add(component, value)
        timer.finish_transaction()

    def record_abort(self, server: Server, txn: Transaction) -> None:
        if not self._in_window(self.env._now):
            return
        self.metrics.aborted += 1
        reason = txn.abort_reason.value if txn.abort_reason else "unknown"
        self._abort_reasons[reason] += 1

    def record_crash_abort(self, server: Server, txn: Transaction) -> None:
        if "_counted" in txn.breakdown:
            # The transaction had been counted committed but its epoch /
            # watermark batch was lost to a crash: undo the count.
            self.metrics.committed -= 1
            if self.metrics.timeline is not None and "_commit_time" in txn.breakdown:
                self.metrics.timeline.unrecord(txn.breakdown["_commit_time"])
        self.metrics.crash_aborted += 1
        self._abort_reasons["crash"] += 1

    # -- run -----------------------------------------------------------------------------
    def start(self) -> None:
        """Spawn all background processes and worker fibers (idempotent)."""
        if self._started:
            return
        self._started = True
        self.durability.start()
        self.recovery.start()
        self.fault_scheduler.start()
        if self.fault_plan.requires_membership:
            self.membership.start()
            for server in self.servers.values():
                self.env.process(self._heartbeat_loop(server), name=f"heartbeat-p{server.partition_id}")
        if self.protocol.runs_own_loop:
            self.env.process(self.protocol.run_loop(), name="protocol-loop")
            return
        if self.arrival is not None and self.arrival.open_loop:
            start_open_loop(self)
            return
        # Closed loop; a non-None arrival here is "closed" with think time
        # (ArrivalSpec.coerce normalizes the trivial think_time_us=0 form to
        # None, so this branch cost exists only for genuinely thinking runs).
        think_time_us = 0.0
        if self.arrival is not None:
            think_time_us = float(
                self.arrival.effective_params().get("think_time_us", 0.0))
        for partition_id, server in self.servers.items():
            for worker_id in range(self.config.workers_per_partition):
                for fiber_id in range(self.config.inflight_per_worker):
                    stream_id = worker_id * self.config.inflight_per_worker + fiber_id
                    source = self.new_txn_source(partition_id, stream_id)
                    self.env.process(
                        worker_loop(self, server, source,
                                    think_time_us=think_time_us),
                        name=f"worker-p{partition_id}-{stream_id}",
                    )

    def _heartbeat_loop(self, server: Server):
        # Keeps running through the post-measurement drain so the failure
        # detector does not report spurious failures once workers stop.
        while True:
            if not server.crashed:
                self.membership.heartbeat(server.partition_id)
            yield self.env.timeout(self.config.heartbeat_interval_us)

    def run(self, duration_us: Optional[float] = None) -> RunResult:
        """Run the simulation and return the measured results."""
        if duration_us is not None:
            self._measure_end = self._measure_start + duration_us
        self.start()
        total = self._measure_end + self.config.epoch_length_us * 3
        # The loaded database (hundreds of thousands of records per run) is
        # live for the whole simulation; without freezing it, every full GC
        # pass re-traverses it and collections dominated by that scan cost a
        # measurable fraction of wall time (~20% on the YCSB small bench).
        # freeze() parks everything allocated so far — tables, records,
        # workload state — in the GC's permanent generation for the duration
        # of the run; per-event garbage stays collectable as usual, and the
        # engine keeps finished processes/messages acyclic so the collector
        # finds almost nothing anyway.  unfreeze() restores normal behavior
        # so dropped clusters are reclaimed between orchestrator cells.  The
        # gen-0 threshold is raised for the run as well: the default 700
        # triggers thousands of young-generation passes over event-churn
        # allocations that die by refcount anyway (batching them is worth
        # ~10% wall time; memory stays bounded by the 10k-object nursery).
        gc_thresholds = gc.get_threshold()
        gc.freeze()
        gc.set_threshold(10_000, gc_thresholds[1], gc_thresholds[2])
        try:
            if self._measure_start > 0 and self.env.now < self._measure_start:
                # Drain the warmup phase, then zero the network counters so the
                # reported message counts cover only the measurement window.
                self.env.run(until=self._measure_start)
                self.network.stats.reset()
            self.env.run(until=self._measure_end)
            self.stopped = True
            # Let in-flight group commits / watermarks drain so latency samples
            # of already-counted transactions are recorded.
            self.env.run(until=total)
        finally:
            gc.set_threshold(*gc_thresholds)
            gc.unfreeze()
        self.metrics.duration_us = self._measure_end - self._measure_start
        if self.admission_queues:
            # Fold the open-loop admission accounting into the run's counters
            # so it survives the RunResult JSON round trip (orchestrator cache).
            queues = self.admission_queues.values()
            self.counters.increment("arrivals_offered",
                                    sum(q.offered for q in queues))
            self.counters.increment("arrivals_dropped",
                                    sum(q.dropped for q in queues))
            self.counters.increment("admission_queue_peak_depth",
                                    max(q.peak_depth for q in queues))
        self.metrics.counters.merge(self.counters)
        return RunResult(
            protocol=self.config.protocol,
            durability=self.config.durability,
            workload=self.workload.name,
            n_partitions=self.config.n_partitions,
            metrics=self.metrics,
            network_messages=self.network.stats.messages_sent,
            per_txn_type=dict(self._per_txn_type),
            abort_reasons=dict(self._abort_reasons),
            extra={"config": self.config},
        )
