"""System configuration for a simulated cluster run.

Defaults follow the paper's experimental setup (§6.1): 4 partitions, 3
replicas per partition, ~10 ms group-commit latency target, medium-contention
YCSB.  Latency constants model a 10 GbE-class network and local DRAM access;
they are deliberately explicit so ablation benches can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..registry import DURABILITY_REGISTRY, PROTOCOL_REGISTRY

__all__ = ["SystemConfig", "PROTOCOLS", "DURABILITY_SCHEMES"]

#: Names accepted by ``SystemConfig.protocol`` — a live view of the protocol
#: registry, so externally registered protocols are accepted automatically.
PROTOCOLS = PROTOCOL_REGISTRY.names_view()

#: Names accepted by ``SystemConfig.durability`` — same, for group-commit schemes.
DURABILITY_SCHEMES = DURABILITY_REGISTRY.names_view()


@dataclass
class SystemConfig:
    """All tunables of a simulated cluster."""

    # -- topology ---------------------------------------------------------
    n_partitions: int = 4
    replicas_per_partition: int = 3
    workers_per_partition: int = 4
    # Transactions a worker keeps in flight (it starts a new one while a
    # running transaction waits for a remote response, §6.1.3).
    inflight_per_worker: int = 2

    # -- protocol selection ------------------------------------------------
    protocol: str = "primo"
    durability: str = "wm"
    # Primo's read-heavy fallback (§4.3): when True the workload is declared
    # read-heavy+distributed and Primo processes distributed transactions with
    # plain 2PL+2PC instead of WCF.
    primo_fallback_to_2pc: bool = False

    # -- timing model (microseconds) ----------------------------------------
    one_way_network_latency_us: float = 50.0
    local_message_latency_us: float = 0.2
    cpu_record_access_us: float = 0.4       # per read/write record access
    cpu_txn_logic_us: float = 2.0           # per-transaction compute
    cpu_message_handling_us: float = 2.0    # coordinator-side cost per message
    log_write_us: float = 15.0              # serialize a log record batch
    storage_persist_us: float = 100.0       # SSD / replication quorum persist
    clv_tracking_overhead_us: float = 0.8   # CLV per-access dependency tracking

    # -- group commit / watermark ------------------------------------------
    epoch_length_us: float = 10_000.0       # COCO epoch / WM interval t_m (10 ms)
    watermark_force_update: bool = True     # §5.1 lagging-partition force update
    # Per-partition jitter of flush/epoch processing, models OS/GC noise that
    # makes synchronous epoch barriers hurt at scale.
    epoch_jitter_us: float = 200.0

    # -- transaction retry ---------------------------------------------------
    backoff_initial_us: float = 500.0        # 0.5 ms initial backoff (§6.1.3)
    backoff_multiplier: float = 2.0
    backoff_max_us: float = 16_000.0
    max_retries: int = 1_000

    # -- Aria ---------------------------------------------------------------
    aria_batch_size_per_partition: int = 20

    # -- storage --------------------------------------------------------------
    # "auto": workloads that declare a fixed numeric schema (YCSB, Smallbank)
    # get array-backed columnar tables (~8x less memory per row — required for
    # the xlarge/web scale tiers); schema-less tables (TPC-C, TATP) stay
    # dict-backed.  "dict": force the dict-backed reference tables everywhere,
    # for A/B parity runs against the columnar backend.  Both backends are
    # bit-identical on fixed seeds (pinned by tests/storage and the goldens).
    storage_backend: str = "auto"

    # -- open-loop admission --------------------------------------------------
    # Bound of the per-partition queue between open-loop arrival streams and
    # the service fibers (closed-loop runs never queue).  Arrivals beyond a
    # full queue are dropped and counted (``arrivals_dropped`` in the run's
    # counters): under sustained overload the cluster sheds load instead of
    # queueing unboundedly.
    admission_queue_depth: int = 10_000

    # -- run control ---------------------------------------------------------
    warmup_us: float = 20_000.0
    duration_us: float = 200_000.0
    seed: int = 42

    # -- failure injection ----------------------------------------------------
    crash_partition: Optional[int] = None
    crash_time_us: Optional[float] = None
    heartbeat_interval_us: float = 2_000.0
    heartbeat_timeout_us: float = 10_000.0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        # Registry-backed: raises UnknownNameError (a ValueError) listing the
        # registered names with a did-you-mean suggestion — the same error the
        # scenario layer and protocol/scheme factories raise.
        PROTOCOL_REGISTRY.check(self.protocol)
        DURABILITY_REGISTRY.check(self.durability)
        if self.n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        if self.workers_per_partition < 1 or self.inflight_per_worker < 1:
            raise ValueError("workers_per_partition and inflight_per_worker must be >= 1")
        if self.replicas_per_partition < 1:
            raise ValueError("replicas_per_partition must be >= 1")
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        if self.epoch_length_us <= 0:
            raise ValueError("epoch_length_us must be positive")
        if self.admission_queue_depth < 1:
            raise ValueError("admission_queue_depth must be >= 1")
        if self.storage_backend not in ("auto", "dict"):
            raise ValueError(
                f"storage_backend must be 'auto' or 'dict', got {self.storage_backend!r}"
            )

    # -- derived quantities ----------------------------------------------------
    @property
    def roundtrip_us(self) -> float:
        return 2.0 * self.one_way_network_latency_us

    @property
    def concurrency_per_partition(self) -> int:
        return self.workers_per_partition * self.inflight_per_worker

    @property
    def total_duration_us(self) -> float:
        return self.warmup_us + self.duration_us

    def with_overrides(self, **overrides) -> "SystemConfig":
        """Return a copy with the given fields replaced (validates the result)."""
        updated = replace(self, **overrides)
        updated.validate()
        return updated

    @classmethod
    def for_protocol(cls, protocol: str, **overrides) -> "SystemConfig":
        """Config with the paper's default durability pairing for a protocol.

        Primo uses the watermark scheme; 2PL/Silo/Sundial baselines are paired
        with COCO group commit (§6.1.3); Aria's sequencing layer and TAPIR's
        replication handle their own durability.  The pairing is read from the
        protocol registry (``default_durability`` registration metadata), so
        registered extensions get the same treatment.
        """
        durability = overrides.pop("durability", None)
        if durability is None:
            entry = PROTOCOL_REGISTRY.entry(protocol)
            durability = entry.metadata.get("default_durability", "coco")
        return cls(protocol=protocol, durability=durability, **overrides)
