"""Run results returned by :meth:`repro.cluster.cluster.Cluster.run`."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..sim.stats import RunMetrics

__all__ = ["RunResult"]


def _jsonify(value):
    """Best-effort conversion of ``extra`` payloads to JSON-safe values."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonify(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonify(v) for v in value]
    return repr(value)


@dataclass
class RunResult:
    """Everything a single simulated run reports."""

    protocol: str
    durability: str
    workload: str
    n_partitions: int
    metrics: RunMetrics
    network_messages: int = 0
    per_txn_type: dict = field(default_factory=dict)
    abort_reasons: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    # -- convenience passthroughs used everywhere in benches/tests -------------
    @property
    def throughput_tps(self) -> float:
        return self.metrics.throughput_tps

    @property
    def throughput_ktps(self) -> float:
        return self.metrics.throughput_ktps

    @property
    def committed(self) -> int:
        return self.metrics.committed

    @property
    def aborted(self) -> int:
        return self.metrics.aborted

    @property
    def abort_rate(self) -> float:
        return self.metrics.abort_rate

    @property
    def crash_abort_rate(self) -> float:
        return self.metrics.crash_abort_rate

    @property
    def mean_latency_ms(self) -> float:
        return self.metrics.mean_latency_ms

    @property
    def p50_latency_ms(self) -> float:
        return self.metrics.p50_latency_ms

    @property
    def p99_latency_ms(self) -> float:
        return self.metrics.p99_latency_ms

    @property
    def p999_latency_ms(self) -> float:
        return self.metrics.p999_latency_ms

    @property
    def breakdown_us(self) -> dict:
        return self.metrics.breakdown.per_transaction()

    # -- degradation/recovery (fault-plan runs record a windowed timeline) -----
    @property
    def timeline(self):
        """The run's :class:`~repro.sim.stats.WindowedRecorder` (or ``None``
        for fault-free runs, which skip timeline recording entirely)."""
        return self.metrics.timeline

    @property
    def degradation_depth(self):
        """Deepest throughput dip relative to the median window (0..1), or
        ``None`` when the run recorded no timeline."""
        if self.metrics.timeline is None:
            return None
        return self.metrics.timeline.degradation_depth()

    def time_to_recovery_us(self, threshold: float = 0.9):
        """Time from the deepest dip back to ``threshold`` × median window
        throughput; ``None`` without a timeline or when the run ends degraded."""
        if self.metrics.timeline is None:
            return None
        return self.metrics.timeline.time_to_recovery_us(threshold)

    @property
    def time_to_90pct_recovery_us(self):
        return self.time_to_recovery_us(0.9)

    def summary(self) -> dict:
        data = self.metrics.summary()
        data.update(
            {
                "protocol": self.protocol,
                "durability": self.durability,
                "workload": self.workload,
                "n_partitions": self.n_partitions,
                "network_messages": self.network_messages,
                "per_txn_type": dict(self.per_txn_type),
                "abort_reasons": dict(self.abort_reasons),
            }
        )
        if self.metrics.timeline is not None:
            data["degradation_depth"] = self.degradation_depth
            data["time_to_90pct_recovery_us"] = self.time_to_90pct_recovery_us
        return data

    def to_json_dict(self) -> dict:
        """Lossless JSON form used by the orchestrator cache and pool workers.

        ``RunResult.from_json_dict(result.to_json_dict())`` reports exactly the
        same counts, latencies and breakdowns as ``result`` itself; ``extra``
        is converted best-effort (dataclasses become plain dicts).
        """
        return {
            "protocol": self.protocol,
            "durability": self.durability,
            "workload": self.workload,
            "n_partitions": self.n_partitions,
            "metrics": self.metrics.to_json_dict(),
            "network_messages": self.network_messages,
            "per_txn_type": dict(self.per_txn_type),
            "abort_reasons": dict(self.abort_reasons),
            "extra": _jsonify(self.extra),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "RunResult":
        return cls(
            protocol=data["protocol"],
            durability=data["durability"],
            workload=data["workload"],
            n_partitions=int(data["n_partitions"]),
            metrics=RunMetrics.from_json_dict(data["metrics"]),
            network_messages=int(data.get("network_messages", 0)),
            per_txn_type=dict(data.get("per_txn_type", {})),
            abort_reasons=dict(data.get("abort_reasons", {})),
            extra=dict(data.get("extra", {})),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RunResult({self.protocol}/{self.durability} on {self.workload}: "
            f"{self.throughput_ktps:.1f} kTPS, abort={self.abort_rate:.2%}, "
            f"latency={self.mean_latency_ms:.2f} ms)"
        )
