"""Crash injection and the recovery protocol of §5.2.

``CrashInjector`` is the legacy single-crash shim: it compiles the
``config.crash_partition`` / ``config.crash_time_us`` knobs into a one-event
:class:`repro.faults.FaultPlan` (the experiment of Fig. 12b kills one
partition after a fixed interval).  Declarative multi-event injection —
failure storms, rolling crashes, delay windows — goes through
``ScenarioSpec(faults=...)`` and :class:`repro.faults.FaultScheduler`
instead; the cluster itself feeds the legacy knobs through the same
compilation, so both paths are one code path.

``RecoveryCoordinator`` reacts to the membership service's failure
notification and runs the paper's recovery sequence:

1. the failed partition elects a new leader from its replication group, which
   by Raft's guarantees has every transaction below the last persisted
   partition watermark;
2. every partition publishes its latest partition watermark under a fresh
   TERM-ID; the agreed global watermark is the maximum published value;
3. transactions with ``ts`` at or above the agreed watermark are rolled back
   (their results were never returned to clients) using the undo images in the
   partitions' logs, everything below is acknowledged;
4. normal processing resumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..commit.logging import LogRecordKind
from ..core.watermark import WatermarkGroupCommit

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import Cluster

__all__ = ["CrashInjector", "RecoveryCoordinator"]


class CrashInjector:
    """Legacy shim: ``config.crash_*`` knobs compiled to a one-crash FaultPlan.

    :class:`~repro.cluster.cluster.Cluster` compiles the same knobs into its
    own fault plan (applied by ``Cluster.start()``), so this class is no
    longer part of the standard assembly path.  It is kept solely for code
    that drives the environment by hand *without* ``Cluster.start()``; as
    before this refactor, calling ``start()`` here *and* running the cluster
    normally schedules the crash twice.
    """

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.env = cluster.env

    def start(self) -> None:
        from ..faults import FaultPlan, FaultScheduler, compile_legacy_faults

        config = self.cluster.config
        events = compile_legacy_faults(crash_partition=config.crash_partition,
                                       crash_time_us=config.crash_time_us)
        if events:
            FaultScheduler(self.cluster, FaultPlan(events=tuple(events))).start()


class RecoveryCoordinator:
    """Runs watermark agreement + rollback after a partition-leader failure."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.env = cluster.env
        self.stats = {"recoveries": 0, "rolled_back": 0}
        self._in_progress: set[int] = set()

    def start(self) -> None:
        self.cluster.membership.on_failure(self._on_failure)

    def _on_failure(self, partition_id: int) -> None:
        # Deduplicate: a fault-scheduled recovery (`trigger`) and the
        # heartbeat monitor's failure notification can race to the same
        # conclusion; whichever fires second must not start a second
        # concurrent recovery for the partition.
        if partition_id in self._in_progress:
            return
        self._in_progress.add(partition_id)
        self.env.process(self._recover(partition_id), name=f"recovery-p{partition_id}")

    def trigger(self, partition_id: int) -> None:
        """Explicitly recover a crashed partition (``recover`` fault events).

        No-ops when the partition is up or a recovery for it is already in
        flight, so a scheduled recovery composes safely with heartbeat-based
        failure detection racing to the same conclusion.
        """
        if not self.cluster.servers[partition_id].crashed:
            return
        self._on_failure(partition_id)

    # -- the recovery sequence ------------------------------------------------------
    def _recover(self, partition_id: int) -> Generator:
        cluster = self.cluster
        failed = cluster.servers[partition_id]
        self.stats["recoveries"] += 1
        recovery_started = self.env.now

        # (1) leader re-election inside the failed partition's replica group.
        yield from failed.replication.elect_new_leader()

        # (1b) quiesce: pause new transactions, abort orphaned transactions
        # coordinated by the failed partition, and let in-flight commit
        # messages drain so the rollback below sees a settled state.
        cluster.pause_event = self.env.event()
        for server in cluster.servers.values():
            for txn in list(server.active_txns._active.values()):
                if txn.coordinator == partition_id:
                    server.store.lock_manager.release_all(txn.tid)
                    server.active_txns.deregister(txn)
        for _ in range(200):
            survivors_idle = all(
                len(server.active_txns) == 0
                for pid, server in cluster.servers.items()
                if pid != partition_id
            )
            if survivors_idle:
                break
            yield self.env.timeout(100.0)

        # (2) watermark agreement via the membership service (TERM-ID keyed).
        term = cluster.membership.new_recovery_term()
        for pid, server in cluster.servers.items():
            if pid == partition_id:
                watermark = server.log.latest_persisted_watermark()
            elif isinstance(cluster.durability, WatermarkGroupCommit):
                watermark = cluster.durability.latest_partition_watermark(pid)
            else:
                watermark = server.partition_watermark
            cluster.membership.publish_watermark(term, pid, watermark)
        # Publishing goes through the membership service's consensus: charge a
        # round trip per partition (they run in parallel, so one round trip).
        yield self.env.timeout(cluster.network.roundtrip_us(0, partition_id))
        agreed = cluster.membership.agreed_global_watermark(term) or 0.0

        # (3) roll back transactions with ts >= agreed on every partition.
        rolled_back = 0
        for server in cluster.servers.values():
            rolled_back += self._rollback_partition(server, agreed)
        self.stats["rolled_back"] += rolled_back
        cluster.counters.increment("recovery_rolled_back", rolled_back)

        # (3b) re-deliver remote writes of kept transactions whose one-way
        # commit message to the crashed partition was lost in flight.
        redelivered = self._redeliver_lost_writes(partition_id, agreed)
        cluster.counters.increment("recovery_redelivered", redelivered)

        if isinstance(cluster.durability, WatermarkGroupCommit):
            outcome = cluster.durability.resolve_after_crash(agreed)
            cluster.counters.increment("recovery_durable", outcome["durable"])

        # (4) resume normal processing.
        failed.recover_as_new_leader()
        cluster.membership.mark_recovered(partition_id)
        cluster.durability.notify_recovered(partition_id)
        if cluster.pause_event is not None and not cluster.pause_event.triggered:
            cluster.pause_event.succeed(None)
        cluster.pause_event = None
        self._in_progress.discard(partition_id)
        cluster.counters.increment("recoveries_completed")
        # Elapsed simulated time of the whole §5.2 sequence (election through
        # resume) — the storm figure reports it alongside degradation depth.
        # Counters are integer-valued; whole microseconds are plenty here.
        cluster.counters.increment(
            "recovery_time_us", int(round(self.env.now - recovery_started))
        )

    def _redeliver_lost_writes(self, crashed_partition: int, agreed_watermark: float) -> int:
        """Re-install writes below the agreed watermark that never reached the
        crashed partition (its leader died before the one-way message landed)."""
        target = self.cluster.servers[crashed_partition]
        redelivered = 0
        for pid, server in self.cluster.servers.items():
            if pid == crashed_partition:
                continue
            for record in server.log.records(LogRecordKind.COMMIT_DECISION):
                if record.txn_ts is None or record.txn_ts >= agreed_watermark:
                    continue
                writes = record.payload.get("remote_writes", {}).get(crashed_partition)
                if not writes:
                    continue
                for table_name, key, updates, is_insert, is_delete in writes:
                    table = target.store.table(table_name)
                    existing = table.get(key)
                    if is_delete:
                        if existing is not None and existing.wts < record.txn_ts:
                            table.delete(key)
                        continue
                    if existing is None:
                        if is_insert or updates:
                            fresh = table.upsert(key, updates)
                            fresh.wts = fresh.rts = record.txn_ts
                            redelivered += 1
                        continue
                    if existing.wts < record.txn_ts:
                        existing.install_fields(updates, record.txn_ts)
                        redelivered += 1
        return redelivered

    def _rollback_partition(self, server, agreed_watermark: float) -> int:
        """Undo installed writes of transactions above the agreed watermark."""
        records = server.log.writeset_records_at_or_after(agreed_watermark)
        rolled_back = 0
        for record in reversed(records):
            before_images = record.payload.get("before_images", {})
            for (table_name, key), image in before_images.items():
                table = server.store.table(table_name)
                if image is None:
                    # The write was an insert: remove the record again.
                    if table.get(key) is not None:
                        table.delete(key)
                    continue
                target = table.get(key)
                if target is not None:
                    target.value = dict(image)
                    target.version += 1
            rolled_back += 1
        return rolled_back
