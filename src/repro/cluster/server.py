"""A partition server (the partition's leader).

Owns the partition's storage, lock manager, write-ahead log, replication
group, active-transaction registry (used by the watermark scheme) and the TID
counter.  Worker fibers (see :mod:`repro.cluster.worker`) run on the server and
drive transactions through the cluster's protocol.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..commit.logging import LogManager
from ..replication.raft import ReplicationGroup
from ..sim.engine import Environment
from ..storage.lock import LockPolicy
from ..storage.partition import PartitionStore
from ..txn.transaction import Transaction, TxnId

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import Cluster

__all__ = ["ActiveTxnRegistry", "Server", "follower_node_base"]


def follower_node_base(n_partitions: int, partition_id: int) -> int:
    """First follower node id of a partition's replication group.

    Follower node ids live above the partition id space so the network
    charges normal inter-node latency for replication traffic; the cluster's
    topology resolution maps the same ids into regions, so the formula lives
    here once.
    """
    return n_partitions + partition_id * 10


class ActiveTxnRegistry:
    """Transactions currently active on a partition, with their ts lower bounds.

    Rule 1 of §5.1 takes the minimum over this registry when the partition
    watermark is generated.  Both coordinated transactions and remote
    transactions that have locked records here are registered.
    """

    def __init__(self) -> None:
        self._active: dict = {}

    def register(self, txn: Transaction, lower_bound: Optional[float] = None) -> None:
        if lower_bound is not None and lower_bound > txn.lower_bound_ts and txn.ts is None:
            txn.lower_bound_ts = lower_bound
        self._active[txn.tid] = txn

    def deregister(self, txn: Transaction) -> None:
        self._active.pop(txn.tid, None)

    def is_empty(self) -> bool:
        return not self._active

    def __len__(self) -> int:
        return len(self._active)

    def min_effective_ts(self) -> Optional[float]:
        if not self._active:
            return None
        return min(txn.effective_ts() for txn in self._active.values())

    def clear(self) -> None:
        self._active.clear()


class Server:
    """Leader of one partition."""

    def __init__(self, cluster: "Cluster", partition_id: int, lock_policy: LockPolicy):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.config = cluster.config
        self.partition_id = partition_id
        self.store = PartitionStore(
            self.env, partition_id, lock_policy,
            backend=cluster.config.storage_backend,
        )
        follower_base = follower_node_base(cluster.config.n_partitions, partition_id)
        self.replication = ReplicationGroup(
            self.env,
            cluster.network,
            partition_id,
            cluster.config.replicas_per_partition,
            follower_base,
            cluster.config.storage_persist_us,
        )
        self.log = LogManager(
            self.env, partition_id, self.replication, cluster.config.log_write_us
        )
        self.active_txns = ActiveTxnRegistry()
        self.crashed = False
        # Watermark state (§5.1): the published partition watermark and the
        # floor every new commit timestamp must exceed (floor >= watermark;
        # force-update may push the floor further ahead).
        self.partition_watermark = 0.0
        self.ts_floor = 0.0
        # Highest logical timestamp assigned or installed on this partition.
        self.highest_ts_seen = 0.0
        self._tid_counter = 0

    # -- transaction creation -----------------------------------------------------
    def new_transaction(self, name: str = "txn") -> Transaction:
        self._tid_counter += 1
        tid = TxnId(self._tid_counter * self.config.n_partitions + self.partition_id,
                    self.partition_id)
        return Transaction(tid=tid, coordinator=self.partition_id, name=name)

    # -- timestamp bookkeeping ------------------------------------------------------
    def note_ts(self, ts: float) -> None:
        if ts > self.highest_ts_seen:
            self.highest_ts_seen = ts

    # -- failure handling --------------------------------------------------------------
    def crash(self) -> None:
        """Simulate the partition leader failing."""
        self.crashed = True
        self.replication.leader_crashed()
        self.cluster.network.set_unreachable(self.partition_id, True)

    def recover_as_new_leader(self) -> None:
        """Complete fail-over: a replica takes over with the replicated state."""
        self.crashed = False
        self.cluster.network.set_unreachable(self.partition_id, False)
        self.store.lock_manager.force_release_everything()
        self.active_txns.clear()
