"""Worker fibers: the closed-loop transaction drivers on every partition.

Each partition runs ``workers_per_partition × inflight_per_worker`` fibers.  A
fiber repeatedly takes the next transaction from its workload stream, drives
it through the cluster's protocol with exponential back-off on aborts
(§6.1.3), hands the committed transaction to the durability scheme, and —
without blocking on the group commit — moves on to the next transaction.  A
separate completion fiber waits for the durability event so latency includes
the ``return`` component without stalling the execution pipeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..commit.base import DURABLE
from ..sim.network import NodeUnreachable
from ..txn.transaction import AbortReason

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import Cluster
    from .server import Server
    from ..workloads.base import TxnSource

__all__ = ["worker_loop"]


def worker_loop(cluster: "Cluster", server: "Server", source: "TxnSource") -> Generator:
    """The closed-loop driver for one worker fiber."""
    config = cluster.config
    protocol = cluster.protocol
    durability = cluster.durability
    env = cluster.env

    while not cluster.stopped:
        if server.crashed:
            # The partition leader is down: idle until fail-over completes.
            yield env.timeout(config.heartbeat_interval_us)
            continue
        if cluster.pause_event is not None and not cluster.pause_event.triggered:
            # Recovery is quiescing the cluster: wait for it to finish.
            yield cluster.pause_event
            continue
        gate = durability.admission_gate(server)
        if gate is not None:
            yield gate
            continue

        spec = source.next()
        first_start = env.now
        backoff_us = config.backoff_initial_us
        total_backoff = 0.0

        for _attempt in range(config.max_retries):
            if cluster.stopped or server.crashed:
                break
            if cluster.pause_event is not None and not cluster.pause_event.triggered:
                yield cluster.pause_event
            txn = server.new_transaction(spec.name)
            txn.first_start_time = first_start
            txn.read_only = spec.read_only
            txn.start_time = env.now
            durability.transaction_begin(server)
            try:
                committed = yield from protocol.run_transaction(server, txn, spec.logic)
            except NodeUnreachable:
                # A participant crashed mid-transaction; clean up and retry.
                protocol.release_locks_everywhere(txn)
                txn.abort_reason = AbortReason.CRASH
                committed = False
            finally:
                durability.transaction_finished(server)

            if committed:
                txn.add_breakdown("execute", txn.execute_end_time - txn.start_time)
                txn.add_breakdown("backoff", total_backoff)
                overhead = durability.execution_overhead_us(txn)
                if overhead > 0:
                    yield env.timeout(overhead)
                cluster.record_commit(server, txn)
                durable_event = durability.transaction_executed(server, txn)
                env.process(
                    _await_durability(cluster, server, txn, durable_event),
                    name=f"await-durable-{txn.tid}",
                )
                break

            cluster.record_abort(server, txn)
            if txn.abort_reason is AbortReason.USER:
                break
            # Exponential back-off before retrying the aborted transaction.
            yield env.timeout(backoff_us)
            total_backoff += backoff_us
            backoff_us = min(backoff_us * config.backoff_multiplier, config.backoff_max_us)


def _await_durability(cluster: "Cluster", server: "Server", txn, durable_event) -> Generator:
    """Completion fiber: record end-to-end latency once the result is durable."""
    outcome = yield durable_event
    txn.durable_time = cluster.env.now
    txn.add_breakdown("return", max(0.0, txn.durable_time - txn.commit_end_time))
    if outcome == DURABLE:
        cluster.record_durable(server, txn)
    else:
        cluster.record_crash_abort(server, txn)
