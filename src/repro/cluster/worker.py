"""Worker fibers: the transaction drivers on every partition.

Each partition runs ``workers_per_partition × inflight_per_worker`` fibers in
one of two modes sharing a single retry body (:func:`_drive`):

* **closed loop** (:func:`worker_loop`, the default): a fiber repeatedly
  takes the next transaction from its own workload stream and drives it
  back-to-back — offered load is whatever the system sustains.
* **open loop** (:func:`open_worker_loop`, :mod:`repro.arrivals`): fibers
  drain the partition's bounded admission queue, fed by schedulable arrival
  processes.  Latency is measured from *arrival* time, so queueing delay is
  part of every reported percentile — the offered-load methodology.

A fiber drives each transaction through the cluster's protocol with
exponential back-off on aborts (§6.1.3), hands the committed transaction to
the durability scheme, and — without blocking on the group commit — moves on
to the next transaction.  A completion *callback* (one slotted object per
committed transaction, attached straight to the durability event) records
end-to-end latency once the result is durable, so latency includes the
``return`` component without stalling the execution pipeline.  The durability
schemes wake whole batches of these callbacks through one shared fast-lane
notify (:meth:`~repro.sim.engine.Environment.succeed_all`): a group commit
releasing ``k`` transactions costs one scheduled event, not ``k`` process
resumptions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..commit.base import DURABLE
from ..sim.network import NodeUnreachable
from ..txn.transaction import AbortReason

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import Cluster
    from .server import Server
    from ..arrivals import AdmissionQueue
    from ..workloads.base import TxnSource

__all__ = ["open_worker_loop", "worker_loop"]


class _Completion:
    """Durability-event callback recording one transaction's completion.

    Replaces the old per-transaction ``_await_durability`` fiber: attaching a
    callback costs one slotted object, where spawning a process cost a
    generator frame, a Process event and a fast-lane kick-off event — all on
    the per-commit path.
    """

    __slots__ = ("cluster", "server", "txn")

    def __init__(self, cluster: "Cluster", server: "Server", txn):
        self.cluster = cluster
        self.server = server
        self.txn = txn

    def __call__(self, event) -> None:
        cluster = self.cluster
        txn = self.txn
        txn.durable_time = cluster.env.now
        txn.add_breakdown("return", max(0.0, txn.durable_time - txn.commit_end_time))
        if event._value == DURABLE:
            cluster.record_durable(self.server, txn)
        else:
            cluster.record_crash_abort(self.server, txn)


def _drive(cluster: "Cluster", server: "Server", spec, first_start: float,
           queue_wait_us=None) -> Generator:
    """Drive one transaction spec to completion with retry/back-off.

    The shared body of both fiber modes.  ``first_start`` anchors the
    end-to-end latency measurement: the draw instant in the closed loop, the
    *arrival* instant in the open loop (where ``queue_wait_us`` additionally
    surfaces the admission-queue delay as a breakdown component; the closed
    loop passes ``None`` so its breakdowns stay byte-identical to before the
    open loop existed).
    """
    config = cluster.config
    protocol = cluster.protocol
    durability = cluster.durability
    env = cluster.env
    # Bound-method hoists for the per-attempt loop body.
    new_transaction = server.new_transaction
    run_transaction = protocol.run_transaction
    timeout = env.timeout
    backoff_us = config.backoff_initial_us
    total_backoff = 0.0

    for _attempt in range(config.max_retries):
        if cluster.stopped or server.crashed:
            break
        if cluster.pause_event is not None and not cluster.pause_event.triggered:
            yield cluster.pause_event
        txn = new_transaction(spec.name)
        txn.first_start_time = first_start
        txn.read_only = spec.read_only
        txn.start_time = env._now
        durability.transaction_begin(server)
        try:
            committed = yield from run_transaction(server, txn, spec.logic)
        except NodeUnreachable:
            # A participant crashed mid-transaction; clean up and retry.
            protocol.release_locks_everywhere(txn)
            txn.abort_reason = AbortReason.CRASH
            committed = False
        finally:
            durability.transaction_finished(server)

        if committed:
            txn.add_breakdown("execute", txn.execute_end_time - txn.start_time)
            txn.add_breakdown("backoff", total_backoff)
            if queue_wait_us is not None:
                txn.add_breakdown("queue", queue_wait_us)
            overhead = durability.execution_overhead_us(txn)
            if overhead > 0:
                yield timeout(overhead)
            cluster.record_commit(server, txn)
            durable_event = durability.transaction_executed(server, txn)
            durable_event.add_callback(_Completion(cluster, server, txn))
            break

        cluster.record_abort(server, txn)
        if txn.abort_reason is AbortReason.USER:
            break
        # Exponential back-off before retrying the aborted transaction.
        yield timeout(backoff_us)
        total_backoff += backoff_us
        backoff_us = min(backoff_us * config.backoff_multiplier, config.backoff_max_us)


def worker_loop(cluster: "Cluster", server: "Server", source: "TxnSource",
                think_time_us: float = 0.0) -> Generator:
    """The closed-loop driver for one worker fiber.

    ``think_time_us`` is the interactive-client pause (``arrival={"kind":
    "closed", "think_time_us": ...}``): after each transaction completes the
    fiber sleeps that long before drawing its next request, the classic
    N-clients model where offered load is governed by the client count and
    the think time.  The default 0 takes no extra branch on the hot path, so
    the historical back-to-back loop stays bit-identical.
    """
    config = cluster.config
    durability = cluster.durability
    env = cluster.env
    next_spec = source.next

    while not cluster.stopped:
        if server.crashed:
            # The partition leader is down: idle until fail-over completes.
            yield env.timeout(config.heartbeat_interval_us)
            continue
        if cluster.pause_event is not None and not cluster.pause_event.triggered:
            # Recovery is quiescing the cluster: wait for it to finish.
            yield cluster.pause_event
            continue
        gate = durability.admission_gate(server)
        if gate is not None:
            yield gate
            continue

        spec = next_spec()
        yield from _drive(cluster, server, spec, env._now)
        if think_time_us > 0.0:
            yield env.timeout(think_time_us)


def open_worker_loop(cluster: "Cluster", server: "Server",
                     queue: "AdmissionQueue") -> Generator:
    """The open-loop service fiber: drain the partition's admission queue.

    Transactions were already drawn at their arrival instants; this fiber only
    executes them, anchoring latency at the queued arrival time so the
    reported percentiles include admission-queue delay.
    """
    config = cluster.config
    durability = cluster.durability
    env = cluster.env

    while not cluster.stopped:
        if server.crashed:
            # The partition leader is down: idle until fail-over completes
            # (arrivals keep queueing — and dropping once the queue fills).
            yield env.timeout(config.heartbeat_interval_us)
            continue
        if cluster.pause_event is not None and not cluster.pause_event.triggered:
            yield cluster.pause_event
            continue
        gate = durability.admission_gate(server)
        if gate is not None:
            yield gate
            continue

        item = queue.take()
        if item is None:
            yield queue.wait()
            continue
        arrival_us, spec = item
        yield from _drive(cluster, server, spec, arrival_us,
                          queue_wait_us=env._now - arrival_us)
