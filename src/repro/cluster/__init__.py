"""Cluster runtime: configuration, servers, workers, recovery and results."""

from .cluster import Cluster
from .config import DURABILITY_SCHEMES, PROTOCOLS, SystemConfig
from .recovery import CrashInjector, RecoveryCoordinator
from .results import RunResult
from .server import ActiveTxnRegistry, Server

__all__ = [
    "ActiveTxnRegistry",
    "Cluster",
    "CrashInjector",
    "DURABILITY_SCHEMES",
    "PROTOCOLS",
    "RecoveryCoordinator",
    "RunResult",
    "Server",
    "SystemConfig",
]
