"""Storage substrate: records, tables, indexes, locks and partition stores."""

from .lock import LockManager, LockMode, LockPolicy, LockRequest, LockState
from .partition import PartitionStore
from .record import Record
from .table import SecondaryIndex, Table, TableError

__all__ = [
    "LockManager",
    "LockMode",
    "LockPolicy",
    "LockRequest",
    "LockState",
    "PartitionStore",
    "Record",
    "SecondaryIndex",
    "Table",
    "TableError",
]
