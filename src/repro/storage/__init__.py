"""Storage substrate: records, tables, indexes, locks and partition stores."""

from .columnar import ColumnarRecord, ColumnarTable, TableSchema
from .lock import LockManager, LockMode, LockPolicy, LockRequest, LockState
from .partition import PartitionStore
from .record import Record
from .table import SecondaryIndex, Table, TableError

__all__ = [
    "ColumnarRecord",
    "ColumnarTable",
    "LockManager",
    "LockMode",
    "LockPolicy",
    "LockRequest",
    "LockState",
    "PartitionStore",
    "Record",
    "SecondaryIndex",
    "Table",
    "TableError",
    "TableSchema",
]
