"""Record representation shared by every protocol.

A record carries the TicToc metadata (``wts``/``rts``) used by Primo and
Sundial, a monotone ``version`` used by Silo-style validation, and a pointer
to its lock state (managed by :class:`repro.storage.lock.LockManager`).

Values are stored as plain Python dictionaries (column name → value) so that
the TPC-C tables read naturally; YCSB simply stores ``{"field0": ...}``.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Record"]


class Record:
    """A single row plus the concurrency-control metadata attached to it."""

    __slots__ = ("key", "value", "wts", "rts", "version", "lock_state", "deleted")

    def __init__(self, key: Any, value: dict):
        self.key = key
        self.value = dict(value)
        # TicToc valid interval [wts, rts]; fresh records are valid from time 0.
        self.wts: float = 0.0
        self.rts: float = 0.0
        # Monotone write counter used by Silo read-set validation.
        self.version: int = 0
        # Lazily-created LockState (see repro.storage.lock).
        self.lock_state = None
        self.deleted = False

    # -- value access ----------------------------------------------------
    def snapshot(self) -> dict:
        """Copy of the current value (so buffered reads are isolated)."""
        return dict(self.value)

    def get(self, column: str, default: Any = None) -> Any:
        return self.value.get(column, default)

    def install(self, new_value: dict, ts: float) -> None:
        """Install a committed write at logical time ``ts`` (TicToc semantics)."""
        self.value = dict(new_value)
        self.wts = ts
        self.rts = ts
        self.version += 1

    def install_fields(self, updates: dict, ts: float) -> None:
        """Install a partial update (only the listed columns change)."""
        self.value.update(updates)
        self.wts = ts
        self.rts = ts
        self.version += 1

    def extend_rts(self, ts: float) -> None:
        """Extend the valid interval so that ``ts`` ∈ [wts, rts]."""
        if ts > self.rts:
            self.rts = ts

    def valid_at(self, ts: float) -> bool:
        """True if a read at logical time ``ts`` is consistent with this record."""
        return self.wts <= ts <= self.rts

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Record(key={self.key!r}, wts={self.wts}, rts={self.rts}, "
            f"version={self.version})"
        )
