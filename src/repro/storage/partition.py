"""A partition's local storage: a set of tables plus its lock manager.

Partitions own disjoint key ranges (horizontal partitioning as in §3); the
mapping from a key to its partition is the workload's responsibility — the
storage layer only knows about the tables it hosts.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..sim.engine import Environment
from .lock import LockManager, LockPolicy
from .record import Record
from .table import Table, TableError

__all__ = ["PartitionStore"]


class PartitionStore:
    """All tables (and the lock manager) hosted by one partition."""

    def __init__(
        self,
        env: Environment,
        partition_id: int,
        lock_policy: LockPolicy = LockPolicy.WAIT_DIE,
    ):
        self.env = env
        self.partition_id = partition_id
        self.tables: dict[str, Table] = {}
        self.lock_manager = LockManager(env, policy=lock_policy)

    def create_table(self, name: str) -> Table:
        if name in self.tables:
            raise TableError(f"table {name!r} already exists on partition {self.partition_id}")
        table = Table(name)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError as exc:
            raise TableError(
                f"table {name!r} does not exist on partition {self.partition_id}"
            ) from exc

    def get_record(self, table_name: str, key) -> Optional[Record]:
        return self.table(table_name).get(key)

    def require_record(self, table_name: str, key) -> Record:
        return self.table(table_name).require(key)

    def insert_record(self, table_name: str, key, value: dict) -> Record:
        return self.table(table_name).insert(key, value)

    def table_names(self) -> Iterable[str]:
        return self.tables.keys()

    def total_records(self) -> int:
        return sum(len(t) for t in self.tables.values())
