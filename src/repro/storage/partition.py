"""A partition's local storage: a set of tables plus its lock manager.

Partitions own disjoint key ranges (horizontal partitioning as in §3); the
mapping from a key to its partition is the workload's responsibility — the
storage layer only knows about the tables it hosts.

Two table backends coexist (see :mod:`repro.storage.columnar`): the
dict-backed :class:`~repro.storage.table.Table` (the bit-identical reference,
required for dynamic schemas like TPC-C) and the array-backed
:class:`~repro.storage.columnar.ColumnarTable` for fixed numeric schemas
(YCSB, Smallbank), which costs ~8x less memory per row — the difference
between the ``xlarge``/``web`` scale tiers fitting in RAM or not.  A workload
opts a table in by passing a :class:`~repro.storage.columnar.TableSchema` to
:meth:`PartitionStore.create_table`; ``backend="dict"``
(``SystemConfig.storage_backend``) overrides every schema back to the
reference tables for A/B parity runs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..sim.engine import Environment
from .columnar import ColumnarTable, TableSchema
from .lock import LockManager, LockPolicy
from .record import Record
from .table import Table, TableError

__all__ = ["PartitionStore"]


class PartitionStore:
    """All tables (and the lock manager) hosted by one partition."""

    def __init__(
        self,
        env: Environment,
        partition_id: int,
        lock_policy: LockPolicy = LockPolicy.WAIT_DIE,
        backend: str = "auto",
    ):
        if backend not in ("auto", "dict"):
            raise ValueError(
                f"unknown storage backend {backend!r}; use 'auto' or 'dict'"
            )
        self.env = env
        self.partition_id = partition_id
        self.backend = backend
        self.tables: dict[str, Union[Table, ColumnarTable]] = {}
        self.lock_manager = LockManager(env, policy=lock_policy)

    def create_table(
        self, name: str, schema: Optional[TableSchema] = None
    ) -> Union[Table, ColumnarTable]:
        """Create a table; with a ``schema`` (and ``backend="auto"``) it is
        columnar, otherwise the dict-backed reference table."""
        if name in self.tables:
            raise TableError(f"table {name!r} already exists on partition {self.partition_id}")
        if schema is not None and self.backend == "auto":
            table: Union[Table, ColumnarTable] = ColumnarTable(name, schema)
        else:
            table = Table(name)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Union[Table, ColumnarTable]:
        try:
            return self.tables[name]
        except KeyError as exc:
            raise TableError(
                f"table {name!r} does not exist on partition {self.partition_id}"
            ) from exc

    def get_record(self, table_name: str, key) -> Optional[Record]:
        return self.table(table_name).get(key)

    def require_record(self, table_name: str, key) -> Record:
        return self.table(table_name).require(key)

    def insert_record(self, table_name: str, key, value: dict) -> Record:
        return self.table(table_name).insert(key, value)

    def table_names(self) -> Iterable[str]:
        return self.tables.keys()

    def total_records(self) -> int:
        return sum(len(t) for t in self.tables.values())

    def storage_bytes(self) -> int:
        """Approximate array bytes held by columnar tables (diagnostics).

        Dict-backed tables report 0 — their footprint is spread over boxed
        Python objects the GC owns, which ``tracemalloc`` (the bench gate's
        memory accounting) measures instead.
        """
        return sum(
            t.nbytes for t in self.tables.values() if isinstance(t, ColumnarTable)
        )
