"""Per-partition lock manager.

Implements shared/exclusive record locks with the two deadlock-handling
policies used in the paper's baselines and in Primo itself:

* ``NO_WAIT``  — a conflicting request aborts immediately (2PL(NW)).
* ``WAIT_DIE`` — an *older* requester (smaller TID) waits for the holder, a
  *younger* one aborts (2PL(WD) and Primo's WCF, §4.2 "Deadlock Prevention").

Acquisition is two-tier for the hot path: :meth:`LockManager.acquire_nowait`
resolves the common uncontended case synchronously (``True``/``False``) and
only returns an :class:`~repro.sim.engine.Event` to wait on when the request
actually queues, so protocols pay no generator frame for an immediately
granted lock.  :meth:`LockManager.acquire` wraps it as the old simulation
generator for call sites that prefer ``yield from``.  The manager never
grants conflicting locks and always wakes waiters in FIFO order subject to
mode compatibility, which tests verify as an invariant.

Hot-path notes: uncontended acquisition touches no queue machinery at all —
the wait deque is allocated lazily on first contention, grant/release keep an
exclusive-holder count so the record's aggregate mode is maintained in O(1)
without scanning holders, and compatibility checks compare dict sizes instead
of materializing sets.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Generator, Optional, Union

from ..sim.engine import Environment, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .record import Record

__all__ = ["LockMode", "LockPolicy", "LockState", "LockManager", "LockRequest"]


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class LockPolicy(enum.Enum):
    NO_WAIT = "no_wait"
    WAIT_DIE = "wait_die"


class LockRequest:
    """A pending lock request parked on a record's wait queue."""

    __slots__ = ("txn_id", "mode", "event")

    def __init__(self, txn_id, mode: LockMode, event: Event):
        self.txn_id = txn_id
        self.mode = mode
        self.event = event


class LockState:
    """Lock bookkeeping attached to a single record."""

    __slots__ = ("holders", "mode", "waiters", "n_exclusive")

    def __init__(self) -> None:
        # txn_id -> LockMode currently granted.
        self.holders: dict = {}
        self.mode: Optional[LockMode] = None
        # Allocated lazily on first contention: uncontended records never pay
        # for a deque.
        self.waiters: Optional[deque[LockRequest]] = None
        # Number of holders in EXCLUSIVE mode, so the aggregate mode is
        # maintained in O(1) on grant/release instead of scanning holders.
        self.n_exclusive = 0

    @property
    def locked(self) -> bool:
        return bool(self.holders)

    def held_by(self, txn_id) -> Optional[LockMode]:
        return self.holders.get(txn_id)

    def compatible(self, txn_id, mode: LockMode) -> bool:
        """Can ``txn_id`` be granted ``mode`` right now?"""
        holders = self.holders
        if not holders:
            return True
        if len(holders) == 1 and txn_id in holders:
            # Only holder is the requester itself: re-entrant / upgrade.
            return True
        if mode is LockMode.SHARED and self.n_exclusive == 0:
            return True
        return False


class LockManager:
    """Grants, queues and releases record locks for one partition."""

    def __init__(self, env: Environment, policy: LockPolicy = LockPolicy.WAIT_DIE):
        self.env = env
        self.policy = policy
        # txn_id -> set of records it currently holds locks on.
        self._held: dict = {}
        self.stats = {"grants": 0, "waits": 0, "aborts": 0, "releases": 0}

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _state(record: "Record") -> LockState:
        if record.lock_state is None:
            record.lock_state = LockState()
        return record.lock_state

    def holders_of(self, record: "Record") -> dict:
        return dict(self._state(record).holders)

    def is_locked(self, record: "Record") -> bool:
        return self._state(record).locked

    def held_by(self, txn_id, record: "Record") -> Optional[LockMode]:
        return self._state(record).held_by(txn_id)

    def locks_held(self, txn_id) -> set:
        return set(self._held.get(txn_id, ()))

    # -- acquisition --------------------------------------------------------
    def try_acquire(self, txn_id, record: "Record", mode: LockMode) -> bool:
        """Non-blocking acquire; returns ``True`` iff granted immediately."""
        state = self._state(record)
        held = state.holders.get(txn_id)
        if held is not None and (held is mode or held is LockMode.EXCLUSIVE):
            return True
        if not state.waiters and state.compatible(txn_id, mode):
            self._grant(state, txn_id, record, mode)
            return True
        return False

    def acquire_nowait(
        self,
        txn_id,
        record: "Record",
        mode: LockMode,
        policy: Optional[LockPolicy] = None,
    ) -> Union[bool, Event]:
        """Uncontended-first acquire: bool when resolved synchronously.

        Returns ``True`` (granted), ``False`` (the caller must abort: NO_WAIT
        conflict, or WAIT_DIE with a younger requester), or an
        :class:`~repro.sim.engine.Event` the caller must ``yield``; the
        event's value is the grant flag.  The fast path — re-entrant or
        immediately compatible requests — touches no queue machinery and
        allocates nothing.

        Grants are FIFO-fair: a new request never overtakes queued waiters
        (otherwise a steady stream of shared readers starves lock upgrades on
        hot records).  To keep WAIT_DIE deadlock-free with parallel lock
        acquisition (2PC prepares fan out to several partitions at once), the
        age check therefore covers both the current holders and every queued
        waiter: a transaction only ever waits for strictly younger ones.
        """
        state = record.lock_state
        if state is None:
            record.lock_state = state = LockState()
        held = state.holders.get(txn_id)
        if held is not None and (held is mode or held is LockMode.EXCLUSIVE):
            # Re-entrant request (or downgrade request): already satisfied.
            return True
        if not state.waiters and state.compatible(txn_id, mode):
            self._grant(state, txn_id, record, mode)
            return True
        if (policy or self.policy) is LockPolicy.NO_WAIT:
            self.stats["aborts"] += 1
            return False
        # WAIT_DIE: wait only if strictly older than every conflicting holder
        # and every transaction already queued ahead of us.
        conflicting = [holder for holder in state.holders if holder != txn_id]
        if state.waiters:
            conflicting.extend(request.txn_id for request in state.waiters)
        if any(txn_id >= other for other in conflicting):
            self.stats["aborts"] += 1
            return False
        self.stats["waits"] += 1
        event = self.env.event()
        request = LockRequest(txn_id, mode, event)
        if state.waiters is None:
            state.waiters = deque()
        state.waiters.append(request)
        return event

    def acquire(
        self,
        txn_id,
        record: "Record",
        mode: LockMode,
        policy: Optional[LockPolicy] = None,
    ) -> Generator[Event, object, bool]:
        """Generator form of :meth:`acquire_nowait` (``yield from`` friendly)."""
        outcome = self.acquire_nowait(txn_id, record, mode, policy)
        if type(outcome) is bool:
            return outcome
        granted = yield outcome
        return bool(granted)

    def _grant(self, state: LockState, txn_id, record: "Record", mode: LockMode) -> None:
        holders = state.holders
        previous = holders.get(txn_id)
        granted = (
            LockMode.EXCLUSIVE
            if mode is LockMode.EXCLUSIVE or previous is LockMode.EXCLUSIVE
            else LockMode.SHARED
        )
        holders[txn_id] = granted
        if granted is LockMode.EXCLUSIVE and previous is not LockMode.EXCLUSIVE:
            state.n_exclusive += 1
        state.mode = LockMode.EXCLUSIVE if state.n_exclusive else LockMode.SHARED
        held = self._held.get(txn_id)
        if held is None:
            self._held[txn_id] = held = set()
        held.add(record)
        self.stats["grants"] += 1

    # -- release ------------------------------------------------------------
    def release(self, txn_id, record: "Record") -> None:
        """Release one lock (no-op if the transaction does not hold it)."""
        state = record.lock_state
        if state is None or txn_id not in state.holders:
            return
        removed = state.holders.pop(txn_id)
        if removed is LockMode.EXCLUSIVE:
            state.n_exclusive -= 1
        held = self._held.get(txn_id)
        if held is not None:
            held.discard(record)
            if not held:
                del self._held[txn_id]
        self.stats["releases"] += 1
        self._recompute_mode(state)
        if state.waiters:
            self._wake_waiters(state, record)

    def release_all(self, txn_id) -> None:
        """Release every lock held by ``txn_id``."""
        held = self._held.get(txn_id)
        if not held:
            return
        for record in list(held):
            self.release(txn_id, record)

    def cancel_waits(self, txn_id) -> None:
        """Remove ``txn_id`` from every wait queue (used on external aborts)."""
        # Wait queues are short; a linear sweep over held records is not
        # possible because the transaction is *not* a holder, so we cannot
        # know which records it waits on without scanning.  Callers keep
        # track of the single record they wait on instead; this method is a
        # safety net used by crash handling.
        # Intentionally left as a no-op hook for LockState owners.

    def _recompute_mode(self, state: LockState) -> None:
        if not state.holders:
            state.mode = None
        elif state.n_exclusive:
            state.mode = LockMode.EXCLUSIVE
        else:
            state.mode = LockMode.SHARED

    def _wake_waiters(self, state: LockState, record: "Record") -> None:
        """Grant queued requests that are now compatible (FIFO, no overtaking).

        All waiters granted in one wake-up round share a single fast-lane
        notify (``Environment.succeed_all``) — a burst of shared readers
        released by an exclusive unlock costs one scheduled event.
        """
        waiters = state.waiters
        granted: list[Event] = []
        while waiters:
            request = waiters[0]
            if not state.compatible(request.txn_id, request.mode):
                break
            waiters.popleft()
            self._grant(state, request.txn_id, record, request.mode)
            granted.append(request.event)
            if request.mode is LockMode.EXCLUSIVE:
                break
        if granted:
            self.env.succeed_all(granted, True)

    # -- failure handling -----------------------------------------------------
    def abort_waiters(self, record: "Record") -> None:
        """Fail every queued request on a record (crash/rollback path).

        The woken requester counts as an abort; the accounting lives here so
        both the generator and the ``acquire_nowait`` call sites observe it.
        """
        state = self._state(record)
        waiters = state.waiters
        failed: list[Event] = []
        while waiters:
            request = waiters.popleft()
            failed.append(request.event)
            self.stats["aborts"] += 1
        if failed:
            self.env.succeed_all(failed, False)

    def force_release_everything(self) -> None:
        """Drop all lock state (used when a partition crashes and restarts)."""
        for txn_id in list(self._held):
            for record in list(self._held.get(txn_id, ())):
                state = self._state(record)
                removed = state.holders.pop(txn_id, None)
                if removed is LockMode.EXCLUSIVE:
                    state.n_exclusive -= 1
                self._recompute_mode(state)
                self.abort_waiters(record)
        self._held.clear()
