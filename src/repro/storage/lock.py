"""Per-partition lock manager.

Implements shared/exclusive record locks with the two deadlock-handling
policies used in the paper's baselines and in Primo itself:

* ``NO_WAIT``  — a conflicting request aborts immediately (2PL(NW)).
* ``WAIT_DIE`` — an *older* requester (smaller TID) waits for the holder, a
  *younger* one aborts (2PL(WD) and Primo's WCF, §4.2 "Deadlock Prevention").

Acquisition is a simulation generator: a request that must wait yields an
event that the release path triggers when the lock is granted.  The manager
never grants conflicting locks and always wakes waiters in FIFO order subject
to mode compatibility, which tests verify as an invariant.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Generator, Optional

from ..sim.engine import Environment, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .record import Record

__all__ = ["LockMode", "LockPolicy", "LockState", "LockManager", "LockRequest"]


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class LockPolicy(enum.Enum):
    NO_WAIT = "no_wait"
    WAIT_DIE = "wait_die"


class LockRequest:
    """A pending lock request parked on a record's wait queue."""

    __slots__ = ("txn_id", "mode", "event")

    def __init__(self, txn_id, mode: LockMode, event: Event):
        self.txn_id = txn_id
        self.mode = mode
        self.event = event


class LockState:
    """Lock bookkeeping attached to a single record."""

    __slots__ = ("holders", "mode", "waiters")

    def __init__(self) -> None:
        # txn_id -> LockMode currently granted.
        self.holders: dict = {}
        self.mode: Optional[LockMode] = None
        self.waiters: deque[LockRequest] = deque()

    @property
    def locked(self) -> bool:
        return bool(self.holders)

    def held_by(self, txn_id) -> Optional[LockMode]:
        return self.holders.get(txn_id)

    def compatible(self, txn_id, mode: LockMode) -> bool:
        """Can ``txn_id`` be granted ``mode`` right now?"""
        if not self.holders:
            return True
        if set(self.holders) == {txn_id}:
            # Only holder is the requester itself: re-entrant / upgrade.
            return True
        if mode is LockMode.SHARED and self.mode is LockMode.SHARED:
            return True
        return False


class LockManager:
    """Grants, queues and releases record locks for one partition."""

    def __init__(self, env: Environment, policy: LockPolicy = LockPolicy.WAIT_DIE):
        self.env = env
        self.policy = policy
        # txn_id -> set of records it currently holds locks on.
        self._held: dict = {}
        self.stats = {"grants": 0, "waits": 0, "aborts": 0, "releases": 0}

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _state(record: "Record") -> LockState:
        if record.lock_state is None:
            record.lock_state = LockState()
        return record.lock_state

    def holders_of(self, record: "Record") -> dict:
        return dict(self._state(record).holders)

    def is_locked(self, record: "Record") -> bool:
        return self._state(record).locked

    def held_by(self, txn_id, record: "Record") -> Optional[LockMode]:
        return self._state(record).held_by(txn_id)

    def locks_held(self, txn_id) -> set:
        return set(self._held.get(txn_id, ()))

    # -- acquisition --------------------------------------------------------
    def try_acquire(self, txn_id, record: "Record", mode: LockMode) -> bool:
        """Non-blocking acquire; returns ``True`` iff granted immediately."""
        state = self._state(record)
        held = state.held_by(txn_id)
        if held is not None and (held is mode or held is LockMode.EXCLUSIVE):
            return True
        if not state.waiters and state.compatible(txn_id, mode):
            self._grant(state, txn_id, record, mode)
            return True
        return False

    def acquire(
        self,
        txn_id,
        record: "Record",
        mode: LockMode,
        policy: Optional[LockPolicy] = None,
    ) -> Generator[Event, object, bool]:
        """Acquire a lock, waiting if the policy allows; returns success flag.

        ``False`` means the caller must abort the transaction (NO_WAIT
        conflict, or WAIT_DIE with a younger requester).

        Grants are FIFO-fair: a new request never overtakes queued waiters
        (otherwise a steady stream of shared readers starves lock upgrades on
        hot records).  To keep WAIT_DIE deadlock-free with parallel lock
        acquisition (2PC prepares fan out to several partitions at once), the
        age check therefore covers both the current holders and every queued
        waiter: a transaction only ever waits for strictly younger ones.
        """
        policy = policy or self.policy
        state = self._state(record)
        held = state.held_by(txn_id)
        if held is not None and (held is mode or held is LockMode.EXCLUSIVE):
            # Re-entrant request (or downgrade request): already satisfied.
            return True
        if not state.waiters and state.compatible(txn_id, mode):
            self._grant(state, txn_id, record, mode)
            return True
        if policy is LockPolicy.NO_WAIT:
            self.stats["aborts"] += 1
            return False
        # WAIT_DIE: wait only if strictly older than every conflicting holder
        # and every transaction already queued ahead of us.
        conflicting = [holder for holder in state.holders if holder != txn_id]
        conflicting.extend(request.txn_id for request in state.waiters)
        if any(txn_id >= other for other in conflicting):
            self.stats["aborts"] += 1
            return False
        self.stats["waits"] += 1
        event = self.env.event()
        request = LockRequest(txn_id, mode, event)
        state.waiters.append(request)
        granted = yield event
        if granted:
            return True
        self.stats["aborts"] += 1
        return False

    def _grant(self, state: LockState, txn_id, record: "Record", mode: LockMode) -> None:
        previous = state.held_by(txn_id)
        state.holders[txn_id] = (
            LockMode.EXCLUSIVE
            if mode is LockMode.EXCLUSIVE or previous is LockMode.EXCLUSIVE
            else LockMode.SHARED
        )
        state.mode = (
            LockMode.EXCLUSIVE
            if any(m is LockMode.EXCLUSIVE for m in state.holders.values())
            else LockMode.SHARED
        )
        self._held.setdefault(txn_id, set()).add(record)
        self.stats["grants"] += 1

    # -- release ------------------------------------------------------------
    def release(self, txn_id, record: "Record") -> None:
        """Release one lock (no-op if the transaction does not hold it)."""
        state = self._state(record)
        if txn_id not in state.holders:
            return
        del state.holders[txn_id]
        held = self._held.get(txn_id)
        if held is not None:
            held.discard(record)
            if not held:
                del self._held[txn_id]
        self.stats["releases"] += 1
        self._recompute_mode(state)
        self._wake_waiters(state, record)

    def release_all(self, txn_id) -> None:
        """Release every lock held by ``txn_id``."""
        for record in list(self._held.get(txn_id, ())):
            self.release(txn_id, record)

    def cancel_waits(self, txn_id) -> None:
        """Remove ``txn_id`` from every wait queue (used on external aborts)."""
        # Wait queues are short; a linear sweep over held records is not
        # possible because the transaction is *not* a holder, so we cannot
        # know which records it waits on without scanning.  Callers keep
        # track of the single record they wait on instead; this method is a
        # safety net used by crash handling.
        # Intentionally left as a no-op hook for LockState owners.

    def _recompute_mode(self, state: LockState) -> None:
        if not state.holders:
            state.mode = None
        elif any(m is LockMode.EXCLUSIVE for m in state.holders.values()):
            state.mode = LockMode.EXCLUSIVE
        else:
            state.mode = LockMode.SHARED

    def _wake_waiters(self, state: LockState, record: "Record") -> None:
        """Grant queued requests that are now compatible (FIFO, no overtaking)."""
        while state.waiters:
            request = state.waiters[0]
            if not state.compatible(request.txn_id, request.mode):
                break
            state.waiters.popleft()
            self._grant(state, request.txn_id, record, request.mode)
            request.event.succeed(True)
            if request.mode is LockMode.EXCLUSIVE:
                break

    # -- failure handling -----------------------------------------------------
    def abort_waiters(self, record: "Record") -> None:
        """Fail every queued request on a record (crash/rollback path)."""
        state = self._state(record)
        while state.waiters:
            request = state.waiters.popleft()
            request.event.succeed(False)

    def force_release_everything(self) -> None:
        """Drop all lock state (used when a partition crashes and restarts)."""
        for txn_id in list(self._held):
            for record in list(self._held.get(txn_id, ())):
                state = self._state(record)
                state.holders.pop(txn_id, None)
                self._recompute_mode(state)
                self.abort_waiters(record)
        self._held.clear()
