"""Columnar storage backend for fixed-schema tables (the million-key tier).

The dict-backed :class:`~repro.storage.table.Table` pays ~400 bytes of boxed
Python objects per row (a :class:`~repro.storage.record.Record` instance plus
a per-row value dict plus boxed column values).  At the ``xlarge``/``web``
scale tiers — millions of keys — that overhead, not the event kernel, is what
exhausts memory.  :class:`ColumnarTable` stores the same rows as parallel
C-backed ``array`` columns (8 bytes per numeric cell) plus flat metadata
arrays for the TicToc timestamps, the Silo version counter and the deleted
flag: ~50 bytes per row for YCSB's two-field schema, an ~8x reduction.

The columnar table sits behind the exact ``Table``/``Record`` interface the
protocols already use: :meth:`ColumnarTable.get` hands back a
:class:`ColumnarRecord` *view* whose attribute reads and writes go straight
to the backing arrays.  Views are ephemeral (a fresh one per access) but
compare and hash by ``(table, row)``, so the lock manager's per-transaction
held-lock sets — which rely on record identity with the dict backend — keep
working when two views of one row meet.  Lock state stays sparse: a dict
keyed by row index holds :class:`~repro.storage.lock.LockState` only for the
rows that have ever been locked.

Which backend a table uses is decided at creation time
(:meth:`repro.storage.partition.PartitionStore.create_table`): workloads with
a fixed numeric schema (YCSB, Smallbank) pass a :class:`TableSchema`;
dynamic-schema workloads (TPC-C's mixed-type rows and secondary-index
lookups) pass none and keep the dict backend, which remains the bit-identical
reference (``storage_backend="dict"`` forces it everywhere).

Simulation semantics are backend-independent by construction: the columnar
path stores the same values, applies the same unique-key/missing-key errors,
and never changes event ordering — fixed-seed runs produce bit-identical
results under either backend (pinned by ``tests/integration``).
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, Iterator, Optional

from .table import SecondaryIndex, TableError

__all__ = ["TableSchema", "ColumnarTable", "ColumnarRecord"]

#: Column kind -> array typecode.  ``i`` = signed 64-bit integer, ``f`` =
#: double.  Everything the fixed-schema workloads store is one of the two.
_TYPECODES = {"i": "q", "f": "d"}


class TableSchema:
    """An ordered, typed column layout for one columnar table.

    ``columns`` is a sequence of ``(name, kind)`` pairs; ``kind`` is ``"i"``
    (64-bit signed int) or ``"f"`` (double).  Column order is the dict order
    row snapshots are materialized in, so it should match the order the
    workload's loader writes fields in (keeps row dicts identical across
    backends).
    """

    __slots__ = ("columns", "names", "kinds")

    def __init__(self, columns):
        cols = tuple((str(name), str(kind)) for name, kind in columns)
        if not cols:
            raise ValueError("TableSchema requires at least one column")
        seen = set()
        for name, kind in cols:
            if kind not in _TYPECODES:
                raise ValueError(
                    f"unknown column kind {kind!r} for {name!r}; use 'i' or 'f'"
                )
            if name in seen:
                raise ValueError(f"duplicate column {name!r}")
            seen.add(name)
        self.columns = cols
        self.names = tuple(name for name, _ in cols)
        self.kinds = dict(cols)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        inner = ", ".join(f"{name}:{kind}" for name, kind in self.columns)
        return f"TableSchema({inner})"


class ColumnarRecord:
    """A live view of one columnar row, API-compatible with ``Record``.

    Attribute reads and writes (``wts``/``rts``/``version``/``lock_state``/
    ``deleted``/``value``) go straight to the owning table's arrays, so a view
    is safe to hold across simulation yields: every view of a row observes
    every other view's writes.  Equality and hashing are by ``(table, row)``
    because the lock manager tracks held locks in sets of records.
    """

    __slots__ = ("_t", "_row", "key")

    def __init__(self, table: "ColumnarTable", row: int, key):
        self._t = table
        self._row = row
        self.key = key

    # -- identity (lock-manager held-sets rely on it) ----------------------
    def __hash__(self) -> int:
        return hash((id(self._t), self._row))

    def __eq__(self, other) -> bool:
        if type(other) is not ColumnarRecord:
            return NotImplemented
        return self._t is other._t and self._row == other._row

    # -- concurrency-control metadata --------------------------------------
    @property
    def wts(self) -> float:
        return self._t._wts[self._row]

    @wts.setter
    def wts(self, ts: float) -> None:
        self._t._wts[self._row] = ts

    @property
    def rts(self) -> float:
        return self._t._rts[self._row]

    @rts.setter
    def rts(self, ts: float) -> None:
        self._t._rts[self._row] = ts

    @property
    def version(self) -> int:
        return self._t._version[self._row]

    @version.setter
    def version(self, v: int) -> None:
        self._t._version[self._row] = v

    @property
    def lock_state(self):
        return self._t._lock_states.get(self._row)

    @lock_state.setter
    def lock_state(self, state) -> None:
        self._t._lock_states[self._row] = state

    @property
    def deleted(self) -> bool:
        return bool(self._t._deleted[self._row])

    @deleted.setter
    def deleted(self, flag: bool) -> None:
        self._t._deleted[self._row] = 1 if flag else 0

    # -- value access -------------------------------------------------------
    @property
    def value(self) -> dict:
        """The row materialized as a column-ordered dict (a private copy)."""
        t, row = self._t, self._row
        return {name: col[row] for name, col in t._columns}

    @value.setter
    def value(self, new_value: dict) -> None:
        self._t._write_row(self._row, new_value, full=True)

    def snapshot(self) -> dict:
        return self.value

    def get(self, column: str, default: Any = None) -> Any:
        col = self._t._by_name.get(column)
        if col is None:
            return default
        return col[self._row]

    def install(self, new_value: dict, ts: float) -> None:
        t, row = self._t, self._row
        t._write_row(row, new_value, full=True)
        t._wts[row] = ts
        t._rts[row] = ts
        t._version[row] += 1

    def install_fields(self, updates: dict, ts: float) -> None:
        t, row = self._t, self._row
        t._write_row(row, updates, full=False)
        t._wts[row] = ts
        t._rts[row] = ts
        t._version[row] += 1

    def extend_rts(self, ts: float) -> None:
        rts = self._t._rts
        if ts > rts[self._row]:
            rts[self._row] = ts

    def valid_at(self, ts: float) -> bool:
        row = self._row
        return self._t._wts[row] <= ts <= self._t._rts[row]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ColumnarRecord(key={self.key!r}, wts={self.wts}, rts={self.rts}, "
            f"version={self.version})"
        )


class ColumnarTable:
    """Array-backed fixed-schema table, API-compatible with ``Table``.

    Primary keys are expected to be the dense integers ``0..n-1`` the
    workload loaders produce (rows are addressed by key directly, no per-key
    dict at all); out-of-order or non-contiguous integer keys transparently
    fall back to a sparse ``key -> row`` map, so recovery redelivery and
    ad-hoc inserts stay correct — they just pay the map.
    """

    def __init__(self, name: str, schema: TableSchema):
        self.name = name
        self.schema = schema
        # One array per column, plus flat metadata arrays indexed by row.
        self._by_name: dict[str, array] = {
            col: array(_TYPECODES[kind]) for col, kind in schema.columns
        }
        self._columns: tuple = tuple(self._by_name.items())
        self._wts = array("d")
        self._rts = array("d")
        self._version = array("q")
        self._deleted = bytearray()
        # Sparse: row index -> LockState, only for rows ever contended.
        self._lock_states: dict[int, Any] = {}
        # Dense mode stores *no key objects at all*: keys are exactly the row
        # indices 0..n-1 (what every workload loader produces), which at 1M
        # rows saves ~36 bytes/row of boxed ints + list slots.  The first
        # out-of-order key materializes `_keys` (row -> key) and `_key_rows`
        # (key -> row) and the table runs sparse from then on.
        self._n_rows = 0
        self._keys: Optional[list] = None       # row -> key (sparse mode only)
        self._key_rows: Optional[dict] = None   # key -> row (sparse mode only)
        self._dense = True
        self._live_count = 0
        self._indexes: dict[str, SecondaryIndex] = {}

    # -- sizing ------------------------------------------------------------
    def __len__(self) -> int:
        return self._live_count

    def __contains__(self, key) -> bool:
        return self.get(key) is not None

    @property
    def nbytes(self) -> int:
        """Approximate bytes held by the backing arrays (diagnostics)."""
        total = len(self._deleted)
        for _, col in self._columns:
            total += len(col) * col.itemsize
        for meta in (self._wts, self._rts, self._version):
            total += len(meta) * meta.itemsize
        return total

    # -- key routing ---------------------------------------------------------
    def _row_of(self, key) -> int:
        """Row index for ``key``, or -1 when absent."""
        if self._dense:
            if type(key) is int and 0 <= key < self._n_rows:
                return key
            return -1
        row = self._key_rows.get(key, -1)
        return row

    def _key_of(self, row: int):
        """Primary key of ``row`` (identity in dense mode)."""
        return row if self._dense else self._keys[row]

    def _go_sparse(self) -> None:
        self._dense = False
        self._keys = list(range(self._n_rows))
        self._key_rows = {row: row for row in range(self._n_rows)}

    # -- index management ---------------------------------------------------
    def create_index(self, name: str, key_func: Callable[[dict], Any]) -> SecondaryIndex:
        if name in self._indexes:
            raise TableError(f"index {name!r} already exists on table {self.name!r}")
        index = SecondaryIndex(name, key_func)
        columns = self._columns
        for row in range(self._n_rows):
            if not self._deleted[row]:
                index.add(self._key_of(row), {col: arr[row] for col, arr in columns})
        self._indexes[name] = index
        return index

    def index(self, name: str) -> SecondaryIndex:
        try:
            return self._indexes[name]
        except KeyError as exc:
            raise TableError(f"no index {name!r} on table {self.name!r}") from exc

    def index_lookup(self, index_name: str, index_key) -> list:
        return self.index(index_name).lookup(index_key)

    # -- record access -------------------------------------------------------
    def get(self, key) -> Optional[ColumnarRecord]:
        row = self._row_of(key)
        if row < 0 or self._deleted[row]:
            return None
        return ColumnarRecord(self, row, key)

    def require(self, key) -> ColumnarRecord:
        record = self.get(key)
        if record is None:
            raise TableError(f"key {key!r} not found in table {self.name!r}")
        return record

    def _write_row(self, row: int, values: dict, *, full: bool) -> None:
        by_name = self._by_name
        for col, value in values.items():
            arr = by_name.get(col)
            if arr is None:
                raise TableError(
                    f"column {col!r} not in the fixed schema of columnar "
                    f"table {self.name!r} (columns: {', '.join(self.schema.names)})"
                )
            arr[row] = value
        if full:
            for col, arr in self._columns:
                if col not in values:
                    arr[row] = 0

    def _append_row(self, key, value: dict) -> int:
        by_name = self._by_name
        if len(value) > len(by_name) or any(col not in by_name for col in value):
            unknown = [col for col in value if col not in by_name]
            raise TableError(
                f"column {unknown[0]!r} not in the fixed schema of columnar "
                f"table {self.name!r} (columns: {', '.join(self.schema.names)})"
            )
        row = self._n_rows
        if self._dense and not (type(key) is int and key == row):
            self._go_sparse()
        if not self._dense:
            self._keys.append(key)
            self._key_rows[key] = row
        for col, arr in self._columns:
            item = value.get(col, 0)
            try:
                arr.append(item)
            except TypeError as exc:
                # Roll the half-appended row back before raising so the
                # arrays stay rectangular.
                for _, done in self._columns:
                    if len(done) > row:
                        done.pop()
                if not self._dense:
                    self._keys.pop()
                    del self._key_rows[key]
                raise TableError(
                    f"column {col!r} of columnar table {self.name!r} is "
                    f"numeric; got {item!r}"
                ) from exc
        self._wts.append(0.0)
        self._rts.append(0.0)
        self._version.append(0)
        self._deleted.append(0)
        self._n_rows = row + 1
        return row

    def insert(self, key, value: dict) -> ColumnarRecord:
        """Insert a new row; duplicate keys are an error (unique-key constraint)."""
        row = self._row_of(key)
        if row >= 0:
            if not self._deleted[row]:
                raise TableError(f"duplicate key {key!r} in table {self.name!r}")
            # Reuse the tombstoned row in place.
            self._write_row(row, value, full=True)
            self._wts[row] = 0.0
            self._rts[row] = 0.0
            self._version[row] += 1
            self._deleted[row] = 0
        else:
            row = self._append_row(key, value)
        self._live_count += 1
        record = ColumnarRecord(self, row, key)
        if self._indexes:
            materialized = record.value
            for index in self._indexes.values():
                index.add(key, materialized)
        return record

    def upsert(self, key, value: dict) -> ColumnarRecord:
        """Insert or overwrite without raising on duplicates (loader use only)."""
        row = self._row_of(key)
        if row < 0:
            return self.insert(key, value)
        if self._indexes:
            old = {col: arr[row] for col, arr in self._columns}
            for index in self._indexes.values():
                index.remove(key, old)
        self._write_row(row, value, full=True)
        if self._deleted[row]:
            self._deleted[row] = 0
            self._live_count += 1
        record = ColumnarRecord(self, row, key)
        if self._indexes:
            materialized = record.value
            for index in self._indexes.values():
                index.add(key, materialized)
        return record

    def delete(self, key) -> None:
        record = self.require(key)
        row = record._row
        if self._indexes:
            materialized = record.value
            for index in self._indexes.values():
                index.remove(key, materialized)
        self._deleted[row] = 1
        self._live_count -= 1

    def keys(self) -> Iterator:
        deleted = self._deleted
        if self._dense:
            return (row for row in range(self._n_rows) if not deleted[row])
        keys = self._keys
        return (keys[row] for row in range(self._n_rows) if not deleted[row])

    def records(self) -> Iterator[ColumnarRecord]:
        deleted = self._deleted
        return (
            ColumnarRecord(self, row, self._key_of(row))
            for row in range(self._n_rows)
            if not deleted[row]
        )

    def scan(self, predicate: Callable[[dict], bool]) -> list[ColumnarRecord]:
        """Full scan returning live records whose value satisfies ``predicate``."""
        out = []
        deleted = self._deleted
        columns = self._columns
        for row in range(self._n_rows):
            if deleted[row]:
                continue
            if predicate({col: arr[row] for col, arr in columns}):
                out.append(ColumnarRecord(self, row, self._key_of(row)))
        return out
