"""In-memory tables with a primary hash index and optional secondary indexes.

A :class:`Table` maps primary keys to :class:`Record` instances.  Secondary
indexes map an index key (any hashable derived from the row) to the list of
primary keys having that index key — enough to express the TPC-C lookups
(customer by last name, orders by customer, new-orders by district, ...).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from .record import Record

__all__ = ["Table", "SecondaryIndex", "TableError"]


class TableError(KeyError):
    """Raised for missing keys / duplicate inserts."""


class SecondaryIndex:
    """A non-unique secondary index maintained alongside a table.

    Entries are kept as insertion-ordered dict-backed sets (primary key ->
    ``None``), so :meth:`remove` is O(1) instead of a ``list.remove`` scan
    while :meth:`lookup` still returns keys in insertion order (the TPC-C
    customer-by-last-name path relies on that ordering).
    """

    __slots__ = ("name", "key_func", "_entries")

    def __init__(self, name: str, key_func: Callable[[dict], Any]):
        self.name = name
        self.key_func = key_func
        self._entries: dict[Any, dict] = {}

    def add(self, primary_key, row: dict) -> None:
        self._entries.setdefault(self.key_func(row), {})[primary_key] = None

    def remove(self, primary_key, row: dict) -> None:
        index_key = self.key_func(row)
        keys = self._entries.get(index_key)
        if keys is not None and primary_key in keys:
            del keys[primary_key]
            if not keys:
                del self._entries[index_key]

    def lookup(self, index_key) -> list:
        """Primary keys matching ``index_key`` (possibly empty, insertion order)."""
        return list(self._entries.get(index_key, ()))


class Table:
    """A named collection of records with hash-based primary access."""

    __slots__ = ("name", "_records", "_indexes", "_live_count")

    def __init__(self, name: str):
        self.name = name
        self._records: dict[Any, Record] = {}
        self._indexes: dict[str, SecondaryIndex] = {}
        # Live (non-deleted) record count, maintained on insert/delete/upsert
        # so __len__ is O(1) instead of a full-table scan.
        self._live_count = 0

    def __len__(self) -> int:
        return self._live_count

    def __contains__(self, key) -> bool:
        return self.get(key) is not None

    # -- index management --------------------------------------------------
    def create_index(self, name: str, key_func: Callable[[dict], Any]) -> SecondaryIndex:
        if name in self._indexes:
            raise TableError(f"index {name!r} already exists on table {self.name!r}")
        index = SecondaryIndex(name, key_func)
        for primary_key, record in self._records.items():
            index.add(primary_key, record.value)
        self._indexes[name] = index
        return index

    def index(self, name: str) -> SecondaryIndex:
        try:
            return self._indexes[name]
        except KeyError as exc:
            raise TableError(f"no index {name!r} on table {self.name!r}") from exc

    def index_lookup(self, index_name: str, index_key) -> list:
        return self.index(index_name).lookup(index_key)

    # -- record access -------------------------------------------------------
    def get(self, key) -> Optional[Record]:
        record = self._records.get(key)
        if record is None or record.deleted:
            return None
        return record

    def require(self, key) -> Record:
        record = self.get(key)
        if record is None:
            raise TableError(f"key {key!r} not found in table {self.name!r}")
        return record

    def insert(self, key, value: dict) -> Record:
        """Insert a new row; duplicate keys are an error (unique-key constraint)."""
        existing = self._records.get(key)
        if existing is not None and not existing.deleted:
            raise TableError(f"duplicate key {key!r} in table {self.name!r}")
        record = Record(key, value)
        self._records[key] = record
        self._live_count += 1
        for index in self._indexes.values():
            index.add(key, record.value)
        return record

    def upsert(self, key, value: dict) -> Record:
        """Insert or overwrite without raising on duplicates (loader use only)."""
        existing = self._records.get(key)
        if existing is not None:
            for index in self._indexes.values():
                index.remove(key, existing.value)
            existing.value = dict(value)
            if existing.deleted:
                existing.deleted = False
                self._live_count += 1
            for index in self._indexes.values():
                index.add(key, existing.value)
            return existing
        return self.insert(key, value)

    def delete(self, key) -> None:
        record = self.require(key)
        record.deleted = True
        self._live_count -= 1
        for index in self._indexes.values():
            index.remove(key, record.value)

    def keys(self) -> Iterator:
        return (k for k, r in self._records.items() if not r.deleted)

    def records(self) -> Iterator[Record]:
        return (r for r in self._records.values() if not r.deleted)

    def scan(self, predicate: Callable[[dict], bool]) -> list[Record]:
        """Full scan returning live records whose value satisfies ``predicate``."""
        return [r for r in self._records.values() if not r.deleted and predicate(r.value)]
