"""Deterministic random number generation for workloads.

Provides a seeded wrapper around :mod:`random` plus a Zipfian generator using
the classic Gray et al. (SIGMOD '94) rejection-free method, which is what YCSB
and DBx1000 use.  Every worker gets its own :class:`DeterministicRandom`
derived from the run seed so that simulations are exactly reproducible.

Two sampling strategies are available for the Zipf distribution:

* ``method="gray"`` (default) — the analytic inverse-CDF approximation, with
  all per-draw constants hoisted at construction time so a draw is one
  uniform, two comparisons and at most one ``pow``.  This is the method the
  determinism goldens are pinned to: it consumes exactly one uniform per draw
  and reproduces the seed repository's key stream bit-for-bit.
* ``method="alias"`` — Vose's alias method over the exact Zipf PMF.  Setup is
  O(n) (cached per ``(n, theta)``), a draw is one uniform and two table
  lookups with no ``pow`` at all.  It samples the *exact* distribution but
  consumes the underlying uniform stream differently, so it is opt-in: runs
  that must match the pinned goldens keep the default.
"""

from __future__ import annotations

import math
import random
from zlib import crc32
from typing import Sequence

__all__ = [
    "DeterministicRandom",
    "ZipfGenerator",
    "AliasSampler",
    "derive_seed",
    "stable_hash",
]


def derive_seed(base_seed: int, *components: int) -> int:
    """Derive a child seed from a base seed and a tuple of integer components."""
    seed = base_seed & 0xFFFFFFFFFFFFFFFF
    for component in components:
        seed = (seed * 1_000_003 + (component + 0x9E3779B9)) & 0xFFFFFFFFFFFFFFFF
    return seed


def stable_hash(label: str) -> int:
    """Process-independent 32-bit hash of a string label.

    ``hash(str)`` is randomized per interpreter process (PYTHONHASHSEED), so
    deriving worker seeds from it silently made every run unique.  All seed
    derivation goes through this function instead, which is what makes the
    fixed-seed determinism gate (``scripts/bench_gate.py --check``) possible.
    """
    return crc32(label.encode("utf-8")) & 0xFFFFFFFF


class DeterministicRandom:
    """Seeded random source with the helpers workloads need."""

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)
        # Bind the hot entry points straight to the underlying C methods:
        # workload inner loops call these millions of times per run.
        self.random = self._rng.random
        self.uniform = self._rng.uniform
        self.choice = self._rng.choice
        self.shuffle = self._rng.shuffle

    def uniform_int(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def sample_without_replacement(self, low: int, high: int, count: int) -> list[int]:
        """Distinct uniform integers in [low, high]; count must fit the range."""
        return self._rng.sample(range(low, high + 1), count)

    def boolean(self, probability_true: float) -> bool:
        return self._rng.random() < probability_true

    def exponential(self, mean: float) -> float:
        return self._rng.expovariate(1.0 / mean) if mean > 0 else 0.0

    def nurand(self, a: int, x: int, y: int, c: int = 123) -> int:
        """TPC-C NURand non-uniform distribution."""
        return (((self.uniform_int(0, a) | self.uniform_int(x, y)) + c) % (y - x + 1)) + x

    def last_name(self, number: int) -> str:
        """TPC-C customer last-name syllable encoding."""
        syllables = [
            "BAR", "OUGHT", "ABLE", "PRI", "PRES",
            "ESE", "ANTI", "CALLY", "ATION", "EING",
        ]
        return (
            syllables[(number // 100) % 10]
            + syllables[(number // 10) % 10]
            + syllables[number % 10]
        )

    def alphanumeric(self, length: int) -> str:
        chars = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
        return "".join(self._rng.choice(chars) for _ in range(length))


class AliasSampler:
    """Vose alias-method sampler over an arbitrary discrete distribution.

    One uniform draw per sample, O(1) per draw after O(n) setup.  Used by
    :class:`ZipfGenerator` in ``method="alias"`` mode; exposed separately so
    other workloads can sample custom discrete distributions cheaply.
    """

    __slots__ = ("n", "_prob", "_alias", "_random")

    def __init__(self, weights: Sequence[float], rng: DeterministicRandom):
        n = len(weights)
        if n == 0:
            raise ValueError("AliasSampler requires at least one weight")
        total = math.fsum(weights)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.n = n
        self._random = rng.random
        scaled = [w * n / total for w in weights]
        prob = [0.0] * n
        alias = [0] * n
        small = [i for i, p in enumerate(scaled) if p < 1.0]
        large = [i for i, p in enumerate(scaled) if p >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for i in large:
            prob[i] = 1.0
        for i in small:
            prob[i] = 1.0  # numerical leftovers
        self._prob = prob
        self._alias = alias

    def next(self) -> int:
        """Draw one index in ``[0, n)`` using a single uniform."""
        u = self._random() * self.n
        i = int(u)
        if i >= self.n:  # u == 1.0 edge after float scaling
            i = self.n - 1
        return i if (u - i) < self._prob[i] else self._alias[i]


class ZipfGenerator:
    """Zipfian key generator over ``[0, n_items)`` with skew ``theta``.

    ``theta = 0`` degenerates to uniform; ``theta -> 1`` concentrates accesses
    on a few hot keys.  The zeta constants (and the alias tables in ``alias``
    mode) are memoised per ``(n, theta)`` to keep repeated workload
    construction cheap.
    """

    _zeta_cache: dict[tuple[int, float], float] = {}
    _alias_cache: dict[tuple[int, float], tuple] = {}

    def __init__(self, n_items: int, theta: float, rng: DeterministicRandom,
                 method: str = "gray"):
        if n_items <= 0:
            raise ValueError("ZipfGenerator requires at least one item")
        if not 0.0 <= theta < 1.0:
            raise ValueError("theta must be in [0, 1)")
        if method not in ("gray", "alias"):
            raise ValueError(f"unknown zipf sampling method {method!r}")
        self.n_items = n_items
        self.theta = theta
        self.method = method
        self._rng = rng
        self._random = rng.random
        if theta == 0.0:
            self.next = self._next_uniform
            return
        if method == "alias":
            self._sampler = self._make_alias_sampler(n_items, theta, rng)
            self.next = self._sampler.next
            return
        self._zetan = self._zeta(n_items, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        denominator = 1.0 - self._zeta2 / self._zetan
        if denominator == 0.0:
            # n_items == 2: the analytic tail below is unreachable (every
            # uz < zetan maps to key 0 or 1), so eta's value is irrelevant —
            # but the seed code divided by zero here.
            self._eta = 0.0
        else:
            self._eta = (1.0 - math.pow(2.0 / n_items, 1.0 - theta)) / denominator
        # Per-draw constants hoisted out of next(): the seed code recomputed
        # pow(0.5, theta) on every draw.
        self._cut2 = 1.0 + math.pow(0.5, theta)

    @classmethod
    def _zeta(cls, n: int, theta: float) -> float:
        key = (n, theta)
        if key not in cls._zeta_cache:
            cls._zeta_cache[key] = sum(1.0 / math.pow(i, theta) for i in range(1, n + 1))
        return cls._zeta_cache[key]

    @classmethod
    def _make_alias_sampler(cls, n: int, theta: float, rng: DeterministicRandom) -> AliasSampler:
        key = (n, theta)
        tables = cls._alias_cache.get(key)
        if tables is None:
            sampler = AliasSampler([1.0 / math.pow(i, theta) for i in range(1, n + 1)], rng)
            cls._alias_cache[key] = (sampler._prob, sampler._alias)
            return sampler
        sampler = AliasSampler.__new__(AliasSampler)
        sampler.n = n
        sampler._prob, sampler._alias = tables
        sampler._random = rng.random
        return sampler

    def _next_uniform(self) -> int:
        return self._rng.uniform_int(0, self.n_items - 1)

    def next(self) -> int:
        """Draw the next key in ``[0, n_items)``.

        (Rebound per instance in ``__init__`` to the uniform / alias fast
        paths; this body is the default Gray et al. analytic method.)
        """
        u = self._random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < self._cut2:
            return 1
        return int(self.n_items * (self._eta * u - self._eta + 1.0) ** self._alpha)
