"""Deterministic random number generation for workloads.

Provides a seeded wrapper around :mod:`random` plus a Zipfian generator using
the classic Gray et al. (SIGMOD '94) rejection-free method, which is what YCSB
and DBx1000 use.  Every worker gets its own :class:`DeterministicRandom`
derived from the run seed so that simulations are exactly reproducible.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

__all__ = ["DeterministicRandom", "ZipfGenerator", "derive_seed"]


def derive_seed(base_seed: int, *components: int) -> int:
    """Derive a child seed from a base seed and a tuple of integer components."""
    seed = base_seed & 0xFFFFFFFFFFFFFFFF
    for component in components:
        seed = (seed * 1_000_003 + (component + 0x9E3779B9)) & 0xFFFFFFFFFFFFFFFF
    return seed


class DeterministicRandom:
    """Seeded random source with the helpers workloads need."""

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)

    def uniform_int(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return self._rng.uniform(low, high)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, options: Sequence):
        return self._rng.choice(options)

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def sample_without_replacement(self, low: int, high: int, count: int) -> list[int]:
        """Distinct uniform integers in [low, high]; count must fit the range."""
        return self._rng.sample(range(low, high + 1), count)

    def boolean(self, probability_true: float) -> bool:
        return self._rng.random() < probability_true

    def exponential(self, mean: float) -> float:
        return self._rng.expovariate(1.0 / mean) if mean > 0 else 0.0

    def nurand(self, a: int, x: int, y: int, c: int = 123) -> int:
        """TPC-C NURand non-uniform distribution."""
        return (((self.uniform_int(0, a) | self.uniform_int(x, y)) + c) % (y - x + 1)) + x

    def last_name(self, number: int) -> str:
        """TPC-C customer last-name syllable encoding."""
        syllables = [
            "BAR", "OUGHT", "ABLE", "PRI", "PRES",
            "ESE", "ANTI", "CALLY", "ATION", "EING",
        ]
        return (
            syllables[(number // 100) % 10]
            + syllables[(number // 10) % 10]
            + syllables[number % 10]
        )

    def alphanumeric(self, length: int) -> str:
        chars = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
        return "".join(self._rng.choice(chars) for _ in range(length))


class ZipfGenerator:
    """Zipfian key generator over ``[0, n_items)`` with skew ``theta``.

    ``theta = 0`` degenerates to uniform; ``theta -> 1`` concentrates accesses
    on a few hot keys.  Uses the Gray et al. analytic method so generation is
    O(1) per sample after O(1) setup (the zeta constants are memoised per
    ``(n, theta)`` to keep repeated workload construction cheap).
    """

    _zeta_cache: dict[tuple[int, float], float] = {}

    def __init__(self, n_items: int, theta: float, rng: DeterministicRandom):
        if n_items <= 0:
            raise ValueError("ZipfGenerator requires at least one item")
        if not 0.0 <= theta < 1.0:
            raise ValueError("theta must be in [0, 1)")
        self.n_items = n_items
        self.theta = theta
        self._rng = rng
        if theta == 0.0:
            return
        self._zetan = self._zeta(n_items, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - math.pow(2.0 / n_items, 1.0 - theta)) / (
            1.0 - self._zeta2 / self._zetan
        )

    @classmethod
    def _zeta(cls, n: int, theta: float) -> float:
        key = (n, theta)
        if key not in cls._zeta_cache:
            cls._zeta_cache[key] = sum(1.0 / math.pow(i, theta) for i in range(1, n + 1))
        return cls._zeta_cache[key]

    def next(self) -> int:
        """Draw the next key in ``[0, n_items)``."""
        if self.theta == 0.0:
            return self._rng.uniform_int(0, self.n_items - 1)
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + math.pow(0.5, self.theta):
            return 1
        return int(self.n_items * math.pow(self._eta * u - self._eta + 1.0, self._alpha))
