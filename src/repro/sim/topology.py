"""Geo-aware latency topologies: regions and a region×region latency matrix.

A :class:`RegionTopology` places every node of the simulated cluster — the
partition leaders and their replication followers — into a named *region*
and replaces the scalar one-way network latency with a region×region matrix
lookup (e.g. 5 ms intra-region / 80 ms cross-region).  It is a first-class
:class:`~repro.scenario.ScenarioSpec` field (``topology=``), so geo-placement
questions — leader-local vs cross-region quorums, WAN fail-over cost — are
ordinary declarative scenario axes::

    spec = repro.ScenarioSpec(
        protocol="primo", scale="tiny",
        topology={
            "regions": ["us-east", "us-west"],
            "latency_us": [[25.0, 400.0], [400.0, 25.0]],
            "partition_regions": ["us-east", "us-west"],
            # optional: place each partition's followers across regions
            # (default: every follower sits in its leader's region)
            "follower_regions": [["us-east", "us-west"]],
        },
    )

Placement rules
---------------

* ``partition_regions[p % len(partition_regions)]`` is partition ``p``'s
  leader region — the list wraps, so one entry means "everything here" and a
  two-entry list alternates regions across any partition count (sweeps over
  ``n_partitions`` stay valid without rewriting the topology).
* ``follower_regions`` (optional) is a list of per-partition region *rings*,
  wrapping the same way; follower ``i`` of partition ``p`` lands in
  ``follower_regions[p % len][i % len(ring)]``.  When omitted, followers
  live in their leader's region (leader-local quorums).

The same-node latency is always the network's local latency; two *distinct*
nodes in the same region pay the matrix diagonal.  Nodes the topology does
not map (an extension's private id space) fall back to the scalar one-way
latency, so a partial map degrades gracefully instead of crashing.

Determinism: a topology only changes the latency values the network hands
out — no randomness, no new events — and runs without one keep the scalar
fast path bit-identically (pinned by tests/integration/test_determinism.py).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping, Optional

__all__ = ["RegionTopology"]


def _freeze_matrix(matrix) -> tuple:
    rows = []
    for row in matrix:
        if isinstance(row, (str, bytes)) or not hasattr(row, "__iter__"):
            raise TypeError(
                f"latency_us must be a matrix (list of rows), got row {row!r}"
            )
        rows.append(tuple(float(value) for value in row))
    return tuple(rows)


@dataclass(frozen=True)
class RegionTopology:
    """Named regions, a region×region one-way latency matrix, and placement.

    Frozen and JSON-round-trippable, like every other scenario axis; equal
    topologies serialize identically so orchestrator cache keys are stable.
    """

    regions: tuple
    latency_us: tuple
    partition_regions: tuple
    follower_regions: tuple = ()

    def __post_init__(self) -> None:
        def set_field(name: str, value) -> None:
            object.__setattr__(self, name, value)

        regions = tuple(str(name) for name in self.regions or ())
        if not regions:
            raise ValueError("topology needs at least one region")
        if len(set(regions)) != len(regions):
            raise ValueError(f"duplicate region names: {list(regions)!r}")
        set_field("regions", regions)

        matrix = _freeze_matrix(self.latency_us or ())
        if len(matrix) != len(regions) or any(len(row) != len(regions) for row in matrix):
            raise ValueError(
                f"latency_us must be a {len(regions)}x{len(regions)} matrix "
                f"(one row and column per region), got "
                f"{[len(row) for row in matrix]!r} over {len(matrix)} row(s)"
            )
        if any(value < 0 for row in matrix for value in row):
            raise ValueError("latency_us entries must be >= 0")
        set_field("latency_us", matrix)

        placements = tuple(str(name) for name in self.partition_regions or ())
        if not placements:
            raise ValueError("partition_regions must name at least one region")
        unknown = sorted(set(placements) - set(regions))
        if unknown:
            raise ValueError(
                f"partition_regions names unknown region(s) "
                f"{', '.join(map(repr, unknown))}; regions: {', '.join(regions)}"
            )
        set_field("partition_regions", placements)

        rings = []
        for ring in self.follower_regions or ():
            if isinstance(ring, (str, bytes)) or not hasattr(ring, "__iter__"):
                raise TypeError(
                    f"follower_regions must be a list of region rings, got {ring!r}"
                )
            frozen = tuple(str(name) for name in ring)
            if not frozen:
                raise ValueError("follower_regions rings must not be empty")
            unknown = sorted(set(frozen) - set(regions))
            if unknown:
                raise ValueError(
                    f"follower_regions names unknown region(s) "
                    f"{', '.join(map(repr, unknown))}; regions: {', '.join(regions)}"
                )
            rings.append(frozen)
        set_field("follower_regions", tuple(rings))

    # -- placement lookups -------------------------------------------------
    def region_index(self, name: str) -> int:
        return self.regions.index(name)

    def partition_region_index(self, partition_id: int) -> int:
        """Region index of partition ``partition_id``'s leader (wrapping)."""
        placements = self.partition_regions
        return self.region_index(placements[partition_id % len(placements)])

    def follower_region_index(self, partition_id: int, follower_index: int) -> int:
        """Region index of follower ``follower_index`` of the partition.

        Defaults to the leader's region when no ``follower_regions`` rings
        are configured (leader-local quorums).
        """
        rings = self.follower_regions
        if not rings:
            return self.partition_region_index(partition_id)
        ring = rings[partition_id % len(rings)]
        return self.region_index(ring[follower_index % len(ring)])

    # -- JSON round trip ---------------------------------------------------
    def to_json_dict(self) -> dict:
        data = {
            "regions": list(self.regions),
            "latency_us": [list(row) for row in self.latency_us],
            "partition_regions": list(self.partition_regions),
        }
        if self.follower_regions:
            data["follower_regions"] = [list(ring) for ring in self.follower_regions]
        return data

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "RegionTopology":
        if not isinstance(data, Mapping):
            raise TypeError(
                f"topology must be a JSON object, got {type(data).__name__}"
            )
        known = ("regions", "latency_us", "partition_regions", "follower_regions")
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ValueError(
                f"unknown topology field(s) {', '.join(map(repr, unknown))}; "
                f"fields: {', '.join(known)}"
            )
        return cls(
            regions=tuple(data.get("regions", ())),
            latency_us=tuple(data.get("latency_us", ())),
            partition_regions=tuple(data.get("partition_regions", ())),
            follower_regions=tuple(data.get("follower_regions", ())),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RegionTopology":
        return cls.from_json_dict(json.loads(text))

    @classmethod
    def coerce(cls, value) -> Optional["RegionTopology"]:
        """``None`` | topology | JSON dict -> topology (or ``None``)."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls.from_json_dict(value)
        raise TypeError(
            f"topology must be a RegionTopology or its JSON dict form, got "
            f"{type(value).__name__}"
        )
