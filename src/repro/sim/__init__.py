"""Discrete-event simulation substrate (engine, network, RNG, measurement)."""

from .engine import Environment, Event, Interrupt, Process, SimulationError, Timeout, all_of, any_of
from .network import Network, NetworkStats, NodeUnreachable
from .randgen import DeterministicRandom, ZipfGenerator, derive_seed
from .sketch import LatencySketch
from .stats import (
    BREAKDOWN_COMPONENTS,
    SKETCH_THRESHOLD,
    BreakdownTimer,
    Counter,
    LatencyRecorder,
    RunMetrics,
)

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "all_of",
    "any_of",
    "Network",
    "NetworkStats",
    "NodeUnreachable",
    "DeterministicRandom",
    "ZipfGenerator",
    "derive_seed",
    "BREAKDOWN_COMPONENTS",
    "SKETCH_THRESHOLD",
    "BreakdownTimer",
    "Counter",
    "LatencyRecorder",
    "LatencySketch",
    "RunMetrics",
]
