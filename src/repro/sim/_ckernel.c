/* Compiled scheduler kernel for the repro simulation engine.
 *
 * A C implementation of the event-scheduler core behind
 * ``repro.sim.engine``: the binary heap + zero-delay fast-lane merge with
 * the shared monotone sequence counter, event dispatch, timeout
 * scheduling, process driving (generator send/throw) and the batched
 * wakeup fire loop.  The pure-Python kernel in ``_pykernel.py`` is the
 * semantics reference; this module mirrors it operation for operation so
 * that fixed-seed runs are bit-identical across backends (same wake
 * orderings, same sequence numbers, same final clock).  The differential
 * test in ``tests/sim/test_backend_parity.py`` and the bench gate's
 * fixed-seed rows enforce that contract.
 *
 * Interop rules that keep the two kernels interchangeable:
 *
 * - The sentinels (``_PENDING``, ``_PROCESSED``) and exception types
 *   (``SimulationError``, ``Interrupt``) are *shared* with the pure
 *   kernel: ``engine.py`` injects them via ``_configure()`` right after
 *   import, so events produced by one kernel remain legible to the other
 *   (``processed`` checks, ``all_of`` on processed events, ...).
 * - The heap is a real Python list of ``(time, seq, event)`` tuples and
 *   the sequence counter / fast lane are reachable through the same
 *   ``_queue`` / ``_next_seq`` / ``_fast_append`` / ``_now`` surface the
 *   pure kernel exposes, so Python code that schedules directly (the
 *   zero-allocation one-way send path in ``network.py``) runs unchanged
 *   on either backend.
 * - Events the dispatcher does not recognise as C events fall back to the
 *   generic attribute protocol (``callbacks`` / ``_seq``), so foreign
 *   (pure-Python) events can ride this kernel's lanes.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* Shared singletons, injected by engine.py via _configure(). */
static PyObject *S_pending = NULL;    /* _pykernel._PENDING */
static PyObject *S_processed = NULL;  /* _pykernel._PROCESSED */
static PyObject *E_interrupt = NULL;  /* engine.Interrupt */
static PyObject *E_simerror = NULL;   /* engine.SimulationError */

static PyObject *str_callbacks = NULL;
static PyObject *str_seq = NULL;      /* "_seq" */
static PyObject *str_value_u = NULL;  /* "_value" */
static PyObject *str_ok_u = NULL;     /* "_ok" */
static PyObject *str_throw = NULL;
static PyObject *str_close = NULL;
static PyObject *str_send = NULL;
static PyObject *str_name_dunder = NULL; /* "__name__" */
static PyObject *str_next_seq = NULL;    /* "_next_seq" */
static PyObject *str_fast_append = NULL; /* "_fast_append" */
static PyObject *str_queue_u = NULL;     /* "_queue" */
static PyObject *str_now_u = NULL;       /* "_now" */

static PyTypeObject EventType;
static PyTypeObject TimeoutType;
static PyTypeObject BatchWakeupType;
static PyTypeObject ProcessType;
static PyTypeObject EnvType;

#define CONFIGURED() (S_pending != NULL)

typedef struct {
    PyObject_HEAD
    PyObject *env;        /* Environment (C or duck-compatible), or NULL   */
    PyObject *callbacks;  /* None | callable | list | S_processed          */
    PyObject *value;      /* S_pending until triggered                     */
    long long seq;        /* fast-lane sequence number (0 until drawn)     */
    char ok;
} CEvent;

typedef struct {
    CEvent base;
    double delay;
} CTimeout;

typedef struct {
    CEvent base;
    PyObject *batch;      /* list of already-triggered events              */
} CBatchWakeup;

typedef struct {
    CEvent base;
    PyObject *name;
    PyObject *generator;      /* NULL once finished                        */
    PyObject *interrupted_by; /* pending Interrupt instance, or NULL       */
    PyObject *target;         /* event the generator currently waits on    */
} CProcess;

typedef struct {
    PyObject_HEAD
    double now;
    PyObject *heap;       /* list of (float time, int seq, event) tuples   */
    PyObject **lane;      /* zero-delay ring buffer (strong refs)          */
    Py_ssize_t lane_head;
    Py_ssize_t lane_len;
    Py_ssize_t lane_cap;
    long long counter;    /* shared heap/lane sequence counter             */
} CEnv;

/* ------------------------------------------------------------------ */
/* heap primitives (heapq re-implemented over (double, longlong) keys) */
/* ------------------------------------------------------------------ */

/* Extract the (time, seq) ordering key of a heap entry.  Entries are
 * exclusively built as (float, int, event) by both kernels, so the event
 * slot never participates in comparisons (seq is globally unique). */
static int
heap_key(PyObject *item, double *t, long long *s)
{
    if (!PyTuple_Check(item) || PyTuple_GET_SIZE(item) < 2) {
        PyErr_SetString(PyExc_TypeError, "malformed heap entry");
        return -1;
    }
    *t = PyFloat_AsDouble(PyTuple_GET_ITEM(item, 0));
    if (*t == -1.0 && PyErr_Occurred())
        return -1;
    *s = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 1));
    if (*s == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

/* a < b; returns 1/0, or -1 on error. */
static int
heap_lt(PyObject *a, PyObject *b)
{
    double ta, tb;
    long long sa, sb;
    if (heap_key(a, &ta, &sa) < 0 || heap_key(b, &tb, &sb) < 0)
        return -1;
    if (ta != tb)
        return ta < tb;
    return sa < sb;
}

static int
heap_siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        int lt = heap_lt(newitem, parent);
        if (lt < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        if (!lt)
            break;
        Py_INCREF(parent);
        if (PyList_SetItem(heap, pos, parent) < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        pos = parentpos;
    }
    return PyList_SetItem(heap, pos, newitem);
}

static int
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t startpos = pos;
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos) {
            int lt = heap_lt(PyList_GET_ITEM(heap, childpos),
                             PyList_GET_ITEM(heap, rightpos));
            if (lt < 0) {
                Py_DECREF(newitem);
                return -1;
            }
            if (!lt)
                childpos = rightpos;
        }
        PyObject *child = PyList_GET_ITEM(heap, childpos);
        Py_INCREF(child);
        if (PyList_SetItem(heap, pos, child) < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    if (PyList_SetItem(heap, pos, newitem) < 0)
        return -1;
    return heap_siftdown(heap, startpos, pos);
}

/* Push an entry (new reference NOT stolen). */
static int
heappush_c(PyObject *heap, PyObject *item)
{
    if (PyList_Append(heap, item) < 0)
        return -1;
    return heap_siftdown(heap, 0, PyList_GET_SIZE(heap) - 1);
}

/* Pop the smallest entry; returns a new reference or NULL. */
static PyObject *
heappop_c(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    if (n == 0) {
        PyErr_SetString(PyExc_IndexError, "heappop from empty heap");
        return NULL;
    }
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (n == 1)
        return last;
    PyObject *smallest = PyList_GET_ITEM(heap, 0);
    Py_INCREF(smallest);
    if (PyList_SetItem(heap, 0, last) < 0) {   /* steals last */
        Py_DECREF(smallest);
        return NULL;
    }
    if (heap_siftup(heap, 0) < 0) {
        Py_DECREF(smallest);
        return NULL;
    }
    return smallest;
}

/* ------------------------------------------------------------------ */
/* fast lane (ring buffer)                                             */
/* ------------------------------------------------------------------ */

static int
lane_append(CEnv *env, PyObject *ev)
{
    if (env->lane_len == env->lane_cap) {
        Py_ssize_t newcap = env->lane_cap ? env->lane_cap * 2 : 64;
        PyObject **buf = PyMem_New(PyObject *, newcap);
        if (buf == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        for (Py_ssize_t i = 0; i < env->lane_len; i++)
            buf[i] = env->lane[(env->lane_head + i) % (env->lane_cap ? env->lane_cap : 1)];
        PyMem_Free(env->lane);
        env->lane = buf;
        env->lane_head = 0;
        env->lane_cap = newcap;
    }
    env->lane[(env->lane_head + env->lane_len) % env->lane_cap] = ev;
    Py_INCREF(ev);
    env->lane_len++;
    return 0;
}

/* Pop the lane head; returns a transferred (owned) reference. */
static PyObject *
lane_popleft(CEnv *env)
{
    PyObject *ev = env->lane[env->lane_head];
    env->lane[env->lane_head] = NULL;
    env->lane_head = (env->lane_head + 1) % env->lane_cap;
    env->lane_len--;
    if (env->lane_len == 0)
        env->lane_head = 0;
    return ev;
}

static PyObject *
lane_peek(CEnv *env)
{
    return env->lane[env->lane_head];   /* borrowed */
}

/* ------------------------------------------------------------------ */
/* scheduling helpers                                                  */
/* ------------------------------------------------------------------ */

static int is_cenv(PyObject *o) { return PyObject_TypeCheck(o, &EnvType); }
static int is_cevent(PyObject *o) { return PyObject_TypeCheck(o, &EventType); }

/* The event's fast-lane sequence number (events on the lane always carry
 * one; foreign events expose it as the ``_seq`` attribute). */
static long long
event_seq(PyObject *ev, int *err)
{
    if (is_cevent(ev)) {
        *err = 0;
        return ((CEvent *)ev)->seq;
    }
    PyObject *o = PyObject_GetAttr(ev, str_seq);
    if (o == NULL) {
        *err = 1;
        return 0;
    }
    long long s = PyLong_AsLongLong(o);
    Py_DECREF(o);
    if (s == -1 && PyErr_Occurred()) {
        *err = 1;
        return 0;
    }
    *err = 0;
    return s;
}

/* Draw a sequence number and append ``ev`` to the zero-delay lane. */
static int
schedule_fast(CEnv *env, CEvent *ev)
{
    ev->seq = env->counter++;
    return lane_append(env, (PyObject *)ev);
}

/* Schedule on the heap at now + delay. */
static int
schedule_heap(CEnv *env, PyObject *ev, double delay)
{
    PyObject *t = PyFloat_FromDouble(env->now + delay);
    if (t == NULL)
        return -1;
    PyObject *s = PyLong_FromLongLong(env->counter++);
    if (s == NULL) {
        Py_DECREF(t);
        return -1;
    }
    PyObject *entry = PyTuple_Pack(3, t, s, ev);
    Py_DECREF(t);
    Py_DECREF(s);
    if (entry == NULL)
        return -1;
    int r = heappush_c(env->heap, entry);
    Py_DECREF(entry);
    return r;
}

/* Mirror of the pure kernel's scheduling fast path, with a generic
 * attribute-protocol fallback for duck-typed (non-C) environments. */
static int
schedule_event(PyObject *envobj, CEvent *ev, double delay)
{
    if (envobj == NULL) {
        PyErr_SetString(PyExc_AttributeError, "env");
        return -1;
    }
    if (is_cenv(envobj)) {
        CEnv *env = (CEnv *)envobj;
        if (delay == 0.0)
            return schedule_fast(env, ev);
        return schedule_heap(env, (PyObject *)ev, delay);
    }
    /* Foreign environment: speak the shared protocol. */
    PyObject *seqobj = PyObject_CallMethodNoArgs(envobj, str_next_seq);
    if (seqobj == NULL)
        return -1;
    if (delay == 0.0) {
        long long s = PyLong_AsLongLong(seqobj);
        if (s == -1 && PyErr_Occurred()) {
            Py_DECREF(seqobj);
            return -1;
        }
        ev->seq = s;
        Py_DECREF(seqobj);
        PyObject *r = PyObject_CallMethodOneArg(envobj, str_fast_append,
                                                (PyObject *)ev);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
    PyObject *nowobj = PyObject_GetAttr(envobj, str_now_u);
    if (nowobj == NULL) {
        Py_DECREF(seqobj);
        return -1;
    }
    double now = PyFloat_AsDouble(nowobj);
    Py_DECREF(nowobj);
    if (now == -1.0 && PyErr_Occurred()) {
        Py_DECREF(seqobj);
        return -1;
    }
    PyObject *t = PyFloat_FromDouble(now + delay);
    if (t == NULL) {
        Py_DECREF(seqobj);
        return -1;
    }
    PyObject *entry = PyTuple_Pack(3, t, seqobj, (PyObject *)ev);
    Py_DECREF(t);
    Py_DECREF(seqobj);
    if (entry == NULL)
        return -1;
    PyObject *queue = PyObject_GetAttr(envobj, str_queue_u);
    if (queue == NULL || !PyList_Check(queue)) {
        Py_XDECREF(queue);
        Py_DECREF(entry);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_queue is not a list");
        return -1;
    }
    int r = heappush_c(queue, entry);
    Py_DECREF(queue);
    Py_DECREF(entry);
    return r;
}

/* ------------------------------------------------------------------ */
/* dispatch                                                            */
/* ------------------------------------------------------------------ */

static int process_resume(CProcess *p, PyObject *event);
static int batch_fire(CBatchWakeup *b);
static int fire_event(PyObject *ev);

static int
invoke_callback(PyObject *cb, PyObject *ev)
{
    if (Py_TYPE(cb) == &ProcessType)
        return process_resume((CProcess *)cb, ev);
    PyObject *r = PyObject_CallOneArg(cb, ev);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Pop an event's callbacks, mark it processed, run every callback.
 * Exactly the dispatch epilogue both pure-kernel loops inline. */
static int
fire_event(PyObject *ev)
{
    PyObject *cbs;
    if (is_cevent(ev)) {
        CEvent *ce = (CEvent *)ev;
        cbs = ce->callbacks;                   /* take ownership */
        Py_INCREF(S_processed);
        ce->callbacks = S_processed;
        if (cbs == NULL)
            cbs = Py_NewRef(Py_None);
        /* BatchWakeup stores itself as its own callback marker. */
        if (cbs == ev && Py_TYPE(ev) == &BatchWakeupType) {
            int r = batch_fire((CBatchWakeup *)ev);
            Py_DECREF(cbs);
            return r;
        }
    }
    else {
        cbs = PyObject_GetAttr(ev, str_callbacks);
        if (cbs == NULL)
            return -1;
        if (PyObject_SetAttr(ev, str_callbacks, S_processed) < 0) {
            Py_DECREF(cbs);
            return -1;
        }
    }
    if (cbs == Py_None) {
        Py_DECREF(cbs);
        return 0;
    }
    if (PyList_CheckExact(cbs)) {
        /* Live iteration: callbacks appended mid-fire still run, exactly
         * like the pure kernel's list iterator. */
        for (Py_ssize_t i = 0; i < PyList_GET_SIZE(cbs); i++) {
            PyObject *cb = PyList_GET_ITEM(cbs, i);
            Py_INCREF(cb);
            int r = invoke_callback(cb, ev);
            Py_DECREF(cb);
            if (r < 0) {
                Py_DECREF(cbs);
                return -1;
            }
        }
        Py_DECREF(cbs);
        return 0;
    }
    int r = invoke_callback(cbs, ev);
    Py_DECREF(cbs);
    return r;
}

/* ------------------------------------------------------------------ */
/* Event                                                               */
/* ------------------------------------------------------------------ */

static PyObject *
event_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    if (!CONFIGURED()) {
        PyErr_SetString(PyExc_RuntimeError,
                        "_ckernel is not configured; import repro.sim.engine first");
        return NULL;
    }
    CEvent *self = (CEvent *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->env = NULL;
    self->callbacks = Py_NewRef(Py_None);
    self->value = Py_NewRef(S_pending);
    self->seq = 0;
    self->ok = 1;
    return (PyObject *)self;
}

static int
event_init(PyObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"env", NULL};
    PyObject *env;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O:Event", kwlist, &env))
        return -1;
    CEvent *ev = (CEvent *)self;
    Py_INCREF(env);
    Py_XSETREF(ev->env, env);
    return 0;
}

static int
event_traverse(PyObject *self, visitproc visit, void *arg)
{
    CEvent *ev = (CEvent *)self;
    Py_VISIT(ev->env);
    Py_VISIT(ev->callbacks);
    Py_VISIT(ev->value);
    return 0;
}

static int
event_clear(PyObject *self)
{
    CEvent *ev = (CEvent *)self;
    Py_CLEAR(ev->env);
    Py_CLEAR(ev->callbacks);
    Py_CLEAR(ev->value);
    return 0;
}

static void
event_dealloc(PyObject *self)
{
    PyObject_GC_UnTrack(self);
    event_clear(self);
    Py_TYPE(self)->tp_free(self);
}

static PyObject *
event_succeed(PyObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"value", "delay", NULL};
    PyObject *value = Py_None;
    double delay = 0.0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|Od:succeed", kwlist,
                                     &value, &delay))
        return NULL;
    CEvent *ev = (CEvent *)self;
    if (ev->value != S_pending) {
        PyErr_SetString(E_simerror, "event already triggered");
        return NULL;
    }
    Py_INCREF(value);
    Py_XSETREF(ev->value, value);
    if (schedule_event(ev->env, ev, delay) < 0)
        return NULL;
    return Py_NewRef(self);
}

static PyObject *
event_fail(PyObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"exception", "delay", NULL};
    PyObject *exc;
    double delay = 0.0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|d:fail", kwlist,
                                     &exc, &delay))
        return NULL;
    CEvent *ev = (CEvent *)self;
    if (ev->value != S_pending) {
        PyErr_SetString(E_simerror, "event already triggered");
        return NULL;
    }
    if (!PyExceptionInstance_Check(exc)) {
        PyErr_SetString(E_simerror, "fail() requires an exception instance");
        return NULL;
    }
    ev->ok = 0;
    Py_INCREF(exc);
    Py_XSETREF(ev->value, exc);
    if (schedule_event(ev->env, ev, delay) < 0)
        return NULL;
    return Py_NewRef(self);
}

static PyObject *
event_add_callback(PyObject *self, PyObject *callback)
{
    CEvent *ev = (CEvent *)self;
    PyObject *cbs = ev->callbacks;
    if (cbs == Py_None || cbs == NULL) {
        Py_INCREF(callback);
        Py_XSETREF(ev->callbacks, callback);
    }
    else if (cbs == S_processed) {
        PyObject *r = PyObject_CallOneArg(callback, self);
        if (r == NULL)
            return NULL;
        Py_DECREF(r);
    }
    else if (PyList_CheckExact(cbs)) {
        if (PyList_Append(cbs, callback) < 0)
            return NULL;
    }
    else {
        PyObject *list = PyList_New(2);
        if (list == NULL)
            return NULL;
        PyList_SET_ITEM(list, 0, cbs);          /* steal existing ref */
        PyList_SET_ITEM(list, 1, Py_NewRef(callback));
        ev->callbacks = list;
    }
    Py_RETURN_NONE;
}

static PyObject *
event_get_triggered(PyObject *self, void *closure)
{
    return PyBool_FromLong(((CEvent *)self)->value != S_pending);
}

static PyObject *
event_get_processed(PyObject *self, void *closure)
{
    return PyBool_FromLong(((CEvent *)self)->callbacks == S_processed);
}

static PyObject *
event_get_ok(PyObject *self, void *closure)
{
    return PyBool_FromLong(((CEvent *)self)->ok);
}

static PyObject *
event_get_value(PyObject *self, void *closure)
{
    CEvent *ev = (CEvent *)self;
    if (ev->value == S_pending) {
        PyErr_SetString(E_simerror, "event value accessed before it was triggered");
        return NULL;
    }
    return Py_NewRef(ev->value);
}

static PyObject *
event_get_raw_value(PyObject *self, void *closure)
{
    CEvent *ev = (CEvent *)self;
    return Py_NewRef(ev->value ? ev->value : S_pending);
}

static int
event_set_raw_value(PyObject *self, PyObject *v, void *closure)
{
    if (v == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete _value");
        return -1;
    }
    CEvent *ev = (CEvent *)self;
    Py_INCREF(v);
    Py_XSETREF(ev->value, v);
    return 0;
}

static PyObject *
event_get_raw_ok(PyObject *self, void *closure)
{
    return PyBool_FromLong(((CEvent *)self)->ok);
}

static int
event_set_raw_ok(PyObject *self, PyObject *v, void *closure)
{
    if (v == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete _ok");
        return -1;
    }
    int truth = PyObject_IsTrue(v);
    if (truth < 0)
        return -1;
    ((CEvent *)self)->ok = (char)truth;
    return 0;
}

static PyObject *
event_repr(PyObject *self)
{
    CEvent *ev = (CEvent *)self;
    return PyUnicode_FromFormat("<%s %s (c)>", Py_TYPE(self)->tp_name,
                                ev->value != S_pending ? "triggered" : "pending");
}

static PyMethodDef event_methods[] = {
    {"succeed", (PyCFunction)event_succeed, METH_VARARGS | METH_KEYWORDS,
     "Trigger the event successfully with ``value`` after ``delay``."},
    {"fail", (PyCFunction)event_fail, METH_VARARGS | METH_KEYWORDS,
     "Trigger the event with an exception; waiters will see it raised."},
    {"add_callback", (PyCFunction)event_add_callback, METH_O,
     "Run ``callback(event)`` when the event fires."},
    {NULL}
};

static PyGetSetDef event_getset[] = {
    {"triggered", event_get_triggered, NULL,
     "True once the event has been given a value.", NULL},
    {"processed", event_get_processed, NULL,
     "True once callbacks have run.", NULL},
    {"ok", event_get_ok, NULL, "Whether the event succeeded.", NULL},
    {"value", event_get_value, NULL, "The triggered value.", NULL},
    {"_value", event_get_raw_value, event_set_raw_value, NULL, NULL},
    {"_ok", event_get_raw_ok, event_set_raw_ok, NULL, NULL},
    {NULL}
};

static PyMemberDef event_members[] = {
    {"env", T_OBJECT, offsetof(CEvent, env), 0, "owning environment"},
    {"callbacks", T_OBJECT, offsetof(CEvent, callbacks), 0, "waiter callbacks"},
    {"_seq", T_LONGLONG, offsetof(CEvent, seq), 0, "fast-lane sequence number"},
    {NULL}
};

static PyTypeObject EventType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.Event",
    .tp_basicsize = sizeof(CEvent),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A single occurrence a process can wait for (compiled kernel).",
    .tp_new = event_new,
    .tp_init = event_init,
    .tp_dealloc = event_dealloc,
    .tp_traverse = event_traverse,
    .tp_clear = event_clear,
    .tp_repr = event_repr,
    .tp_methods = event_methods,
    .tp_getset = event_getset,
    .tp_members = event_members,
};

/* ------------------------------------------------------------------ */
/* Timeout                                                             */
/* ------------------------------------------------------------------ */

/* Shared by Timeout.__init__ and Environment.timeout(). */
static int
timeout_setup(CTimeout *self, PyObject *env, double delay, PyObject *value)
{
    if (delay < 0) {
        PyErr_Format(E_simerror, "negative timeout delay: %g", delay);
        return -1;
    }
    CEvent *ev = (CEvent *)self;
    Py_INCREF(env);
    Py_XSETREF(ev->env, env);
    Py_INCREF(value);
    Py_XSETREF(ev->value, value);
    self->delay = delay;
    return schedule_event(env, ev, delay);
}

static int
timeout_init(PyObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"env", "delay", "value", NULL};
    PyObject *env;
    double delay;
    PyObject *value = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "Od|O:Timeout", kwlist,
                                     &env, &delay, &value))
        return -1;
    return timeout_setup((CTimeout *)self, env, delay, value);
}

static PyMemberDef timeout_members[] = {
    {"delay", T_DOUBLE, offsetof(CTimeout, delay), 0, "scheduled delay"},
    {NULL}
};

static PyTypeObject TimeoutType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.Timeout",
    .tp_basicsize = sizeof(CTimeout),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "An event that fires after a fixed delay (compiled kernel).",
    .tp_base = &EventType,
    .tp_init = timeout_init,
    .tp_members = timeout_members,
    /* Static subtypes must restate GC slots: PyType_Ready checks HAVE_GC
     * before slot inheritance runs.  Timeout adds no object fields. */
    .tp_dealloc = event_dealloc,
    .tp_traverse = event_traverse,
    .tp_clear = event_clear,
};

/* ------------------------------------------------------------------ */
/* BatchWakeup                                                         */
/* ------------------------------------------------------------------ */

static int
batch_fire(CBatchWakeup *b)
{
    PyObject *batch = b->batch;
    if (batch == NULL)
        return 0;
    Py_INCREF(batch);
    if (PyList_CheckExact(batch)) {
        for (Py_ssize_t i = 0; i < PyList_GET_SIZE(batch); i++) {
            PyObject *sub = PyList_GET_ITEM(batch, i);
            Py_INCREF(sub);
            int r = fire_event(sub);
            Py_DECREF(sub);
            if (r < 0) {
                Py_DECREF(batch);
                return -1;
            }
        }
        Py_DECREF(batch);
        return 0;
    }
    PyObject *it = PyObject_GetIter(batch);
    Py_DECREF(batch);
    if (it == NULL)
        return -1;
    PyObject *sub;
    while ((sub = PyIter_Next(it)) != NULL) {
        int r = fire_event(sub);
        Py_DECREF(sub);
        if (r < 0) {
            Py_DECREF(it);
            return -1;
        }
    }
    Py_DECREF(it);
    return PyErr_Occurred() ? -1 : 0;
}

/* Shared by BatchWakeup.__init__ and Environment.succeed_all(). */
static int
batchwakeup_setup(CBatchWakeup *self, PyObject *env, PyObject *batch)
{
    CEvent *ev = (CEvent *)self;
    Py_INCREF(env);
    Py_XSETREF(ev->env, env);
    Py_INCREF(Py_None);
    Py_XSETREF(ev->value, Py_None);          /* born triggered */
    ev->ok = 1;
    Py_INCREF(batch);
    Py_XSETREF(self->batch, batch);
    /* The event is its own callback marker: the dispatcher (or tp_call,
     * for a foreign dispatcher) runs the batch fire loop. */
    Py_INCREF(self);
    Py_XSETREF(ev->callbacks, (PyObject *)self);
    return schedule_event(env, ev, 0.0);
}

static int
batchwakeup_init(PyObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"env", "batch", NULL};
    PyObject *env, *batch;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO:BatchWakeup", kwlist,
                                     &env, &batch))
        return -1;
    return batchwakeup_setup((CBatchWakeup *)self, env, batch);
}

static PyObject *
batchwakeup_call(PyObject *self, PyObject *args, PyObject *kwds)
{
    /* Foreign-dispatcher entry point: ``callbacks(event)``. */
    if (batch_fire((CBatchWakeup *)self) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int
batchwakeup_traverse(PyObject *self, visitproc visit, void *arg)
{
    Py_VISIT(((CBatchWakeup *)self)->batch);
    return event_traverse(self, visit, arg);
}

static int
batchwakeup_clear(PyObject *self)
{
    Py_CLEAR(((CBatchWakeup *)self)->batch);
    return event_clear(self);
}

static void
batchwakeup_dealloc(PyObject *self)
{
    PyObject_GC_UnTrack(self);
    batchwakeup_clear(self);
    Py_TYPE(self)->tp_free(self);
}

static PyMemberDef batchwakeup_members[] = {
    {"_batch", T_OBJECT, offsetof(CBatchWakeup, batch), READONLY,
     "events released by this carrier"},
    {NULL}
};

static PyTypeObject BatchWakeupType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.BatchWakeup",
    .tp_basicsize = sizeof(CBatchWakeup),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "One fast-lane carrier firing a batch of triggered events.",
    .tp_base = &EventType,
    .tp_init = batchwakeup_init,
    .tp_call = batchwakeup_call,
    .tp_dealloc = batchwakeup_dealloc,
    .tp_traverse = batchwakeup_traverse,
    .tp_clear = batchwakeup_clear,
    .tp_members = batchwakeup_members,
};

/* ------------------------------------------------------------------ */
/* Process                                                             */
/* ------------------------------------------------------------------ */

/* Drop completion-time references so a finished process is acyclic
 * (mirrors _pykernel.Process._finish). */
static void
process_finish(CProcess *p)
{
    Py_CLEAR(p->generator);
    Py_CLEAR(p->target);
    Py_CLEAR(p->interrupted_by);
}

/* succeed/fail without argument parsing, for resume's internal use. */
static int
process_trigger(CProcess *p, PyObject *value, int ok)
{
    CEvent *ev = (CEvent *)p;
    if (ev->value != S_pending) {
        PyErr_SetString(E_simerror, "event already triggered");
        return -1;
    }
    ev->ok = (char)ok;
    Py_INCREF(value);
    Py_XSETREF(ev->value, value);
    return schedule_event(ev->env, ev, 0.0);
}

static int
process_resume(CProcess *p, PyObject *event)
{
    CEvent *self = (CEvent *)p;
    if (self->value != S_pending)
        return 0;

    PyObject *target = NULL;
    if (p->interrupted_by != NULL) {
        PyObject *exc = p->interrupted_by;
        p->interrupted_by = NULL;
        target = PyObject_CallMethodOneArg(p->generator, str_throw, exc);
        Py_DECREF(exc);
    }
    else if (event != p->target) {
        /* Stale wakeup: an interrupt was scheduled but the awaited event
         * fired (and consumed the interrupt) in the same tick. */
        return 0;
    }
    else {
        /* event._ok / event._value of the fired event. */
        int ev_ok;
        PyObject *ev_value;
        if (is_cevent(event)) {
            ev_ok = ((CEvent *)event)->ok;
            ev_value = Py_NewRef(((CEvent *)event)->value);
        }
        else {
            PyObject *okobj = PyObject_GetAttr(event, str_ok_u);
            if (okobj == NULL)
                return -1;
            ev_ok = PyObject_IsTrue(okobj);
            Py_DECREF(okobj);
            if (ev_ok < 0)
                return -1;
            ev_value = PyObject_GetAttr(event, str_value_u);
            if (ev_value == NULL)
                return -1;
        }
        if (ev_ok) {
            PySendResult sr = PyIter_Send(p->generator, ev_value, &target);
            Py_DECREF(ev_value);
            if (sr == PYGEN_RETURN) {
                process_finish(p);
                int r = process_trigger(p, target, 1);
                Py_DECREF(target);
                return r;
            }
            /* PYGEN_NEXT falls through with target set; PYGEN_ERROR falls
             * through with target == NULL and the error set. */
        }
        else {
            target = PyObject_CallMethodOneArg(p->generator, str_throw, ev_value);
            Py_DECREF(ev_value);
        }
    }

    if (target == NULL) {
        /* The generator raised (or finished, for the throw path). */
        if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
            PyObject *ptype, *pvalue, *ptb;
            PyErr_Fetch(&ptype, &pvalue, &ptb);
            PyErr_NormalizeException(&ptype, &pvalue, &ptb);
            PyObject *stop_value = NULL;
            if (pvalue != NULL)
                stop_value = PyObject_GetAttrString(pvalue, "value");
            Py_XDECREF(ptype);
            Py_XDECREF(pvalue);
            Py_XDECREF(ptb);
            if (stop_value == NULL) {
                PyErr_Clear();
                stop_value = Py_NewRef(Py_None);
            }
            process_finish(p);
            int r = process_trigger(p, stop_value, 1);
            Py_DECREF(stop_value);
            return r;
        }
        if (E_interrupt != NULL && PyErr_ExceptionMatches(E_interrupt)) {
            /* Process chose not to handle the interrupt: termination. */
            PyErr_Clear();
            process_finish(p);
            return process_trigger(p, Py_None, 1);
        }
        if (PyErr_ExceptionMatches(PyExc_KeyboardInterrupt) ||
            PyErr_ExceptionMatches(PyExc_SystemExit))
            return -1;
        PyObject *ptype, *pvalue, *ptb;
        PyErr_Fetch(&ptype, &pvalue, &ptb);
        PyErr_NormalizeException(&ptype, &pvalue, &ptb);
        Py_XDECREF(ptype);
        Py_XDECREF(ptb);
        if (pvalue == NULL)
            pvalue = Py_NewRef(Py_None);
        process_finish(p);
        int r = process_trigger(p, pvalue, 0);
        Py_DECREF(pvalue);
        return r;
    }

    /* Attach to the yielded target. */
    PyObject *cbs;
    int target_is_cev = is_cevent(target);
    if (target_is_cev) {
        cbs = ((CEvent *)target)->callbacks;
        if (cbs == NULL)
            cbs = Py_None;
        Py_INCREF(cbs);
    }
    else {
        cbs = PyObject_GetAttr(target, str_callbacks);
        if (cbs == NULL) {
            if (!PyErr_ExceptionMatches(PyExc_AttributeError)) {
                Py_DECREF(target);
                return -1;
            }
            PyErr_Clear();
            PyObject *msg = PyUnicode_FromFormat(
                "process %R yielded non-event %R", p->name, target);
            Py_DECREF(target);
            if (msg == NULL)
                return -1;
            PyObject *error = PyObject_CallOneArg(E_simerror, msg);
            Py_DECREF(msg);
            if (error == NULL)
                return -1;
            PyObject *closed = PyObject_CallMethodNoArgs(p->generator, str_close);
            if (closed == NULL) {
                Py_DECREF(error);
                return -1;
            }
            Py_DECREF(closed);
            process_finish(p);
            int r = process_trigger(p, error, 0);
            Py_DECREF(error);
            return r;
        }
    }

    Py_XSETREF(p->target, target);           /* steals target ref */

    int r = 0;
    if (cbs == Py_None) {
        if (target_is_cev) {
            Py_INCREF(p);
            Py_XSETREF(((CEvent *)target)->callbacks, (PyObject *)p);
        }
        else
            r = PyObject_SetAttr(target, str_callbacks, (PyObject *)p);
    }
    else if (cbs == S_processed) {
        /* Target already processed: resume immediately at the current
         * time (recursion mirrors the pure kernel; guard the C stack). */
        if (Py_EnterRecursiveCall(" in Process resume"))
            r = -1;
        else {
            r = process_resume(p, target);
            Py_LeaveRecursiveCall();
        }
    }
    else if (PyList_CheckExact(cbs))
        r = PyList_Append(cbs, (PyObject *)p);
    else {
        PyObject *list = PyList_New(2);
        if (list == NULL)
            r = -1;
        else {
            PyList_SET_ITEM(list, 0, Py_NewRef(cbs));
            PyList_SET_ITEM(list, 1, Py_NewRef((PyObject *)p));
            if (target_is_cev)
                Py_XSETREF(((CEvent *)target)->callbacks, list);
            else {
                r = PyObject_SetAttr(target, str_callbacks, list);
                Py_DECREF(list);
            }
        }
    }
    Py_DECREF(cbs);
    return r;
}

/* Create a pre-succeeded single-callback event on the fast lane
 * (mirror of Environment._immediate). */
static PyObject *
immediate_event(PyObject *envobj, PyObject *callback)
{
    CEvent *ev = (CEvent *)event_new(&EventType, NULL, NULL);
    if (ev == NULL)
        return NULL;
    Py_INCREF(envobj);
    Py_XSETREF(ev->env, envobj);
    Py_INCREF(Py_None);
    Py_XSETREF(ev->value, Py_None);
    Py_INCREF(callback);
    Py_XSETREF(ev->callbacks, callback);
    if (schedule_event(envobj, ev, 0.0) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    return (PyObject *)ev;
}

/* Shared by Process.__init__ and Environment.process(). */
static int
process_setup(CProcess *self, PyObject *env, PyObject *generator, PyObject *name)
{
    if (!PyObject_HasAttr(generator, str_send)) {
        PyErr_SetString(E_simerror, "Process requires a generator");
        return -1;
    }
    CEvent *ev = (CEvent *)self;
    Py_INCREF(env);
    Py_XSETREF(ev->env, env);
    Py_INCREF(generator);
    Py_XSETREF(self->generator, generator);
    if (name == NULL || name == Py_None ||
        (PyUnicode_Check(name) && PyUnicode_GET_LENGTH(name) == 0)) {
        PyObject *gen_name = PyObject_GetAttr(generator, str_name_dunder);
        if (gen_name == NULL) {
            PyErr_Clear();
            gen_name = PyUnicode_FromString("process");
            if (gen_name == NULL)
                return -1;
        }
        Py_XSETREF(self->name, gen_name);
    }
    else {
        Py_INCREF(name);
        Py_XSETREF(self->name, name);
    }
    /* Kick off the process at the current simulated time (fast lane). */
    PyObject *kickoff = immediate_event(env, (PyObject *)self);
    if (kickoff == NULL)
        return -1;
    Py_XSETREF(self->target, kickoff);
    return 0;
}

static int
process_init(PyObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"env", "generator", "name", NULL};
    PyObject *env, *generator, *name = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|O:Process", kwlist,
                                     &env, &generator, &name))
        return -1;
    return process_setup((CProcess *)self, env, generator, name);
}

static PyObject *
process_interrupt(PyObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"cause", NULL};
    PyObject *cause = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O:interrupt", kwlist, &cause))
        return NULL;
    CProcess *p = (CProcess *)self;
    CEvent *ev = (CEvent *)self;
    if (ev->value != S_pending)
        Py_RETURN_NONE;
    PyObject *interrupt = PyObject_CallOneArg(E_interrupt, cause);
    if (interrupt == NULL)
        return NULL;
    Py_XSETREF(p->interrupted_by, interrupt);
    PyObject *carrier = immediate_event(ev->env, (PyObject *)p);
    if (carrier == NULL)
        return NULL;
    Py_DECREF(carrier);
    Py_RETURN_NONE;
}

static PyObject *
process_call(PyObject *self, PyObject *args, PyObject *kwds)
{
    /* Foreign-dispatcher entry point: ``callback(event)``. */
    PyObject *event;
    if (!PyArg_ParseTuple(args, "O", &event))
        return NULL;
    if (process_resume((CProcess *)self, event) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
process_get_is_alive(PyObject *self, void *closure)
{
    return PyBool_FromLong(((CEvent *)self)->value == S_pending);
}

static int
process_traverse(PyObject *self, visitproc visit, void *arg)
{
    CProcess *p = (CProcess *)self;
    Py_VISIT(p->name);
    Py_VISIT(p->generator);
    Py_VISIT(p->interrupted_by);
    Py_VISIT(p->target);
    return event_traverse(self, visit, arg);
}

static int
process_clear(PyObject *self)
{
    CProcess *p = (CProcess *)self;
    Py_CLEAR(p->name);
    Py_CLEAR(p->generator);
    Py_CLEAR(p->interrupted_by);
    Py_CLEAR(p->target);
    return event_clear(self);
}

static void
process_dealloc(PyObject *self)
{
    PyObject_GC_UnTrack(self);
    process_clear(self);
    Py_TYPE(self)->tp_free(self);
}

static PyMethodDef process_methods[] = {
    {"interrupt", (PyCFunction)process_interrupt, METH_VARARGS | METH_KEYWORDS,
     "Throw Interrupt into the process at the current time."},
    {NULL}
};

static PyGetSetDef process_getset[] = {
    {"is_alive", process_get_is_alive, NULL,
     "True while the generator has not finished.", NULL},
    {NULL}
};

static PyMemberDef process_members[] = {
    {"name", T_OBJECT, offsetof(CProcess, name), 0, "process name"},
    {NULL}
};

static PyTypeObject ProcessType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.Process",
    .tp_basicsize = sizeof(CProcess),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Wraps a generator and drives it through the events it yields.",
    .tp_base = &EventType,
    .tp_init = process_init,
    .tp_call = process_call,
    .tp_dealloc = process_dealloc,
    .tp_traverse = process_traverse,
    .tp_clear = process_clear,
    .tp_methods = process_methods,
    .tp_getset = process_getset,
    .tp_members = process_members,
};

/* ------------------------------------------------------------------ */
/* Environment                                                         */
/* ------------------------------------------------------------------ */

static PyObject *
env_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    if (!CONFIGURED()) {
        PyErr_SetString(PyExc_RuntimeError,
                        "_ckernel is not configured; import repro.sim.engine first");
        return NULL;
    }
    CEnv *self = (CEnv *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->now = 0.0;
    self->heap = PyList_New(0);
    if (self->heap == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    self->lane = NULL;
    self->lane_head = self->lane_len = self->lane_cap = 0;
    self->counter = 0;
    return (PyObject *)self;
}

static int
env_init(PyObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"initial_time", NULL};
    double initial_time = 0.0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|d:Environment", kwlist,
                                     &initial_time))
        return -1;
    ((CEnv *)self)->now = initial_time;
    return 0;
}

static int
env_traverse(PyObject *self, visitproc visit, void *arg)
{
    CEnv *env = (CEnv *)self;
    Py_VISIT(env->heap);
    for (Py_ssize_t i = 0; i < env->lane_len; i++)
        Py_VISIT(env->lane[(env->lane_head + i) % env->lane_cap]);
    return 0;
}

static int
env_clear_slots(PyObject *self)
{
    CEnv *env = (CEnv *)self;
    Py_CLEAR(env->heap);
    if (env->lane != NULL) {
        for (Py_ssize_t i = 0; i < env->lane_len; i++)
            Py_CLEAR(env->lane[(env->lane_head + i) % env->lane_cap]);
        PyMem_Free(env->lane);
        env->lane = NULL;
        env->lane_head = env->lane_len = env->lane_cap = 0;
    }
    return 0;
}

static void
env_dealloc(PyObject *self)
{
    PyObject_GC_UnTrack(self);
    env_clear_slots(self);
    Py_TYPE(self)->tp_free(self);
}

static PyObject *
env_event(PyObject *self, PyObject *noarg)
{
    CEvent *ev = (CEvent *)event_new(&EventType, NULL, NULL);
    if (ev == NULL)
        return NULL;
    Py_INCREF(self);
    Py_XSETREF(ev->env, self);
    return (PyObject *)ev;
}

static PyObject *
env_timeout(PyObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"delay", "value", NULL};
    double delay;
    PyObject *value = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "d|O:timeout", kwlist,
                                     &delay, &value))
        return NULL;
    CTimeout *t = (CTimeout *)event_new(&TimeoutType, NULL, NULL);
    if (t == NULL)
        return NULL;
    if (timeout_setup(t, self, delay, value) < 0) {
        Py_DECREF(t);
        return NULL;
    }
    return (PyObject *)t;
}

static PyObject *
env_process(PyObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"generator", "name", NULL};
    PyObject *generator, *name = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|O:process", kwlist,
                                     &generator, &name))
        return NULL;
    CProcess *p = (CProcess *)event_new(&ProcessType, NULL, NULL);
    if (p == NULL)
        return NULL;
    if (process_setup(p, self, generator, name) < 0) {
        Py_DECREF(p);
        return NULL;
    }
    return (PyObject *)p;
}

static PyObject *
env_immediate(PyObject *self, PyObject *callback)
{
    return immediate_event(self, callback);
}

static PyObject *
env_succeed_all(PyObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"events", "value", NULL};
    PyObject *events, *value = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|O:succeed_all", kwlist,
                                     &events, &value))
        return NULL;
    CEnv *env = (CEnv *)self;
    PyObject *seq = PySequence_Fast(events, "succeed_all expects a sequence of events");
    if (seq == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    PyObject **items = PySequence_Fast_ITEMS(seq);
    /* Validate the whole batch before mutating anything (a partial batch
     * would hang its waiters forever). */
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *ev = items[i];
        if (is_cevent(ev)) {
            if (((CEvent *)ev)->value != S_pending) {
                PyErr_SetString(E_simerror, "event already triggered");
                Py_DECREF(seq);
                return NULL;
            }
        }
        else {
            PyObject *v = PyObject_GetAttr(ev, str_value_u);
            if (v == NULL) {
                Py_DECREF(seq);
                return NULL;
            }
            int pending = (v == S_pending);
            Py_DECREF(v);
            if (!pending) {
                PyErr_SetString(E_simerror, "event already triggered");
                Py_DECREF(seq);
                return NULL;
            }
        }
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *ev = items[i];
        if (is_cevent(ev)) {
            Py_INCREF(value);
            Py_XSETREF(((CEvent *)ev)->value, value);
        }
        else if (PyObject_SetAttr(ev, str_value_u, value) < 0) {
            Py_DECREF(seq);
            return NULL;
        }
    }
    if (n == 0) {
        Py_DECREF(seq);
        Py_RETURN_NONE;
    }
    if (n == 1) {
        PyObject *ev = items[0];
        int r;
        if (is_cevent(ev))
            r = schedule_fast(env, (CEvent *)ev);
        else {
            PyObject *s = PyLong_FromLongLong(env->counter++);
            if (s == NULL)
                r = -1;
            else {
                r = PyObject_SetAttr(ev, str_seq, s);
                Py_DECREF(s);
                if (r == 0)
                    r = lane_append(env, ev);
            }
        }
        Py_DECREF(seq);
        if (r < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    PyObject *copy = PySequence_List(events);
    Py_DECREF(seq);
    if (copy == NULL)
        return NULL;
    CBatchWakeup *b = (CBatchWakeup *)event_new(&BatchWakeupType, NULL, NULL);
    if (b == NULL) {
        Py_DECREF(copy);
        return NULL;
    }
    int r = batchwakeup_setup(b, self, copy);
    Py_DECREF(copy);
    Py_DECREF(b);
    if (r < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
env_schedule(PyObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"event", "delay", NULL};
    PyObject *event;
    double delay = 0.0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|d:_schedule", kwlist,
                                     &event, &delay))
        return NULL;
    CEnv *env = (CEnv *)self;
    if (is_cevent(event)) {
        int r = (delay == 0.0) ? schedule_fast(env, (CEvent *)event)
                               : schedule_heap(env, event, delay);
        if (r < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    if (delay == 0.0) {
        PyObject *s = PyLong_FromLongLong(env->counter++);
        if (s == NULL)
            return NULL;
        int r = PyObject_SetAttr(event, str_seq, s);
        Py_DECREF(s);
        if (r < 0 || lane_append(env, event) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    if (schedule_heap(env, event, delay) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
env_next_seq(PyObject *self, PyObject *noarg)
{
    return PyLong_FromLongLong(((CEnv *)self)->counter++);
}

static PyObject *
env_fast_append(PyObject *self, PyObject *event)
{
    /* Caller has already assigned _seq (the shared scheduling protocol). */
    if (lane_append((CEnv *)self, event) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
env_fast_is_next(PyObject *self, PyObject *noarg)
{
    CEnv *env = (CEnv *)self;
    if (env->lane_len == 0) {
        PyErr_SetString(PyExc_IndexError, "fast lane is empty");
        return NULL;
    }
    if (PyList_GET_SIZE(env->heap) == 0)
        Py_RETURN_TRUE;
    double t;
    long long s;
    if (heap_key(PyList_GET_ITEM(env->heap, 0), &t, &s) < 0)
        return NULL;
    int err;
    long long lane_seq = event_seq(lane_peek(env), &err);
    if (err)
        return NULL;
    return PyBool_FromLong(t > env->now || s > lane_seq);
}

static PyObject *
env_peek(PyObject *self, PyObject *noarg)
{
    CEnv *env = (CEnv *)self;
    if (env->lane_len)
        return PyFloat_FromDouble(env->now);
    if (PyList_GET_SIZE(env->heap)) {
        double t;
        long long s;
        if (heap_key(PyList_GET_ITEM(env->heap, 0), &t, &s) < 0)
            return NULL;
        return PyFloat_FromDouble(t);
    }
    return PyFloat_FromDouble(Py_HUGE_VAL);
}

/* Pop the globally next event, advancing the clock.  Returns an owned
 * reference, NULL with an error set, or NULL with no error when the queue
 * is drained (*drained = 1).  When ``has_until`` and the next heap event
 * lies beyond ``until`` (lane empty), *past_until is set and NULL is
 * returned with no error. */
static PyObject *
env_pop_next(CEnv *env, int has_until, double until, int *drained, int *past_until)
{
    *drained = 0;
    *past_until = 0;
    Py_ssize_t heap_n = PyList_GET_SIZE(env->heap);
    if (env->lane_len) {
        if (heap_n) {
            double t;
            long long s;
            if (heap_key(PyList_GET_ITEM(env->heap, 0), &t, &s) < 0)
                return NULL;
            int err;
            long long lane_seq = event_seq(lane_peek(env), &err);
            if (err)
                return NULL;
            if (t <= env->now && s < lane_seq) {
                PyObject *entry = heappop_c(env->heap);
                if (entry == NULL)
                    return NULL;
                env->now = t;
                PyObject *ev = PyTuple_GET_ITEM(entry, 2);
                Py_INCREF(ev);
                Py_DECREF(entry);
                return ev;
            }
        }
        return lane_popleft(env);
    }
    if (heap_n) {
        double t;
        long long s;
        if (heap_key(PyList_GET_ITEM(env->heap, 0), &t, &s) < 0)
            return NULL;
        if (has_until && t > until) {
            *past_until = 1;
            return NULL;
        }
        PyObject *entry = heappop_c(env->heap);
        if (entry == NULL)
            return NULL;
        env->now = t;
        PyObject *ev = PyTuple_GET_ITEM(entry, 2);
        Py_INCREF(ev);
        Py_DECREF(entry);
        return ev;
    }
    *drained = 1;
    return NULL;
}

static PyObject *
env_step(PyObject *self, PyObject *noarg)
{
    CEnv *env = (CEnv *)self;
    int drained, past_until;
    PyObject *ev = env_pop_next(env, 0, 0.0, &drained, &past_until);
    if (ev == NULL) {
        if (drained)
            PyErr_SetString(E_simerror, "step() on an empty event queue");
        return NULL;
    }
    int r = fire_event(ev);
    Py_DECREF(ev);
    if (r < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
env_run(PyObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"until", NULL};
    PyObject *until_obj = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O:run", kwlist, &until_obj))
        return NULL;
    CEnv *env = (CEnv *)self;
    int has_until = (until_obj != Py_None);
    double until = 0.0;
    if (has_until) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
        if (until < env->now) {
            PyErr_SetString(E_simerror, "cannot run into the past");
            return NULL;
        }
    }
    for (;;) {
        int drained, past_until;
        PyObject *ev = env_pop_next(env, has_until, until, &drained, &past_until);
        if (ev == NULL) {
            if (PyErr_Occurred())
                return NULL;
            if (past_until) {
                env->now = until;
                return PyFloat_FromDouble(until);
            }
            break;  /* drained */
        }
        int r = fire_event(ev);
        Py_DECREF(ev);
        if (r < 0)
            return NULL;
    }
    if (has_until)
        env->now = until;
    return PyFloat_FromDouble(env->now);
}

static PyObject *
env_run_all(PyObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"max_events", NULL};
    long long max_events = 50000000LL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|L:run_all", kwlist,
                                     &max_events))
        return NULL;
    CEnv *env = (CEnv *)self;
    long long processed = 0;
    for (;;) {
        int drained, past_until;
        PyObject *ev = env_pop_next(env, 0, 0.0, &drained, &past_until);
        if (ev == NULL) {
            if (PyErr_Occurred())
                return NULL;
            break;  /* drained */
        }
        int r = fire_event(ev);
        Py_DECREF(ev);
        if (r < 0)
            return NULL;
        if (++processed > max_events) {
            PyErr_SetString(E_simerror,
                            "simulation did not terminate (event budget exceeded)");
            return NULL;
        }
    }
    return PyFloat_FromDouble(env->now);
}

static PyObject *
env_get_now(PyObject *self, void *closure)
{
    return PyFloat_FromDouble(((CEnv *)self)->now);
}

static PyObject *
env_get_raw_now(PyObject *self, void *closure)
{
    return PyFloat_FromDouble(((CEnv *)self)->now);
}

static int
env_set_raw_now(PyObject *self, PyObject *v, void *closure)
{
    if (v == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete _now");
        return -1;
    }
    double d = PyFloat_AsDouble(v);
    if (d == -1.0 && PyErr_Occurred())
        return -1;
    ((CEnv *)self)->now = d;
    return 0;
}

static PyObject *
env_get_queue(PyObject *self, void *closure)
{
    return Py_NewRef(((CEnv *)self)->heap);
}

static PyMethodDef env_methods[] = {
    {"event", env_event, METH_NOARGS, "Create a fresh untriggered event."},
    {"timeout", (PyCFunction)env_timeout, METH_VARARGS | METH_KEYWORDS,
     "Create an event firing after ``delay``."},
    {"process", (PyCFunction)env_process, METH_VARARGS | METH_KEYWORDS,
     "Spawn a process driving ``generator``."},
    {"succeed_all", (PyCFunction)env_succeed_all, METH_VARARGS | METH_KEYWORDS,
     "Trigger every event in ``events`` at the current time (batched)."},
    {"peek", env_peek, METH_NOARGS,
     "Time of the next scheduled event, or inf if the queue is empty."},
    {"step", env_step, METH_NOARGS, "Process the next event in the queue."},
    {"run", (PyCFunction)env_run, METH_VARARGS | METH_KEYWORDS,
     "Run until simulated time ``until`` (or until the queue drains)."},
    {"run_all", (PyCFunction)env_run_all, METH_VARARGS | METH_KEYWORDS,
     "Drain the queue entirely (bounded by ``max_events``)."},
    {"_immediate", env_immediate, METH_O,
     "Run ``callback`` at the current time via the fast-dispatch lane."},
    {"_schedule", (PyCFunction)env_schedule, METH_VARARGS | METH_KEYWORDS,
     "Schedule a triggered event after ``delay``."},
    {"_next_seq", env_next_seq, METH_NOARGS, "Draw the next sequence number."},
    {"_fast_append", env_fast_append, METH_O,
     "Append an event (with ``_seq`` already set) to the fast lane."},
    {"_fast_is_next", env_fast_is_next, METH_NOARGS,
     "True when the fast lane holds the globally next event."},
    {NULL}
};

static PyGetSetDef env_getset[] = {
    {"now", env_get_now, NULL, "Current simulated time.", NULL},
    {"_now", env_get_raw_now, env_set_raw_now, NULL, NULL},
    {"_queue", env_get_queue, NULL, "The (time, seq, event) heap list.", NULL},
    {NULL}
};

static PyTypeObject EnvType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.Environment",
    .tp_basicsize = sizeof(CEnv),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "The simulation clock and event queue (compiled kernel).",
    .tp_new = env_new,
    .tp_init = env_init,
    .tp_dealloc = env_dealloc,
    .tp_traverse = env_traverse,
    .tp_clear = env_clear_slots,
    .tp_methods = env_methods,
    .tp_getset = env_getset,
};

/* ------------------------------------------------------------------ */
/* module                                                              */
/* ------------------------------------------------------------------ */

static PyObject *
mod_configure(PyObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"pending", "processed", "interrupt",
                             "simulation_error", NULL};
    PyObject *pending, *processed, *interrupt, *simerror;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OOOO:_configure", kwlist,
                                     &pending, &processed, &interrupt,
                                     &simerror))
        return NULL;
    Py_INCREF(pending);
    Py_XSETREF(S_pending, pending);
    Py_INCREF(processed);
    Py_XSETREF(S_processed, processed);
    Py_INCREF(interrupt);
    Py_XSETREF(E_interrupt, interrupt);
    Py_INCREF(simerror);
    Py_XSETREF(E_simerror, simerror);
    Py_RETURN_NONE;
}

static PyMethodDef module_methods[] = {
    {"_configure", (PyCFunction)mod_configure, METH_VARARGS | METH_KEYWORDS,
     "Inject the shared sentinels and exception types (called by engine.py)."},
    {NULL}
};

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._ckernel",
    .m_doc = "Compiled scheduler kernel (see repro.sim.engine for selection).",
    .m_size = -1,
    .m_methods = module_methods,
};

static int
intern_strings(void)
{
#define INTERN(var, s) if ((var = PyUnicode_InternFromString(s)) == NULL) return -1
    INTERN(str_callbacks, "callbacks");
    INTERN(str_seq, "_seq");
    INTERN(str_value_u, "_value");
    INTERN(str_ok_u, "_ok");
    INTERN(str_throw, "throw");
    INTERN(str_close, "close");
    INTERN(str_send, "send");
    INTERN(str_name_dunder, "__name__");
    INTERN(str_next_seq, "_next_seq");
    INTERN(str_fast_append, "_fast_append");
    INTERN(str_queue_u, "_queue");
    INTERN(str_now_u, "_now");
#undef INTERN
    return 0;
}

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    if (intern_strings() < 0)
        return NULL;
    if (PyType_Ready(&EventType) < 0 ||
        PyType_Ready(&TimeoutType) < 0 ||
        PyType_Ready(&BatchWakeupType) < 0 ||
        PyType_Ready(&ProcessType) < 0 ||
        PyType_Ready(&EnvType) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&ckernel_module);
    if (m == NULL)
        return NULL;
    if (PyModule_AddObjectRef(m, "Event", (PyObject *)&EventType) < 0 ||
        PyModule_AddObjectRef(m, "Timeout", (PyObject *)&TimeoutType) < 0 ||
        PyModule_AddObjectRef(m, "BatchWakeup", (PyObject *)&BatchWakeupType) < 0 ||
        PyModule_AddObjectRef(m, "Process", (PyObject *)&ProcessType) < 0 ||
        PyModule_AddObjectRef(m, "Environment", (PyObject *)&EnvType) < 0 ||
        PyModule_AddStringConstant(m, "BACKEND", "c") < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
