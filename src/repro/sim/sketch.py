"""Fixed-memory streaming latency quantiles (HDR-histogram-style).

At the ``xlarge``/``web`` scale tiers a run commits millions of transactions;
retaining every latency sample (``LatencyRecorder``'s ``array('d')``) costs
8 bytes per transaction and makes serialized ``RunResult`` JSON grow with run
length.  :class:`LatencySketch` replaces the raw samples with log-bucketed
counts: memory and JSON size are bounded by the number of *distinct occupied
buckets* (a few hundred for any realistic latency distribution), independent
of sample count.

Bucketing is exact integer arithmetic — no ``math.log`` — so results are
bit-identical across platforms, which the fixed-seed goldens require:

* a sample ``v`` (µs) is quantized to ``ticks = int(v * TICKS_PER_UNIT)``
  (eighth-of-a-µs resolution);
* ticks below ``2**SUB_BITS`` index their own bucket (exact);
* larger ticks use HDR indexing: with ``e = ticks.bit_length() - 1`` (the
  octave) the bucket keeps the top ``SUB_BITS`` significant bits, giving
  ``2**(SUB_BITS - 1)`` buckets per octave and relative bucket width
  ``2**(1 - SUB_BITS)``.

With ``SUB_BITS = 8`` every quantile estimate is within 1/128 (≈0.8%)
relative error plus one tick (0.125 µs) of the exact sample — the bound the
property tests in ``tests/sim/test_sketch.py`` pin.  The running count, sum
and max are tracked exactly, so ``mean`` and ``max`` (and ``percentile(0)`` /
``percentile(100)``) stay sample-exact; only interior quantiles are
bucket-resolution-exact.

Percentile semantics mirror :class:`~repro.sim.stats.LatencyRecorder`'s
nearest-rank rule (same rank formula), then report the midpoint of the
selected bucket, clamped into the observed ``[min, max]`` range.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["LatencySketch", "SUB_BITS", "TICKS_PER_UNIT", "RELATIVE_ERROR"]

#: Significant bits kept per bucket index; 8 → 128 buckets per octave.
SUB_BITS = 8

#: Integer ticks per µs (values are quantized to 1/8 µs before bucketing).
TICKS_PER_UNIT = 8

#: Full bucket width relative to the bucket's value: quantile estimates are
#: within ``value * RELATIVE_ERROR + 1/TICKS_PER_UNIT`` of the exact
#: nearest-rank sample.
RELATIVE_ERROR = 2.0 ** (1 - SUB_BITS)

_EXACT_LIMIT = 1 << SUB_BITS          # ticks below this index themselves
_HALF = 1 << (SUB_BITS - 1)           # buckets per octave


def _bucket_of(ticks: int) -> int:
    """Bucket index for a non-negative integer tick count (pure int ops)."""
    if ticks < _EXACT_LIMIT:
        return ticks
    e = ticks.bit_length() - 1
    # Top SUB_BITS significant bits; subtract the implicit leading half so the
    # sub-index lands in [0, _HALF).
    sub = (ticks >> (e - (SUB_BITS - 1))) - _HALF
    return _EXACT_LIMIT + (e - SUB_BITS) * _HALF + sub


def _bucket_bounds_ticks(index: int) -> tuple[int, int]:
    """Inclusive lower / exclusive upper tick bounds of a bucket."""
    if index < _EXACT_LIMIT:
        return index, index + 1
    octave, sub = divmod(index - _EXACT_LIMIT, _HALF)
    e = octave + SUB_BITS
    width = 1 << (e - (SUB_BITS - 1))
    lo = (1 << e) + sub * width
    return lo, lo + width


class LatencySketch:
    """Streaming log-bucketed histogram with exact count/sum/min/max."""

    __slots__ = ("_buckets", "_count", "_sum", "_min", "_max")

    def __init__(self) -> None:
        self._buckets: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0

    # -- recording -----------------------------------------------------------
    def record(self, value: float) -> None:
        ticks = int(value * TICKS_PER_UNIT)
        if ticks < 0:
            ticks = 0
        index = ticks if ticks < _EXACT_LIMIT else _bucket_of(ticks)
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + 1
        if self._count == 0:
            self._min = self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        self._count += 1
        self._sum += value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    # -- accessors -----------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            return 0.0
        return self._sum / self._count

    @property
    def max(self) -> float:
        return self._max

    @property
    def min(self) -> float:
        return self._min

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile; same rank rule as ``LatencyRecorder``."""
        n = self._count
        if n == 0:
            return 0.0
        if pct <= 0:
            return self._min
        if pct >= 100:
            return self._max
        rank = max(0, min(n - 1, int(round(pct / 100.0 * n)) - 1))
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen > rank:
                lo, hi = _bucket_bounds_ticks(index)
                estimate = (lo + hi) * 0.5 / TICKS_PER_UNIT
                # The true sample lies in [min, max]; clamping tightens the
                # edge buckets the observed extremes only partially fill.
                return min(self._max, max(self._min, estimate))
        return self._max  # pragma: no cover — unreachable (counts sum to n)

    # -- merge / serialization -------------------------------------------------
    def merge(self, other: "LatencySketch") -> None:
        """Order-independent merge (shard aggregation)."""
        if other._count == 0:
            return
        buckets = self._buckets
        for index, cnt in other._buckets.items():
            buckets[index] = buckets.get(index, 0) + cnt
        if self._count == 0:
            self._min, self._max = other._min, other._max
        else:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
        self._count += other._count
        self._sum += other._sum

    def to_json_dict(self) -> dict:
        """Bounded-size JSON form; inverse of :meth:`from_json_dict`.

        Bucket keys are serialized as strings (JSON object keys) in ascending
        numeric order so equal sketches serialize byte-identically.
        """
        return {
            "sub_bits": SUB_BITS,
            "ticks_per_unit": TICKS_PER_UNIT,
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "buckets": {str(i): self._buckets[i] for i in sorted(self._buckets)},
        }

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "LatencySketch":
        sub_bits = int(data.get("sub_bits", SUB_BITS))
        ticks = int(data.get("ticks_per_unit", TICKS_PER_UNIT))
        if sub_bits != SUB_BITS or ticks != TICKS_PER_UNIT:
            raise ValueError(
                f"incompatible sketch parameters (sub_bits={sub_bits}, "
                f"ticks_per_unit={ticks}); this build uses "
                f"({SUB_BITS}, {TICKS_PER_UNIT})"
            )
        sketch = cls()
        sketch._count = int(data["count"])
        sketch._sum = float(data["sum"])
        sketch._min = float(data["min"])
        sketch._max = float(data["max"])
        sketch._buckets = {int(k): int(v) for k, v in data["buckets"].items()}
        return sketch

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"LatencySketch(count={self._count}, buckets={len(self._buckets)}, "
            f"mean={self.mean:.1f}, max={self._max:.1f})"
        )
