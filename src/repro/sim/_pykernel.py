"""Pure-Python discrete-event simulation kernel (the reference implementation).

This module is one of two interchangeable scheduler kernels behind
:mod:`repro.sim.engine`: the other is the optional compiled C extension
``repro.sim._ckernel``.  ``engine`` picks one at import time (see the
``REPRO_ENGINE`` environment variable) and re-exports its classes; all other
code imports from ``engine`` and never from here.  The two kernels are
bit-identical by contract — same event orderings, same sequence numbers, same
final clock — which the differential test in ``tests/sim/test_backend_parity``
and the fixed-seed rows of ``scripts/bench_gate.py`` enforce.  This pure
path is the semantics reference: behaviour changes land here first and the C
kernel follows.

The whole reproduction runs on simulated time: partitions, worker threads,
network messages, log flushes and replication rounds are all events scheduled
on a single :class:`Environment`.  Processes are plain Python generators that
yield :class:`Event` objects (typically produced by :meth:`Environment.timeout`
or by the networking / locking substrates) and are resumed when the event
fires.

The design intentionally mirrors a small subset of SimPy so that the protocol
code reads like straight-line pseudo code from the paper:

    def worker(env):
        yield env.timeout(10.0)
        value = yield from network.rpc(src, dst, handler, payload)

Only the features the reproduction needs are implemented: timeouts, generic
events, processes (which are themselves events and can therefore be awaited),
and process failure propagation.

Scheduling internals
--------------------

Regenerating a figure pushes tens of millions of events through this module,
so the dispatcher is the single hottest code in the repo.  Two queues are
maintained:

* a binary heap of ``(time, seqno, event)`` for events in the future, and
* a plain FIFO deque of bare events for events triggered with zero delay
  at the current time — process kick-offs, interrupts, lock grants,
  ``all_of`` completions and local ``succeed()`` chains all land here and
  bypass the heap entirely.

Both queues share one monotone sequence counter (fast-lane events carry
theirs in the ``_seq`` slot), and the dispatcher always runs the entry with
the smallest ``(time, seqno)`` pair, so the observable
event order is exactly the order a single heap would produce: FIFO among
same-timestamp events, globally sorted by time.  Tests pin this invariant.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "BatchWakeup",
    "Process",
    "SimulationError",
    "Interrupt",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. yielding a non-event)."""


class Interrupt(Exception):
    """Thrown into a process that has been interrupted (e.g. by a crash)."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event state markers.
_PENDING = object()
# Marker stored in Event.callbacks once the event has been dispatched.  A
# fresh event's callbacks field is ``None``; a single waiter is stored bare
# (most events have exactly one), and a list is only allocated for the rare
# event with several waiters.
_PROCESSED: tuple = ()


class Event:
    """A single occurrence a process can wait for.

    An event starts *untriggered*; once :meth:`succeed` (or :meth:`fail`) is
    called it is scheduled on the environment and every waiting callback runs
    at the current simulated time.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_seq")

    def __init__(self, env: "Environment"):
        self.env = env
        # None = no waiters; a bare callable = one waiter; list = several
        # waiters; _PROCESSED = already fired.
        self.callbacks: Any = None
        self._value: Any = _PENDING
        self._ok = True

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is _PROCESSED

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value accessed before it was triggered")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        env = self.env
        if delay == 0.0:
            self._seq = env._next_seq()
            env._fast_append(self)
        else:
            heappush(env._queue, (env._now + delay, env._next_seq(), self))
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception; waiters will see it raised."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        callbacks = self.callbacks
        if callbacks is None:
            self.callbacks = callback
        elif callbacks is _PROCESSED:
            # Already processed: run immediately at the current time.
            callback(self)
        elif type(callbacks) is list:
            callbacks.append(callback)
        else:
            self.callbacks = [callbacks, callback]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.env.now:.3f}>"


class BatchWakeup(Event):
    """One fast-lane carrier that fires a batch of already-triggered events.

    Group-commit style code releases whole batches of waiters at once (the
    watermark/epoch/CLV durability schemes, lock wake-ups).  Scheduling one
    fast-lane entry per released event costs a sequence draw, a deque append
    and a dispatcher iteration each; a :class:`BatchWakeup` pays those once
    for the whole batch and then runs each sub-event's callbacks in batch
    order.

    Ordering is exactly what individual ``succeed()`` calls would produce:
    the sub-events are consecutive in the lane either way (the releasing code
    runs synchronously, so nothing else can interleave sequence numbers), and
    anything a woken callback schedules lands *after* the whole batch in both
    schemes.  ``tests/sim/test_engine.py`` pins this equivalence against a
    reference run.
    """

    __slots__ = ("_batch",)

    def __init__(self, env: "Environment", batch: list):
        self.env = env
        self._value = None
        self._ok = True
        self._batch = batch
        self.callbacks = self._fire
        self._seq = env._next_seq()
        env._fast_append(self)

    def _fire(self, _event: Event) -> None:
        for sub in self._batch:
            callbacks = sub.callbacks
            sub.callbacks = _PROCESSED
            if callbacks is not None:
                if type(callbacks) is list:
                    for callback in callbacks:
                        callback(sub)
                else:
                    callbacks(sub)


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ + Event.succeed: a timeout is born triggered
        # and scheduled, and this constructor runs once per simulated wait.
        self.env = env
        self.callbacks = None
        self._value = value
        self._ok = True
        self.delay = delay
        if delay == 0.0:
            self._seq = env._next_seq()
            env._fast_append(self)
        else:
            heappush(env._queue, (env._now + delay, env._next_seq(), self))


class Process(Event):
    """Wraps a generator and drives it through the events it yields.

    A process is itself an event: it triggers with the generator's return
    value when the generator finishes, so processes can wait for each other
    (``result = yield env.process(child())``).
    """

    __slots__ = ("name", "_generator", "_interrupted_by", "_resume_cb", "_target")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._interrupted_by: Optional[Interrupt] = None
        # The bound resume method is allocated once and reused for every wait.
        resume = self._resume
        self._resume_cb = resume
        # Kick off the process at the current simulated time (fast lane).
        self._target = env._immediate(resume)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not _PENDING:
            return
        self._interrupted_by = Interrupt(cause)
        self.env._immediate(self._resume_cb)

    def _finish(self) -> None:
        """Drop completion-time references so a finished process is acyclic.

        A live process is inherently cyclic (``self._resume_cb`` is a bound
        method back to ``self``, and the generator frame's locals reference
        events whose callbacks reference the process).  Dropping the
        generator and the bound method here lets reference counting reclaim
        the frame and its locals immediately — finished processes otherwise
        pile up as cyclic garbage and force expensive full GC passes (a
        measurable fraction of end-to-end run time).
        """
        self._generator = None
        self._resume_cb = None
        self._target = None
        self._interrupted_by = None

    def _resume(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        try:
            if self._interrupted_by is not None:
                exc, self._interrupted_by = self._interrupted_by, None
                target = self._generator.throw(exc)
            elif event is not self._target:
                # Stale wakeup: an interrupt was scheduled but the awaited
                # event fired (and consumed the interrupt) in the same tick.
                # The generator is waiting on a different event now.
                return
            elif event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._finish()
            self.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: treat as termination.
            self._finish()
            self.succeed(None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self._finish()
            self.fail(exc)
            return
        try:
            callbacks = target.callbacks
        except AttributeError:
            error = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            self._generator.close()
            self._finish()
            self.fail(error)
            return
        self._target = target
        if callbacks is None:
            target.callbacks = self._resume_cb
        elif callbacks is _PROCESSED:
            # Target already processed: resume immediately at the current time.
            self._resume(target)
        elif type(callbacks) is list:
            callbacks.append(self._resume_cb)
        else:
            target.callbacks = [callbacks, self._resume_cb]


class Environment:
    """The simulation clock and event queue."""

    __slots__ = (
        "_now",
        "_queue",
        "_fast",
        "_fast_append",
        "_counter",
        "_next_seq",
        "_active_processes",
    )

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        # Zero-delay fast-dispatch lane; see the module docstring.  The
        # append and sequence-draw callables are bound once: the scheduling
        # fast path runs them for every zero-delay event.
        self._fast: deque[Event] = deque()
        self._fast_append = self._fast.append
        self._counter = count()
        self._next_seq = self._counter.__next__
        self._active_processes = 0

    @property
    def now(self) -> float:
        """Current simulated time (microseconds by convention in this repo)."""
        return self._now

    # -- event creation -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    # -- scheduling -----------------------------------------------------
    def _immediate(self, callback: Callable[[Event], None]) -> Event:
        """Run ``callback`` at the current time via the fast-dispatch lane.

        The single place that builds a pre-succeeded single-callback event;
        process kick-off, interrupts and one-way sends all go through here so
        the lane's scheduling invariants live in one spot.
        """
        event = Event(self)
        event._value = None
        event.callbacks = callback
        event._seq = self._next_seq()
        self._fast_append(event)
        return event

    def succeed_all(self, events: list, value: Any = None) -> None:
        """Trigger every event in ``events`` with ``value`` at the current time.

        The batched equivalent of calling ``event.succeed(value)`` on each in
        order: every event is marked triggered immediately, and all of their
        callbacks run from one shared sequence-ordered fast-lane entry (see
        :class:`BatchWakeup`).  Observable event order is identical to the
        unbatched loop; only the per-event scheduling overhead disappears.
        """
        # Validate the whole batch before mutating anything: a partial batch
        # (some events marked triggered but never scheduled) would hang their
        # waiters forever, which the equivalent per-event succeed() loop can
        # never do to events preceding the bad one.
        for event in events:
            if event._value is not _PENDING:
                raise SimulationError("event already triggered")
        for event in events:
            event._value = value
        if not events:
            return
        if len(events) == 1:
            event = events[0]
            event._seq = self._next_seq()
            self._fast_append(event)
        else:
            BatchWakeup(self, list(events))

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay == 0.0:
            event._seq = self._next_seq()
            self._fast_append(event)
        else:
            heappush(self._queue, (self._now + delay, self._next_seq(), event))

    def _fast_is_next(self) -> bool:
        """True when the fast lane holds the globally next event.

        The fast lane only contains events at the current time, so it wins
        unless the heap head is *also* at the current time with a smaller
        sequence number (i.e. it was scheduled earlier).
        """
        queue = self._queue
        if not queue:
            return True
        head = queue[0]
        return head[0] > self._now or head[1] > self._fast[0]._seq

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        if self._fast:
            return self._now
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event in the queue."""
        if self._fast and self._fast_is_next():
            event = self._fast.popleft()
        else:
            if not self._queue:
                raise SimulationError("step() on an empty event queue")
            when, _, event = heappop(self._queue)
            self._now = when
        callbacks = event.callbacks
        event.callbacks = _PROCESSED
        if callbacks is not None:
            if type(callbacks) is list:
                for callback in callbacks:
                    callback(event)
            else:
                callbacks(event)

    def run(self, until: Optional[float] = None) -> float:
        """Run until simulated time ``until`` (or until the queue drains)."""
        if until is not None and until < self._now:
            raise SimulationError("cannot run into the past")
        # The dispatch loop is deliberately inlined (no step() call per event):
        # it is the hottest loop in the repo.
        fast = self._fast
        queue = self._queue
        popleft = fast.popleft
        while True:
            if fast:
                if queue:
                    head = queue[0]
                    if head[0] <= self._now and head[1] < fast[0]._seq:
                        self._now = head[0]
                        event = heappop(queue)[2]
                    else:
                        event = popleft()
                else:
                    event = popleft()
            elif queue:
                when = queue[0][0]
                if until is not None and when > until:
                    self._now = until
                    return until
                self._now = when
                event = heappop(queue)[2]
            else:
                break
            callbacks = event.callbacks
            event.callbacks = _PROCESSED
            if callbacks is not None:
                if type(callbacks) is list:
                    for callback in callbacks:
                        callback(event)
                else:
                    callbacks(event)
        if until is not None:
            self._now = until
        return self._now

    def run_all(self, max_events: int = 50_000_000) -> float:
        """Drain the queue entirely (bounded by ``max_events`` as a safety net)."""
        processed = 0
        fast = self._fast
        queue = self._queue
        popleft = fast.popleft
        while True:
            if fast:
                if queue:
                    head = queue[0]
                    if head[0] <= self._now and head[1] < fast[0]._seq:
                        self._now = head[0]
                        event = heappop(queue)[2]
                    else:
                        event = popleft()
                else:
                    event = popleft()
            elif queue:
                self._now = queue[0][0]
                event = heappop(queue)[2]
            else:
                break
            callbacks = event.callbacks
            event.callbacks = _PROCESSED
            if callbacks is not None:
                if type(callbacks) is list:
                    for callback in callbacks:
                        callback(event)
                else:
                    callbacks(event)
            processed += 1
            if processed > max_events:
                raise SimulationError("simulation did not terminate (event budget exceeded)")
        return self._now


def all_of(env: Environment, events: Iterable[Event]) -> Event:
    """Return an event that fires after every event in ``events`` has fired."""
    events = list(events)
    done = env.event()
    remaining = len(events)
    results: list[Any] = [None] * remaining
    if remaining == 0:
        done.succeed([])
        return done

    def make_callback(index: int) -> Callable[[Event], None]:
        def callback(event: Event) -> None:
            nonlocal remaining
            results[index] = event.value if event.ok else event._value
            remaining -= 1
            if remaining == 0 and not done.triggered:
                done.succeed(results)

        return callback

    for i, event in enumerate(events):
        event.add_callback(make_callback(i))
    return done


def any_of(env: Environment, events: Iterable[Event]) -> Event:
    """Return an event that fires as soon as one event in ``events`` fires."""
    events = list(events)
    done = env.event()
    if not events:
        done.succeed(None)
        return done

    def callback(event: Event) -> None:
        if not done.triggered:
            done.succeed(event.value if event.ok else event._value)

    for event in events:
        event.add_callback(callback)
    return done
