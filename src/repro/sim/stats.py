"""Measurement utilities: counters, latency recorders and breakdown timers.

The paper's evaluation reports throughput (committed transactions / second),
average and 99th-percentile latency, abort rates, and a latency *breakdown*
into components (execute, 2PC, timestamp, commit, backoff, return, wait_batch,
sequence — Figs. 4c/5c).  These classes collect exactly those quantities.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "Counter",
    "LatencyRecorder",
    "BreakdownTimer",
    "RunMetrics",
    "BREAKDOWN_COMPONENTS",
]

# Latency components reported in the paper's breakdown figures.
BREAKDOWN_COMPONENTS = (
    "execute",
    "2pc",
    "timestamp",
    "commit",
    "backoff",
    "return",
    "wait_batch",
    "sequence",
)


class Counter:
    """Named integer counters."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)

    def increment(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    @classmethod
    def from_dict(cls, counts: dict) -> "Counter":
        counter = cls()
        for name, value in counts.items():
            counter._counts[name] = int(value)
        return counter

    def merge(self, other: "Counter") -> None:
        for name, value in other._counts.items():
            self._counts[name] += value


class LatencyRecorder:
    """Collects latency samples and reports mean / percentiles."""

    def __init__(self) -> None:
        self._samples: list[float] = []

    def record(self, latency: float) -> None:
        self._samples.append(latency)

    def extend(self, samples: Iterable[float]) -> None:
        self._samples.extend(samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile (pct in [0, 100])."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if pct <= 0:
            return ordered[0]
        if pct >= 100:
            return ordered[-1]
        rank = max(0, min(len(ordered) - 1, int(round(pct / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0

    @property
    def samples(self) -> list[float]:
        """The raw samples in recording order (used for serialization)."""
        return list(self._samples)

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "LatencyRecorder":
        recorder = cls()
        recorder._samples = [float(s) for s in samples]
        return recorder


class BreakdownTimer:
    """Accumulates per-component time for the latency-breakdown figures."""

    def __init__(self) -> None:
        self._totals: dict[str, float] = defaultdict(float)
        self._txn_count = 0

    def add(self, component: str, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative duration for {component}: {duration}")
        self._totals[component] += duration

    def finish_transaction(self) -> None:
        """Mark that one transaction's breakdown has been fully recorded."""
        self._txn_count += 1

    def merge(self, other: "BreakdownTimer") -> None:
        for component, value in other._totals.items():
            self._totals[component] += value
        self._txn_count += other._txn_count

    def total(self, component: str) -> float:
        return self._totals.get(component, 0.0)

    def per_transaction(self) -> dict[str, float]:
        """Average time per committed transaction for each component."""
        if self._txn_count == 0:
            return {component: 0.0 for component in BREAKDOWN_COMPONENTS}
        return {
            component: self._totals.get(component, 0.0) / self._txn_count
            for component in BREAKDOWN_COMPONENTS
        }

    def to_json_dict(self) -> dict:
        return {"totals": dict(self._totals), "txn_count": self._txn_count}

    @classmethod
    def from_json_dict(cls, data: dict) -> "BreakdownTimer":
        timer = cls()
        for component, value in data.get("totals", {}).items():
            timer._totals[component] = float(value)
        timer._txn_count = int(data.get("txn_count", 0))
        return timer


@dataclass
class RunMetrics:
    """Everything a single simulated run reports back to the harness."""

    duration_us: float = 0.0
    committed: int = 0
    aborted: int = 0
    crash_aborted: int = 0
    counters: Counter = field(default_factory=Counter)
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    breakdown: BreakdownTimer = field(default_factory=BreakdownTimer)

    @property
    def throughput_tps(self) -> float:
        """Committed transactions per (simulated) second."""
        if self.duration_us <= 0:
            return 0.0
        return self.committed / (self.duration_us / 1_000_000.0)

    @property
    def throughput_ktps(self) -> float:
        return self.throughput_tps / 1000.0

    @property
    def abort_rate(self) -> float:
        """Fraction of transaction *attempts* that aborted."""
        attempts = self.committed + self.aborted
        if attempts == 0:
            return 0.0
        return self.aborted / attempts

    @property
    def crash_abort_rate(self) -> float:
        total = self.committed + self.crash_aborted
        if total == 0:
            return 0.0
        return self.crash_aborted / total

    @property
    def mean_latency_ms(self) -> float:
        return self.latency.mean / 1000.0

    @property
    def p99_latency_ms(self) -> float:
        return self.latency.p99 / 1000.0

    def summary(self) -> dict:
        """Flat dictionary used by the bench report printers."""
        return {
            "throughput_ktps": self.throughput_ktps,
            "committed": self.committed,
            "aborted": self.aborted,
            "abort_rate": self.abort_rate,
            "crash_abort_rate": self.crash_abort_rate,
            "mean_latency_ms": self.mean_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "breakdown_us": self.breakdown.per_transaction(),
        }

    def to_json_dict(self) -> dict:
        """Lossless JSON form (inverse of :meth:`from_json_dict`).

        Unlike :meth:`summary` this keeps the raw latency samples and counter
        values, so a deserialized ``RunMetrics`` reports byte-identical
        statistics — the property the orchestrator's on-disk cache relies on.
        """
        return {
            "duration_us": self.duration_us,
            "committed": self.committed,
            "aborted": self.aborted,
            "crash_aborted": self.crash_aborted,
            "counters": self.counters.as_dict(),
            "latency_samples": self.latency.samples,
            "breakdown": self.breakdown.to_json_dict(),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "RunMetrics":
        return cls(
            duration_us=float(data["duration_us"]),
            committed=int(data["committed"]),
            aborted=int(data["aborted"]),
            crash_aborted=int(data.get("crash_aborted", 0)),
            counters=Counter.from_dict(data.get("counters", {})),
            latency=LatencyRecorder.from_samples(data.get("latency_samples", [])),
            breakdown=BreakdownTimer.from_json_dict(data.get("breakdown", {})),
        )
