"""Measurement utilities: counters, latency recorders and breakdown timers.

The paper's evaluation reports throughput (committed transactions / second),
average and 99th-percentile latency, abort rates, and a latency *breakdown*
into components (execute, 2PC, timestamp, commit, backoff, return, wait_batch,
sequence — Figs. 4c/5c).  These classes collect exactly those quantities.

Hot-path notes: every committed transaction touches these classes several
times, so recording is kept allocation-free.

* :class:`Counter` is slotted and increments through a plain dict (no
  ``defaultdict`` factory call per new key).
* :class:`LatencyRecorder` appends to a C-backed ``array('d')`` and sorts
  on demand: the sorted view is computed once and cached until the next
  append invalidates it, so ``p50``/``p99``/``max`` after a run each cost a
  cached lookup instead of a fresh full sort.  Above ``SKETCH_THRESHOLD``
  samples it folds everything into a fixed-memory
  :class:`~repro.sim.sketch.LatencySketch` and stops retaining raw samples —
  million-transaction runs (the ``xlarge``/``web`` tiers) keep O(buckets)
  memory and serialize to bounded JSON.  The threshold sits far above every
  committed golden run's sample count, so all pre-existing fixed-seed
  goldens take the exact path bit-identically.
* :class:`BreakdownTimer` interns component names once (module-level id
  table seeded with the paper's components) and accumulates into a flat
  float list indexed by component id — ``add()`` on the commit path is two
  list operations, not a dict hash + resize.

All three merge order-independently (the pool orchestrator merges shards in
arbitrary completion order); ``tests/sim/test_stats.py`` pins that property.
"""

from __future__ import annotations

from array import array
from statistics import median
from typing import Iterable

from .sketch import LatencySketch

__all__ = [
    "Counter",
    "LatencyRecorder",
    "BreakdownTimer",
    "RunMetrics",
    "WindowedRecorder",
    "BREAKDOWN_COMPONENTS",
    "SKETCH_THRESHOLD",
]

#: Sample count beyond which a LatencyRecorder folds into a LatencySketch.
#: Deliberately far above the sample counts of every committed fixed-seed
#: golden (tiny→paper scales stay exact); only the xlarge/web tiers cross it.
SKETCH_THRESHOLD = 100_000

# Latency components reported in the paper's breakdown figures.
BREAKDOWN_COMPONENTS = (
    "execute",
    "2pc",
    "timestamp",
    "commit",
    "backoff",
    "return",
    "wait_batch",
    "sequence",
)

# Component name -> slot index, shared by every BreakdownTimer.  Seeded with
# the paper's components; unknown components are interned on first use (the
# table only ever grows, so existing indices stay valid and timers merged
# across processes agree on the seeded prefix).
_COMPONENT_IDS: dict[str, int] = {
    name: i for i, name in enumerate(BREAKDOWN_COMPONENTS)
}


def _component_id(component: str) -> int:
    ids = _COMPONENT_IDS
    idx = ids.get(component)
    if idx is None:
        ids[component] = idx = len(ids)
    return idx


class Counter:
    """Named integer counters."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        counts = self._counts
        counts[name] = counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    @classmethod
    def from_dict(cls, counts: dict) -> "Counter":
        counter = cls()
        for name, value in counts.items():
            counter._counts[name] = int(value)
        return counter

    def merge(self, other: "Counter") -> None:
        counts = self._counts
        for name, value in other._counts.items():
            counts[name] = counts.get(name, 0) + value


class LatencyRecorder:
    """Collects latency samples and reports mean / percentiles.

    Exact (every sample retained, nearest-rank percentiles) up to
    ``SKETCH_THRESHOLD`` samples; beyond that the samples fold into a
    fixed-memory :class:`LatencySketch` (bucket-resolution-exact percentiles,
    sample-exact mean/max) so memory and serialized size stop growing with
    run length.  ``sketched`` reports which regime the recorder is in.
    """

    __slots__ = ("_samples", "_sorted", "_sketch")

    def __init__(self) -> None:
        self._samples: array = array("d")
        # Cached ascending view; invalidated by every append/extend so the
        # sort runs once per batch of percentile queries, not once per query.
        self._sorted: array | None = None
        self._sketch: LatencySketch | None = None

    def _fold_into_sketch(self) -> None:
        sketch = LatencySketch()
        sketch.extend(self._samples)
        self._sketch = sketch
        self._samples = array("d")
        self._sorted = None

    def record(self, latency: float) -> None:
        sketch = self._sketch
        if sketch is not None:
            sketch.record(latency)
            return
        self._samples.append(latency)
        self._sorted = None
        if len(self._samples) > SKETCH_THRESHOLD:
            self._fold_into_sketch()

    def extend(self, samples: Iterable[float]) -> None:
        sketch = self._sketch
        if sketch is not None:
            sketch.extend(samples)
            return
        self._samples.extend(samples)
        self._sorted = None
        if len(self._samples) > SKETCH_THRESHOLD:
            self._fold_into_sketch()

    def _ordered(self) -> array:
        ordered = self._sorted
        if ordered is None:
            ordered = array("d", sorted(self._samples))
            self._sorted = ordered
        return ordered

    @property
    def sketched(self) -> bool:
        """True once the recorder has folded into the fixed-memory sketch."""
        return self._sketch is not None

    @property
    def count(self) -> int:
        if self._sketch is not None:
            return self._sketch.count
        return len(self._samples)

    @property
    def mean(self) -> float:
        if self._sketch is not None:
            return self._sketch.mean
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile (pct in [0, 100])."""
        if self._sketch is not None:
            return self._sketch.percentile(pct)
        if not self._samples:
            return 0.0
        ordered = self._ordered()
        if pct <= 0:
            return ordered[0]
        if pct >= 100:
            return ordered[-1]
        rank = max(0, min(len(ordered) - 1, int(round(pct / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def p999(self) -> float:
        """99.9th percentile — the tail the open-loop load curves report."""
        return self.percentile(99.9)

    @property
    def max(self) -> float:
        if self._sketch is not None:
            return self._sketch.max
        if not self._samples:
            return 0.0
        return self._ordered()[-1]

    @property
    def samples(self) -> list[float]:
        """The raw samples in recording order (used for serialization).

        Only available in the exact regime; a sketched recorder no longer
        holds raw samples — serialize via :attr:`sketch` instead.
        """
        if self._sketch is not None:
            raise ValueError(
                "recorder folded into a sketch; raw samples are gone "
                "(serialize the sketch instead)"
            )
        return list(self._samples)

    @property
    def sketch(self) -> LatencySketch:
        """The fixed-memory sketch (only once :attr:`sketched` is True)."""
        if self._sketch is None:
            raise ValueError("recorder still holds exact samples, not a sketch")
        return self._sketch

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "LatencyRecorder":
        recorder = cls()
        recorder._samples = array("d", (float(s) for s in samples))
        if len(recorder._samples) > SKETCH_THRESHOLD:
            recorder._fold_into_sketch()
        return recorder

    @classmethod
    def from_sketch(cls, sketch: LatencySketch) -> "LatencyRecorder":
        recorder = cls()
        recorder._sketch = sketch
        return recorder


class BreakdownTimer:
    """Accumulates per-component time for the latency-breakdown figures."""

    __slots__ = ("_totals", "_txn_count")

    def __init__(self) -> None:
        # Flat accumulator indexed by the interned component id; grown on
        # demand when a not-yet-seen component is recorded.
        self._totals: list[float] = [0.0] * len(BREAKDOWN_COMPONENTS)
        self._txn_count = 0

    def add(self, component: str, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative duration for {component}: {duration}")
        idx = _COMPONENT_IDS.get(component)
        if idx is None:
            idx = _component_id(component)
        totals = self._totals
        if idx >= len(totals):
            totals.extend([0.0] * (idx + 1 - len(totals)))
        totals[idx] += duration

    def finish_transaction(self) -> None:
        """Mark that one transaction's breakdown has been fully recorded."""
        self._txn_count += 1

    def merge(self, other: "BreakdownTimer") -> None:
        totals = self._totals
        other_totals = other._totals
        if len(other_totals) > len(totals):
            totals.extend([0.0] * (len(other_totals) - len(totals)))
        for idx, value in enumerate(other_totals):
            totals[idx] += value
        self._txn_count += other._txn_count

    def total(self, component: str) -> float:
        idx = _COMPONENT_IDS.get(component)
        if idx is None or idx >= len(self._totals):
            return 0.0
        return self._totals[idx]

    def per_transaction(self) -> dict[str, float]:
        """Average time per committed transaction for each component."""
        if self._txn_count == 0:
            return {component: 0.0 for component in BREAKDOWN_COMPONENTS}
        return {
            component: self.total(component) / self._txn_count
            for component in BREAKDOWN_COMPONENTS
        }

    def _named_totals(self) -> dict[str, float]:
        """Non-zero totals keyed by component name (serialization view)."""
        totals = self._totals
        return {
            name: totals[idx]
            for name, idx in _COMPONENT_IDS.items()
            if idx < len(totals) and totals[idx] != 0.0
        }

    def to_json_dict(self) -> dict:
        return {"totals": self._named_totals(), "txn_count": self._txn_count}

    @classmethod
    def from_json_dict(cls, data: dict) -> "BreakdownTimer":
        timer = cls()
        for component, value in data.get("totals", {}).items():
            timer.add(component, 0.0)  # intern + size the slot
            timer._totals[_COMPONENT_IDS[component]] = float(value)
        timer._txn_count = int(data.get("txn_count", 0))
        return timer


class WindowedRecorder:
    """Time-sliced throughput/latency: fixed-width windows, bounded memory.

    The degradation/recovery instrumentation behind the "standard storm"
    figure: commits are bucketed into fixed-width time windows (per-window
    count + latency sum), so a run's throughput time series — the dip when a
    fault lands and the climb back after recovery — survives into the
    :class:`RunMetrics` JSON round trip.

    Memory is bounded: when a recording would exceed ``max_windows`` windows,
    the window width *doubles* (adjacent windows merge pairwise), so an
    arbitrarily long run costs O(``max_windows``) floats at correspondingly
    coarser resolution.  No totals are ever dropped.

    Analysis accessors (used by :class:`~repro.cluster.results.RunResult`):

    * :meth:`degradation_depth` — ``1 - min_window / median_window`` over the
      completed windows, i.e. how deep the worst dip cut relative to the
      run's typical throughput (0.0 = no dip, 1.0 = a full stall);
    * :meth:`time_to_recovery_us` — time from the worst window to the first
      later window back at ``threshold`` × the median (``None`` = never
      recovered within the run).
    """

    __slots__ = ("window_us", "origin_us", "max_windows", "_counts",
                 "_latency_counts", "_latency_sums")

    def __init__(self, window_us: float = 1_000.0, origin_us: float = 0.0,
                 max_windows: int = 512):
        if window_us <= 0:
            raise ValueError(f"window_us must be > 0, got {window_us}")
        if max_windows < 2:
            raise ValueError(f"max_windows must be >= 2, got {max_windows}")
        self.window_us = float(window_us)
        self.origin_us = float(origin_us)
        self.max_windows = int(max_windows)
        self._counts: list[int] = []
        # Latency is tracked separately from the throughput counts: under
        # group-commit durability a committed transaction's latency is only
        # known when the batch resolves, and a crash can leave commits whose
        # durability never resolves within the run — the throughput series
        # must not lose those windows.
        self._latency_counts: list[int] = []
        self._latency_sums: list[float] = []

    def _coarsen(self) -> None:
        """Double the window width, merging adjacent windows pairwise."""
        merged = []
        for series, pad in ((self._counts, 0), (self._latency_counts, 0),
                            (self._latency_sums, 0.0)):
            if len(series) % 2:
                series.append(pad)
            merged.append(
                [series[i] + series[i + 1] for i in range(0, len(series), 2)]
            )
        self._counts, self._latency_counts, self._latency_sums = merged
        self.window_us *= 2.0

    def _index_for(self, time_us: float) -> int:
        """Window index for a timestamp, coarsening to stay within bounds."""
        index = int((time_us - self.origin_us) / self.window_us)
        if index < 0:
            index = 0
        while index >= self.max_windows:
            self._coarsen()
            index = int((time_us - self.origin_us) / self.window_us)
        counts = self._counts
        if index >= len(counts):
            grow = index + 1 - len(counts)
            counts.extend([0] * grow)
            self._latency_counts.extend([0] * grow)
            self._latency_sums.extend([0.0] * grow)
        return index

    def record(self, time_us: float) -> None:
        """Count one completion (a commit) in the window of ``time_us``."""
        # Resolve the index *before* touching the list: _index_for may
        # coarsen, which rebinds the series to freshly merged lists.
        index = self._index_for(time_us)
        self._counts[index] += 1

    def unrecord(self, time_us: float) -> None:
        """Undo one :meth:`record` (a counted commit rolled back by a crash)."""
        index = self._index_for(time_us)
        self._counts[index] -= 1

    def record_latency(self, time_us: float, latency_us: float) -> None:
        """Attribute one resolved end-to-end latency to ``time_us``'s window."""
        index = self._index_for(time_us)
        self._latency_counts[index] += 1
        self._latency_sums[index] += latency_us

    # -- series accessors --------------------------------------------------
    @property
    def windows(self) -> int:
        return len(self._counts)

    @property
    def total_count(self) -> int:
        return sum(self._counts)

    def counts(self) -> list[int]:
        return list(self._counts)

    def throughput_tps(self) -> list[float]:
        scale = 1_000_000.0 / self.window_us
        return [count * scale for count in self._counts]

    def mean_latency_us(self) -> list[float]:
        return [
            (total / count) if count else 0.0
            for count, total in zip(self._latency_counts, self._latency_sums)
        ]

    # -- recovery analysis -------------------------------------------------
    def _completed_counts(self) -> list[int]:
        """Windows up to the last one that saw traffic (the final window is a
        partial slice of the post-measurement drain; trailing silence after
        it is not a 'dip', it is the end of the run)."""
        counts = self._counts
        end = len(counts)
        while end > 0 and counts[end - 1] == 0:
            end -= 1
        return counts[:end]

    def degradation_depth(self) -> float:
        """``1 - min/median`` over completed windows, clamped to [0, 1]."""
        counts = self._completed_counts()
        if len(counts) < 2:
            return 0.0
        baseline = median(counts)
        if baseline <= 0:
            return 0.0
        return min(1.0, max(0.0, 1.0 - min(counts) / baseline))

    def time_to_recovery_us(self, threshold: float = 0.9) -> "float | None":
        """Time from the worst window back to ``threshold`` × the median.

        0.0 when the run never dipped below the threshold; ``None`` when it
        dipped and never came back within the recorded windows.
        """
        counts = self._completed_counts()
        if len(counts) < 2:
            return 0.0
        baseline = median(counts)
        if baseline <= 0:
            return 0.0
        bar = threshold * baseline
        trough = counts.index(min(counts))
        if counts[trough] >= bar:
            return 0.0
        for index in range(trough + 1, len(counts)):
            if counts[index] >= bar:
                return (index - trough) * self.window_us
        return None

    # -- merge / JSON round trip --------------------------------------------
    def merge(self, other: "WindowedRecorder") -> None:
        """Fold another recorder in (same origin; widths that diverged only by
        the power-of-two coarsening are re-aligned by coarsening the finer)."""
        if other.origin_us != self.origin_us:
            raise ValueError(
                f"cannot merge recorders with different origins "
                f"({self.origin_us} vs {other.origin_us})"
            )
        wide, narrow = (self, other) if self.window_us >= other.window_us else (other, self)
        ratio = wide.window_us / narrow.window_us
        if ratio != int(ratio) or (int(ratio) & (int(ratio) - 1)):
            if ratio != 1.0:
                raise ValueError(
                    f"cannot merge recorders with incompatible widths "
                    f"({self.window_us} vs {other.window_us})"
                )
        while self.window_us < other.window_us:
            self._coarsen()
        source = other
        if other.window_us < self.window_us:
            clone = WindowedRecorder.from_json_dict(other.to_json_dict())
            while clone.window_us < self.window_us:
                clone._coarsen()
            source = clone
        counts = self._counts
        latency_counts = self._latency_counts
        sums = self._latency_sums
        if len(source._counts) > len(counts):
            grow = len(source._counts) - len(counts)
            counts.extend([0] * grow)
            latency_counts.extend([0] * grow)
            sums.extend([0.0] * grow)
        for index, count in enumerate(source._counts):
            counts[index] += count
            latency_counts[index] += source._latency_counts[index]
            sums[index] += source._latency_sums[index]

    def to_json_dict(self) -> dict:
        return {
            "window_us": self.window_us,
            "origin_us": self.origin_us,
            "max_windows": self.max_windows,
            "counts": list(self._counts),
            "latency_counts": list(self._latency_counts),
            "latency_sums": list(self._latency_sums),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "WindowedRecorder":
        recorder = cls(
            window_us=float(data["window_us"]),
            origin_us=float(data.get("origin_us", 0.0)),
            max_windows=int(data.get("max_windows", 512)),
        )
        recorder._counts = [int(v) for v in data.get("counts", ())]
        recorder._latency_counts = [int(v) for v in data.get("latency_counts", ())]
        recorder._latency_sums = [float(v) for v in data.get("latency_sums", ())]
        # The three series are kept index-aligned everywhere; repair documents
        # that carried fewer latency windows than count windows.
        for series, pad in ((recorder._latency_counts, 0),
                            (recorder._latency_sums, 0.0)):
            if len(series) < len(recorder._counts):
                series.extend([pad] * (len(recorder._counts) - len(series)))
        return recorder


class RunMetrics:
    """Everything a single simulated run reports back to the harness."""

    __slots__ = (
        "duration_us",
        "committed",
        "aborted",
        "crash_aborted",
        "counters",
        "latency",
        "breakdown",
        "timeline",
    )

    def __init__(
        self,
        duration_us: float = 0.0,
        committed: int = 0,
        aborted: int = 0,
        crash_aborted: int = 0,
        counters: Counter | None = None,
        latency: LatencyRecorder | None = None,
        breakdown: BreakdownTimer | None = None,
        timeline: WindowedRecorder | None = None,
    ):
        self.duration_us = duration_us
        self.committed = committed
        self.aborted = aborted
        self.crash_aborted = crash_aborted
        self.counters = counters if counters is not None else Counter()
        self.latency = latency if latency is not None else LatencyRecorder()
        self.breakdown = breakdown if breakdown is not None else BreakdownTimer()
        # Optional windowed throughput/latency time series; only fault-plan
        # runs record one (see Cluster), so fault-free result documents are
        # byte-identical to their pre-timeline form.
        self.timeline = timeline

    @property
    def throughput_tps(self) -> float:
        """Committed transactions per (simulated) second."""
        if self.duration_us <= 0:
            return 0.0
        return self.committed / (self.duration_us / 1_000_000.0)

    @property
    def throughput_ktps(self) -> float:
        return self.throughput_tps / 1000.0

    @property
    def abort_rate(self) -> float:
        """Fraction of transaction *attempts* that aborted."""
        attempts = self.committed + self.aborted
        if attempts == 0:
            return 0.0
        return self.aborted / attempts

    @property
    def crash_abort_rate(self) -> float:
        total = self.committed + self.crash_aborted
        if total == 0:
            return 0.0
        return self.crash_aborted / total

    @property
    def mean_latency_ms(self) -> float:
        return self.latency.mean / 1000.0

    @property
    def p50_latency_ms(self) -> float:
        return self.latency.p50 / 1000.0

    @property
    def p99_latency_ms(self) -> float:
        return self.latency.p99 / 1000.0

    @property
    def p999_latency_ms(self) -> float:
        return self.latency.p999 / 1000.0

    def summary(self) -> dict:
        """Flat dictionary used by the bench report printers."""
        return {
            "throughput_ktps": self.throughput_ktps,
            "committed": self.committed,
            "aborted": self.aborted,
            "abort_rate": self.abort_rate,
            "crash_abort_rate": self.crash_abort_rate,
            "mean_latency_ms": self.mean_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "breakdown_us": self.breakdown.per_transaction(),
        }

    def to_json_dict(self) -> dict:
        """Lossless JSON form (inverse of :meth:`from_json_dict`).

        Unlike :meth:`summary` this keeps the raw latency samples and counter
        values, so a deserialized ``RunMetrics`` reports byte-identical
        statistics — the property the orchestrator's on-disk cache relies on.
        Sketched recorders (runs past ``SKETCH_THRESHOLD`` samples) serialize
        the bounded-size sketch under ``latency_sketch`` instead of raw
        samples, keeping document size independent of transaction count.
        """
        data = {
            "duration_us": self.duration_us,
            "committed": self.committed,
            "aborted": self.aborted,
            "crash_aborted": self.crash_aborted,
            "counters": self.counters.as_dict(),
            "breakdown": self.breakdown.to_json_dict(),
        }
        if self.latency.sketched:
            data["latency_sketch"] = self.latency.sketch.to_json_dict()
        else:
            data["latency_samples"] = self.latency.samples
        if self.timeline is not None:
            data["timeline"] = self.timeline.to_json_dict()
        return data

    @classmethod
    def from_json_dict(cls, data: dict) -> "RunMetrics":
        sketch_doc = data.get("latency_sketch")
        if sketch_doc is not None:
            latency = LatencyRecorder.from_sketch(
                LatencySketch.from_json_dict(sketch_doc)
            )
        else:
            latency = LatencyRecorder.from_samples(data.get("latency_samples", []))
        timeline_doc = data.get("timeline")
        return cls(
            duration_us=float(data["duration_us"]),
            committed=int(data["committed"]),
            aborted=int(data["aborted"]),
            crash_aborted=int(data.get("crash_aborted", 0)),
            counters=Counter.from_dict(data.get("counters", {})),
            latency=latency,
            breakdown=BreakdownTimer.from_json_dict(data.get("breakdown", {})),
            timeline=(WindowedRecorder.from_json_dict(timeline_doc)
                      if timeline_doc is not None else None),
        )
