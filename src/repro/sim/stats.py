"""Measurement utilities: counters, latency recorders and breakdown timers.

The paper's evaluation reports throughput (committed transactions / second),
average and 99th-percentile latency, abort rates, and a latency *breakdown*
into components (execute, 2PC, timestamp, commit, backoff, return, wait_batch,
sequence — Figs. 4c/5c).  These classes collect exactly those quantities.

Hot-path notes: every committed transaction touches these classes several
times, so recording is kept allocation-free.

* :class:`Counter` is slotted and increments through a plain dict (no
  ``defaultdict`` factory call per new key).
* :class:`LatencyRecorder` appends to a C-backed ``array('d')`` and sorts
  on demand: the sorted view is computed once and cached until the next
  append invalidates it, so ``p50``/``p99``/``max`` after a run each cost a
  cached lookup instead of a fresh full sort.  Above ``SKETCH_THRESHOLD``
  samples it folds everything into a fixed-memory
  :class:`~repro.sim.sketch.LatencySketch` and stops retaining raw samples —
  million-transaction runs (the ``xlarge``/``web`` tiers) keep O(buckets)
  memory and serialize to bounded JSON.  The threshold sits far above every
  committed golden run's sample count, so all pre-existing fixed-seed
  goldens take the exact path bit-identically.
* :class:`BreakdownTimer` interns component names once (module-level id
  table seeded with the paper's components) and accumulates into a flat
  float list indexed by component id — ``add()`` on the commit path is two
  list operations, not a dict hash + resize.

All three merge order-independently (the pool orchestrator merges shards in
arbitrary completion order); ``tests/sim/test_stats.py`` pins that property.
"""

from __future__ import annotations

from array import array
from typing import Iterable

from .sketch import LatencySketch

__all__ = [
    "Counter",
    "LatencyRecorder",
    "BreakdownTimer",
    "RunMetrics",
    "BREAKDOWN_COMPONENTS",
    "SKETCH_THRESHOLD",
]

#: Sample count beyond which a LatencyRecorder folds into a LatencySketch.
#: Deliberately far above the sample counts of every committed fixed-seed
#: golden (tiny→paper scales stay exact); only the xlarge/web tiers cross it.
SKETCH_THRESHOLD = 100_000

# Latency components reported in the paper's breakdown figures.
BREAKDOWN_COMPONENTS = (
    "execute",
    "2pc",
    "timestamp",
    "commit",
    "backoff",
    "return",
    "wait_batch",
    "sequence",
)

# Component name -> slot index, shared by every BreakdownTimer.  Seeded with
# the paper's components; unknown components are interned on first use (the
# table only ever grows, so existing indices stay valid and timers merged
# across processes agree on the seeded prefix).
_COMPONENT_IDS: dict[str, int] = {
    name: i for i, name in enumerate(BREAKDOWN_COMPONENTS)
}


def _component_id(component: str) -> int:
    ids = _COMPONENT_IDS
    idx = ids.get(component)
    if idx is None:
        ids[component] = idx = len(ids)
    return idx


class Counter:
    """Named integer counters."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        counts = self._counts
        counts[name] = counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    @classmethod
    def from_dict(cls, counts: dict) -> "Counter":
        counter = cls()
        for name, value in counts.items():
            counter._counts[name] = int(value)
        return counter

    def merge(self, other: "Counter") -> None:
        counts = self._counts
        for name, value in other._counts.items():
            counts[name] = counts.get(name, 0) + value


class LatencyRecorder:
    """Collects latency samples and reports mean / percentiles.

    Exact (every sample retained, nearest-rank percentiles) up to
    ``SKETCH_THRESHOLD`` samples; beyond that the samples fold into a
    fixed-memory :class:`LatencySketch` (bucket-resolution-exact percentiles,
    sample-exact mean/max) so memory and serialized size stop growing with
    run length.  ``sketched`` reports which regime the recorder is in.
    """

    __slots__ = ("_samples", "_sorted", "_sketch")

    def __init__(self) -> None:
        self._samples: array = array("d")
        # Cached ascending view; invalidated by every append/extend so the
        # sort runs once per batch of percentile queries, not once per query.
        self._sorted: array | None = None
        self._sketch: LatencySketch | None = None

    def _fold_into_sketch(self) -> None:
        sketch = LatencySketch()
        sketch.extend(self._samples)
        self._sketch = sketch
        self._samples = array("d")
        self._sorted = None

    def record(self, latency: float) -> None:
        sketch = self._sketch
        if sketch is not None:
            sketch.record(latency)
            return
        self._samples.append(latency)
        self._sorted = None
        if len(self._samples) > SKETCH_THRESHOLD:
            self._fold_into_sketch()

    def extend(self, samples: Iterable[float]) -> None:
        sketch = self._sketch
        if sketch is not None:
            sketch.extend(samples)
            return
        self._samples.extend(samples)
        self._sorted = None
        if len(self._samples) > SKETCH_THRESHOLD:
            self._fold_into_sketch()

    def _ordered(self) -> array:
        ordered = self._sorted
        if ordered is None:
            ordered = array("d", sorted(self._samples))
            self._sorted = ordered
        return ordered

    @property
    def sketched(self) -> bool:
        """True once the recorder has folded into the fixed-memory sketch."""
        return self._sketch is not None

    @property
    def count(self) -> int:
        if self._sketch is not None:
            return self._sketch.count
        return len(self._samples)

    @property
    def mean(self) -> float:
        if self._sketch is not None:
            return self._sketch.mean
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile (pct in [0, 100])."""
        if self._sketch is not None:
            return self._sketch.percentile(pct)
        if not self._samples:
            return 0.0
        ordered = self._ordered()
        if pct <= 0:
            return ordered[0]
        if pct >= 100:
            return ordered[-1]
        rank = max(0, min(len(ordered) - 1, int(round(pct / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def p999(self) -> float:
        """99.9th percentile — the tail the open-loop load curves report."""
        return self.percentile(99.9)

    @property
    def max(self) -> float:
        if self._sketch is not None:
            return self._sketch.max
        if not self._samples:
            return 0.0
        return self._ordered()[-1]

    @property
    def samples(self) -> list[float]:
        """The raw samples in recording order (used for serialization).

        Only available in the exact regime; a sketched recorder no longer
        holds raw samples — serialize via :attr:`sketch` instead.
        """
        if self._sketch is not None:
            raise ValueError(
                "recorder folded into a sketch; raw samples are gone "
                "(serialize the sketch instead)"
            )
        return list(self._samples)

    @property
    def sketch(self) -> LatencySketch:
        """The fixed-memory sketch (only once :attr:`sketched` is True)."""
        if self._sketch is None:
            raise ValueError("recorder still holds exact samples, not a sketch")
        return self._sketch

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "LatencyRecorder":
        recorder = cls()
        recorder._samples = array("d", (float(s) for s in samples))
        if len(recorder._samples) > SKETCH_THRESHOLD:
            recorder._fold_into_sketch()
        return recorder

    @classmethod
    def from_sketch(cls, sketch: LatencySketch) -> "LatencyRecorder":
        recorder = cls()
        recorder._sketch = sketch
        return recorder


class BreakdownTimer:
    """Accumulates per-component time for the latency-breakdown figures."""

    __slots__ = ("_totals", "_txn_count")

    def __init__(self) -> None:
        # Flat accumulator indexed by the interned component id; grown on
        # demand when a not-yet-seen component is recorded.
        self._totals: list[float] = [0.0] * len(BREAKDOWN_COMPONENTS)
        self._txn_count = 0

    def add(self, component: str, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative duration for {component}: {duration}")
        idx = _COMPONENT_IDS.get(component)
        if idx is None:
            idx = _component_id(component)
        totals = self._totals
        if idx >= len(totals):
            totals.extend([0.0] * (idx + 1 - len(totals)))
        totals[idx] += duration

    def finish_transaction(self) -> None:
        """Mark that one transaction's breakdown has been fully recorded."""
        self._txn_count += 1

    def merge(self, other: "BreakdownTimer") -> None:
        totals = self._totals
        other_totals = other._totals
        if len(other_totals) > len(totals):
            totals.extend([0.0] * (len(other_totals) - len(totals)))
        for idx, value in enumerate(other_totals):
            totals[idx] += value
        self._txn_count += other._txn_count

    def total(self, component: str) -> float:
        idx = _COMPONENT_IDS.get(component)
        if idx is None or idx >= len(self._totals):
            return 0.0
        return self._totals[idx]

    def per_transaction(self) -> dict[str, float]:
        """Average time per committed transaction for each component."""
        if self._txn_count == 0:
            return {component: 0.0 for component in BREAKDOWN_COMPONENTS}
        return {
            component: self.total(component) / self._txn_count
            for component in BREAKDOWN_COMPONENTS
        }

    def _named_totals(self) -> dict[str, float]:
        """Non-zero totals keyed by component name (serialization view)."""
        totals = self._totals
        return {
            name: totals[idx]
            for name, idx in _COMPONENT_IDS.items()
            if idx < len(totals) and totals[idx] != 0.0
        }

    def to_json_dict(self) -> dict:
        return {"totals": self._named_totals(), "txn_count": self._txn_count}

    @classmethod
    def from_json_dict(cls, data: dict) -> "BreakdownTimer":
        timer = cls()
        for component, value in data.get("totals", {}).items():
            timer.add(component, 0.0)  # intern + size the slot
            timer._totals[_COMPONENT_IDS[component]] = float(value)
        timer._txn_count = int(data.get("txn_count", 0))
        return timer


class RunMetrics:
    """Everything a single simulated run reports back to the harness."""

    __slots__ = (
        "duration_us",
        "committed",
        "aborted",
        "crash_aborted",
        "counters",
        "latency",
        "breakdown",
    )

    def __init__(
        self,
        duration_us: float = 0.0,
        committed: int = 0,
        aborted: int = 0,
        crash_aborted: int = 0,
        counters: Counter | None = None,
        latency: LatencyRecorder | None = None,
        breakdown: BreakdownTimer | None = None,
    ):
        self.duration_us = duration_us
        self.committed = committed
        self.aborted = aborted
        self.crash_aborted = crash_aborted
        self.counters = counters if counters is not None else Counter()
        self.latency = latency if latency is not None else LatencyRecorder()
        self.breakdown = breakdown if breakdown is not None else BreakdownTimer()

    @property
    def throughput_tps(self) -> float:
        """Committed transactions per (simulated) second."""
        if self.duration_us <= 0:
            return 0.0
        return self.committed / (self.duration_us / 1_000_000.0)

    @property
    def throughput_ktps(self) -> float:
        return self.throughput_tps / 1000.0

    @property
    def abort_rate(self) -> float:
        """Fraction of transaction *attempts* that aborted."""
        attempts = self.committed + self.aborted
        if attempts == 0:
            return 0.0
        return self.aborted / attempts

    @property
    def crash_abort_rate(self) -> float:
        total = self.committed + self.crash_aborted
        if total == 0:
            return 0.0
        return self.crash_aborted / total

    @property
    def mean_latency_ms(self) -> float:
        return self.latency.mean / 1000.0

    @property
    def p50_latency_ms(self) -> float:
        return self.latency.p50 / 1000.0

    @property
    def p99_latency_ms(self) -> float:
        return self.latency.p99 / 1000.0

    @property
    def p999_latency_ms(self) -> float:
        return self.latency.p999 / 1000.0

    def summary(self) -> dict:
        """Flat dictionary used by the bench report printers."""
        return {
            "throughput_ktps": self.throughput_ktps,
            "committed": self.committed,
            "aborted": self.aborted,
            "abort_rate": self.abort_rate,
            "crash_abort_rate": self.crash_abort_rate,
            "mean_latency_ms": self.mean_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "breakdown_us": self.breakdown.per_transaction(),
        }

    def to_json_dict(self) -> dict:
        """Lossless JSON form (inverse of :meth:`from_json_dict`).

        Unlike :meth:`summary` this keeps the raw latency samples and counter
        values, so a deserialized ``RunMetrics`` reports byte-identical
        statistics — the property the orchestrator's on-disk cache relies on.
        Sketched recorders (runs past ``SKETCH_THRESHOLD`` samples) serialize
        the bounded-size sketch under ``latency_sketch`` instead of raw
        samples, keeping document size independent of transaction count.
        """
        data = {
            "duration_us": self.duration_us,
            "committed": self.committed,
            "aborted": self.aborted,
            "crash_aborted": self.crash_aborted,
            "counters": self.counters.as_dict(),
            "breakdown": self.breakdown.to_json_dict(),
        }
        if self.latency.sketched:
            data["latency_sketch"] = self.latency.sketch.to_json_dict()
        else:
            data["latency_samples"] = self.latency.samples
        return data

    @classmethod
    def from_json_dict(cls, data: dict) -> "RunMetrics":
        sketch_doc = data.get("latency_sketch")
        if sketch_doc is not None:
            latency = LatencyRecorder.from_sketch(
                LatencySketch.from_json_dict(sketch_doc)
            )
        else:
            latency = LatencyRecorder.from_samples(data.get("latency_samples", []))
        return cls(
            duration_us=float(data["duration_us"]),
            committed=int(data["committed"]),
            aborted=int(data["aborted"]),
            crash_aborted=int(data.get("crash_aborted", 0)),
            counters=Counter.from_dict(data.get("counters", {})),
            latency=latency,
            breakdown=BreakdownTimer.from_json_dict(data.get("breakdown", {})),
        )
