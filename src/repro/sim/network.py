"""Simulated cluster network.

Models point-to-point messaging between partition servers with a configurable
one-way latency.  Two primitives are provided:

* :meth:`Network.rpc` — request/response; the handler runs at the destination
  after one one-way latency, and its return value arrives back at the caller
  after another one-way latency.  Handlers may be plain callables or
  simulation generators (so remote handlers can themselves wait for locks,
  other RPCs, log flushes, ...).
* :meth:`Network.send` — one-way, fire-and-forget message.

The network also supports targeted fault/latency injection, which the
benchmark harness uses for the "watermark lagging" experiment (Fig. 13a) and
for crash experiments (messages to a crashed node are dropped).

Hot-path notes: every transaction sends a handful of messages, so delivery
avoids per-message allocations where it can.  The latency lookup skips the
injected-delay dictionaries entirely while no fault injection is configured,
handlers are classified as generator/plain once per handler code object
(C-level callables classify for free — they can never be generator
functions), and one-way sends of plain handlers are carried end to end by a
single slotted, self-rescheduling :class:`_OneWaySend` event: no
:class:`Process`, no generator frame, no :class:`Timeout` and no closure
pair per message, with FIFO delivery order preserved bit-for-bit.
"""

from __future__ import annotations

import inspect
from collections import Counter
from dataclasses import dataclass, field
from heapq import heappush
from types import BuiltinFunctionType, GeneratorType, MethodWrapperType
from typing import Any, Callable, Generator, Optional

# Callables implemented in C: no code object, cannot be generator functions.
_C_CALLABLE_TYPES = (BuiltinFunctionType, MethodWrapperType)

from .engine import Environment, Event, Timeout

__all__ = ["Network", "NetworkStats", "NodeUnreachable"]


class NodeUnreachable(Exception):
    """Raised at the caller when an RPC destination is crashed/partitioned."""

    def __init__(self, node_id: int):
        super().__init__(f"node {node_id} is unreachable")
        self.node_id = node_id


@dataclass(slots=True)
class NetworkStats:
    """Aggregate message counters, used by tests and the bench report.

    Slotted: the per-message counter bumps are plain integer-attribute
    stores, not instance-dict writes.
    """

    messages_sent: int = 0
    rpc_calls: int = 0
    one_way_messages: int = 0
    bytes_hint: int = 0
    dropped: int = 0
    per_destination: Counter = field(default_factory=Counter)

    def reset(self) -> None:
        """Zero every counter (the bench harness calls this after warmup)."""
        self.messages_sent = 0
        self.rpc_calls = 0
        self.one_way_messages = 0
        self.bytes_hint = 0
        self.dropped = 0
        self.per_destination.clear()


class _OneWaySend(Event):
    """A one-way plain-handler delivery, allocated once per message.

    The event object *is* both scheduling hops of the delivery:

    1. born on the fast lane (same dispatch point at which the old
       process-based path kicked off its generator), so the delivery delay's
       sequence number is drawn exactly where it always was — FIFO order
       among same-timestamp deliveries is preserved bit-for-bit;
    2. when the fast-lane hop fires, the event *reschedules itself* for the
       one-way latency (fast lane again for zero-delay, heap otherwise) —
       no :class:`Timeout`, no closure pair, no cell variables;
    3. when the second hop fires, the handler runs at the destination.

    The latency is read at dispatch time of the first hop (not at ``send()``
    call time) so a fault injected by an earlier-sequenced event at the same
    timestamp is observed exactly as the old path observed it.
    """

    __slots__ = ("_network", "_src", "_dst", "_handler", "_args", "_kwargs",
                 "_in_flight")

    def __init__(self, network: "Network", src: int, dst: int,
                 handler: Callable[..., Any], args: tuple, kwargs: dict):
        env = network.env
        self.env = env
        self._network = network
        self._src = src
        self._dst = dst
        self._handler = handler
        self._args = args
        self._kwargs = kwargs
        self._value = None
        self._ok = True
        self._in_flight = False
        # The dispatch callback is one shared module-level function (the
        # dispatcher hands it the event, which *is* this op) — no bound
        # method and no closure allocated per message.
        self.callbacks = _dispatch_one_way_send
        self._seq = env._next_seq()
        env._fast_append(self)


def _dispatch_one_way_send(op: "_OneWaySend") -> None:
    """Dispatcher callback for both hops of a :class:`_OneWaySend`."""
    network = op._network
    env = op.env
    if not op._in_flight:
        # Hop 1: departure.  Read the latency now (it may have changed
        # since send() was called) and reschedule the op as the delivery.
        op._in_flight = True
        src = op._src
        dst = op._dst
        if network._faults_active or network._topology is not None:
            delay = network.latency(src, dst)
        elif src == dst:
            delay = network.local_latency_us
        else:
            delay = network.one_way_latency_us
        op.callbacks = _dispatch_one_way_send
        if delay == 0.0:
            op._seq = env._next_seq()
            env._fast_append(op)
        else:
            heappush(env._queue, (env._now + delay, env._next_seq(), op))
        return
    # Hop 2: arrival.
    if op._dst in network._unreachable:
        network.stats.dropped += 1
        op._handler = op._args = op._kwargs = None
        return
    handler, args, kwargs = op._handler, op._args, op._kwargs
    # Drop the payload references so the delivered message is reclaimed by
    # refcount, not the cycle GC.
    op._handler = op._args = op._kwargs = None
    result = handler(*args, **kwargs)
    if type(result) is GeneratorType:
        # Misclassified exotic callable: drive it as a process after all.
        env.process(result, name=f"send:{op._src}->{op._dst}")


class Network:
    """Point-to-point message fabric between numbered nodes."""

    def __init__(
        self,
        env: Environment,
        one_way_latency_us: float = 50.0,
        local_latency_us: float = 0.2,
    ):
        self.env = env
        self.one_way_latency_us = float(one_way_latency_us)
        self.local_latency_us = float(local_latency_us)
        self.stats = NetworkStats()
        # Extra one-way delay injected on messages *from* a given node
        # (used to lag a partition's watermark/epoch messages, Fig. 13a).
        self._extra_delay_from: dict[int, float] = {}
        # Extra one-way delay on messages *to* a given node.
        self._extra_delay_to: dict[int, float] = {}
        self._unreachable: set[int] = set()
        # True iff any injection above is configured; the latency fast path
        # keys off this single flag.
        self._faults_active = False
        # Optional geo topology (install_topology): node id -> region index
        # plus the region×region one-way latency matrix.  ``None`` keeps the
        # scalar fast path bit-identical.
        self._topology: Optional[tuple] = None
        self._node_region: dict[int, int] = {}
        # handler code object -> returns-a-generator flag (see
        # _handler_returns_generator); bounded by the number of def sites.
        self._gen_handlers: dict = {}

    # -- fault / delay injection ----------------------------------------
    def _refresh_fault_flag(self) -> None:
        self._faults_active = bool(
            self._extra_delay_from or self._extra_delay_to or self._unreachable
        )

    def set_extra_delay_from(self, node_id: int, delay_us: float) -> None:
        """Add ``delay_us`` to every message originating at ``node_id``.

        A zero delay clears the injection (fault windows revert through here),
        so the no-faults latency fast path re-engages once nothing is injected.
        """
        if delay_us:
            self._extra_delay_from[node_id] = float(delay_us)
        else:
            self._extra_delay_from.pop(node_id, None)
        self._refresh_fault_flag()

    def set_extra_delay_to(self, node_id: int, delay_us: float) -> None:
        """Add ``delay_us`` to every message destined to ``node_id`` (0 clears)."""
        if delay_us:
            self._extra_delay_to[node_id] = float(delay_us)
        else:
            self._extra_delay_to.pop(node_id, None)
        self._refresh_fault_flag()

    def set_unreachable(self, node_id: int, unreachable: bool = True) -> None:
        """Mark a node as crashed: messages to it are dropped, RPCs fail."""
        if unreachable:
            self._unreachable.add(node_id)
        else:
            self._unreachable.discard(node_id)
        self._refresh_fault_flag()

    def is_unreachable(self, node_id: int) -> bool:
        return node_id in self._unreachable

    # -- geo topology -----------------------------------------------------
    def install_topology(self, node_region: dict, latency_matrix) -> None:
        """Replace the scalar base latency with a region-matrix lookup.

        ``node_region`` maps node ids to region indices into
        ``latency_matrix`` (rows/columns in region order).  Nodes absent from
        the map fall back to the scalar one-way latency; the same-node case
        always stays local.  Injected fault delays stack on top of the
        topology base, exactly as they stack on the scalar base.
        """
        self._node_region = dict(node_region)
        self._topology = tuple(tuple(float(v) for v in row) for row in latency_matrix)

    def _topology_latency(self, src: int, dst: int) -> float:
        """Base one-way latency under the installed region matrix."""
        if src == dst:
            return self.local_latency_us
        node_region = self._node_region
        src_region = node_region.get(src)
        dst_region = node_region.get(dst)
        if src_region is None or dst_region is None:
            return self.one_way_latency_us
        return self._topology[src_region][dst_region]

    # -- latency model ---------------------------------------------------
    def latency(self, src: int, dst: int) -> float:
        """One-way latency from ``src`` to ``dst`` including injected delays."""
        if not self._faults_active:
            if self._topology is None:
                return self.local_latency_us if src == dst else self.one_way_latency_us
            return self._topology_latency(src, dst)
        if self._topology is None:
            base = self.local_latency_us if src == dst else self.one_way_latency_us
        else:
            base = self._topology_latency(src, dst)
        return (
            base
            + self._extra_delay_from.get(src, 0.0)
            + self._extra_delay_to.get(dst, 0.0)
        )

    # -- handler classification -------------------------------------------
    def _handler_returns_generator(self, handler: Callable[..., Any]) -> bool:
        """Classify a handler once per *def site*; delivery trusts the flag.

        The cache is keyed by the handler's code object, not the handler:
        protocols pass a fresh closure per message, so keying by the callable
        would never hit and would pin every closure (and its captured
        transaction state) for the life of the network.  Whether a function
        is a generator function is a property of its code object, so this is
        both bounded (one entry per ``def``) and stable.  Plain functions and
        bound methods both expose ``__code__`` through one attribute lookup;
        C-level callables (built-in functions/methods like ``list.append``)
        have no code object and can never be Python generator functions, so
        they classify as plain without the (uncached, per-message)
        ``inspect`` round trip.  Other exotic callables fall back to an
        uncached check, and delivery re-checks the actual result type, so a
        misclassification can never drop a generator on the floor.
        """
        if type(handler) in _C_CALLABLE_TYPES:
            # Built-in function/method: no code object, cannot be a Python
            # generator function — and skipping the getattr below avoids an
            # internally raised-and-caught AttributeError per message.
            return False
        code = getattr(handler, "__code__", None)
        if code is None:
            return bool(inspect.isgeneratorfunction(handler))
        cache = self._gen_handlers
        flag = cache.get(code)
        if flag is None:
            cache[code] = flag = bool(
                inspect.isgeneratorfunction(getattr(handler, "__func__", handler))
            )
        return flag

    # -- messaging primitives ---------------------------------------------
    def rpc(
        self,
        src: int,
        dst: int,
        handler: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> Generator[Event, Any, Any]:
        """Request/response round trip; generator to be driven with ``yield from``."""
        stats = self.stats
        stats.messages_sent += 1
        stats.rpc_calls += 1
        stats.per_destination[dst] += 1
        env = self.env
        unreachable = self._unreachable
        if dst in unreachable:
            stats.dropped += 1
            # The caller notices the failure after a timeout-ish delay.
            yield Timeout(env, self.latency(src, dst) * 2)
            raise NodeUnreachable(dst)
        yield Timeout(env, self.latency(src, dst))
        result = handler(*args, **kwargs)
        if self._handler_returns_generator(handler) or type(result) is GeneratorType:
            result = yield from result
        if dst in unreachable:
            # Crashed while processing: response is lost.
            stats.dropped += 1
            yield Timeout(env, self.latency(dst, src))
            raise NodeUnreachable(dst)
        yield Timeout(env, self.latency(dst, src))
        return result

    def send(
        self,
        src: int,
        dst: int,
        handler: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> None:
        """One-way message: schedule ``handler`` at the destination, don't wait."""
        stats = self.stats
        stats.messages_sent += 1
        stats.one_way_messages += 1
        stats.per_destination[dst] += 1
        unreachable = self._unreachable
        if dst in unreachable:
            stats.dropped += 1
            return

        if self._handler_returns_generator(handler):
            self.env.process(
                self._deliver_generator(src, dst, handler, args, kwargs),
                name=f"send:{src}->{dst}",
            )
            return

        # Plain handler: one slotted self-rescheduling event carries the
        # whole delivery — no Process, no generator frame, no Timeout and no
        # closure pair per message (see _OneWaySend).
        _OneWaySend(self, src, dst, handler, args, kwargs)

    def _deliver_generator(self, src, dst, handler, args, kwargs) -> Generator:
        yield Timeout(self.env, self.latency(src, dst))
        if dst in self._unreachable:
            self.stats.dropped += 1
            return
        yield from handler(*args, **kwargs)

    def roundtrip_us(self, src: int, dst: int) -> float:
        """Convenience: full round-trip latency between two nodes."""
        return self.latency(src, dst) + self.latency(dst, src)
