"""Simulated cluster network.

Models point-to-point messaging between partition servers with a configurable
one-way latency.  Two primitives are provided:

* :meth:`Network.rpc` — request/response; the handler runs at the destination
  after one one-way latency, and its return value arrives back at the caller
  after another one-way latency.  Handlers may be plain callables or
  simulation generators (so remote handlers can themselves wait for locks,
  other RPCs, log flushes, ...).
* :meth:`Network.send` — one-way, fire-and-forget message.

The network also supports targeted fault/latency injection, which the
benchmark harness uses for the "watermark lagging" experiment (Fig. 13a) and
for crash experiments (messages to a crashed node are dropped).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from .engine import Environment, Event

__all__ = ["Network", "NetworkStats", "NodeUnreachable"]


class NodeUnreachable(Exception):
    """Raised at the caller when an RPC destination is crashed/partitioned."""

    def __init__(self, node_id: int):
        super().__init__(f"node {node_id} is unreachable")
        self.node_id = node_id


@dataclass
class NetworkStats:
    """Aggregate message counters, used by tests and the bench report."""

    messages_sent: int = 0
    rpc_calls: int = 0
    one_way_messages: int = 0
    bytes_hint: int = 0
    dropped: int = 0
    per_destination: dict = field(default_factory=dict)

    def record(self, dst: int, kind: str) -> None:
        self.messages_sent += 1
        if kind == "rpc":
            self.rpc_calls += 1
        else:
            self.one_way_messages += 1
        self.per_destination[dst] = self.per_destination.get(dst, 0) + 1


class Network:
    """Point-to-point message fabric between numbered nodes."""

    def __init__(
        self,
        env: Environment,
        one_way_latency_us: float = 50.0,
        local_latency_us: float = 0.2,
    ):
        self.env = env
        self.one_way_latency_us = float(one_way_latency_us)
        self.local_latency_us = float(local_latency_us)
        self.stats = NetworkStats()
        # Extra one-way delay injected on messages *from* a given node
        # (used to lag a partition's watermark/epoch messages, Fig. 13a).
        self._extra_delay_from: dict[int, float] = {}
        # Extra one-way delay on messages *to* a given node.
        self._extra_delay_to: dict[int, float] = {}
        self._unreachable: set[int] = set()

    # -- fault / delay injection ----------------------------------------
    def set_extra_delay_from(self, node_id: int, delay_us: float) -> None:
        """Add ``delay_us`` to every message originating at ``node_id``."""
        self._extra_delay_from[node_id] = float(delay_us)

    def set_extra_delay_to(self, node_id: int, delay_us: float) -> None:
        """Add ``delay_us`` to every message destined to ``node_id``."""
        self._extra_delay_to[node_id] = float(delay_us)

    def set_unreachable(self, node_id: int, unreachable: bool = True) -> None:
        """Mark a node as crashed: messages to it are dropped, RPCs fail."""
        if unreachable:
            self._unreachable.add(node_id)
        else:
            self._unreachable.discard(node_id)

    def is_unreachable(self, node_id: int) -> bool:
        return node_id in self._unreachable

    # -- latency model ---------------------------------------------------
    def latency(self, src: int, dst: int) -> float:
        """One-way latency from ``src`` to ``dst`` including injected delays."""
        if src == dst:
            base = self.local_latency_us
        else:
            base = self.one_way_latency_us
        return (
            base
            + self._extra_delay_from.get(src, 0.0)
            + self._extra_delay_to.get(dst, 0.0)
        )

    # -- messaging primitives ---------------------------------------------
    def rpc(
        self,
        src: int,
        dst: int,
        handler: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> Generator[Event, Any, Any]:
        """Request/response round trip; generator to be driven with ``yield from``."""
        self.stats.record(dst, "rpc")
        if dst in self._unreachable:
            self.stats.dropped += 1
            # The caller notices the failure after a timeout-ish delay.
            yield self.env.timeout(self.latency(src, dst) * 2)
            raise NodeUnreachable(dst)
        yield self.env.timeout(self.latency(src, dst))
        result = handler(*args, **kwargs)
        if inspect.isgenerator(result):
            result = yield from result
        if dst in self._unreachable:
            # Crashed while processing: response is lost.
            self.stats.dropped += 1
            yield self.env.timeout(self.latency(dst, src))
            raise NodeUnreachable(dst)
        yield self.env.timeout(self.latency(dst, src))
        return result

    def send(
        self,
        src: int,
        dst: int,
        handler: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> None:
        """One-way message: schedule ``handler`` at the destination, don't wait."""
        self.stats.record(dst, "one_way")
        if dst in self._unreachable:
            self.stats.dropped += 1
            return

        def deliver() -> Generator[Event, Any, None]:
            yield self.env.timeout(self.latency(src, dst))
            if dst in self._unreachable:
                self.stats.dropped += 1
                return
            result = handler(*args, **kwargs)
            if inspect.isgenerator(result):
                yield from result

        self.env.process(deliver(), name=f"send:{src}->{dst}")

    def roundtrip_us(self, src: int, dst: int) -> float:
        """Convenience: full round-trip latency between two nodes."""
        return self.latency(src, dst) + self.latency(dst, src)
