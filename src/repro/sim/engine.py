"""Discrete-event simulation engine: backend selector.

Two interchangeable scheduler kernels implement the same ``Environment`` /
``Event`` / ``Timeout`` / ``Process`` / ``BatchWakeup`` surface:

* :mod:`repro.sim._pykernel` — the pure-Python reference implementation.
  Always available; the semantics ground truth.
* ``repro.sim._ckernel`` — an optional C extension implementing the same
  kernel (heap + fast-lane merge with the shared sequence counter, zero-delay
  dispatch, timeout scheduling, the batched-wakeup fire loop) compiled
  best-effort at install time (``python scripts/build_ckernel.py``).

Selection happens once, at import, from the ``REPRO_ENGINE`` environment
variable:

* ``auto`` (default) — use the C kernel when it imports, otherwise fall back
  silently to pure Python;
* ``py`` — force the pure-Python kernel;
* ``c`` — require the C kernel; raise ``ImportError`` with the underlying
  build/import failure instead of silently falling back (CI uses this to
  assert the compiled backend actually loaded).

The selected backend's name is exported as :data:`ENGINE_BACKEND` (``"py"``
or ``"c"``).  Bit-identity between the kernels is a hard contract, not a
goal: both run the determinism goldens, the fixed-seed bench-gate rows and a
randomized differential test (``tests/sim/test_backend_parity.py``), so
callers never need to care which one is active — cache keys and recorded
metrics are backend-independent.

Everything outside this package imports the engine surface from here, never
from a kernel module directly.
"""

from __future__ import annotations

import os

from . import _pykernel
from ._pykernel import (  # noqa: F401 - shared, backend-independent surface
    Interrupt,
    SimulationError,
    _PENDING,
    _PROCESSED,
    all_of,
    any_of,
)

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "BatchWakeup",
    "Process",
    "SimulationError",
    "Interrupt",
    "ENGINE_BACKEND",
    "BACKENDS",
    "backend_status",
    "load_ckernel",
]

#: Names accepted by ``REPRO_ENGINE`` / ``python -m repro.bench --engine``.
BACKENDS = ("auto", "py", "c")

#: Why the C kernel failed to import (``None`` when it loaded or was never
#: requested).  Surfaced by ``python -m repro.bench --list engines``.
C_IMPORT_ERROR: str | None = None

_ckernel = None


def load_ckernel():
    """Import and configure the C kernel once; return the module or ``None``.

    Safe to call regardless of the selected backend (the differential parity
    test drives both kernels in one process).  The failure reason, if any, is
    recorded in :data:`C_IMPORT_ERROR`.
    """
    global _ckernel, C_IMPORT_ERROR
    if _ckernel is not None:
        return _ckernel
    try:
        from . import _ckernel as ck
    except ImportError as exc:
        C_IMPORT_ERROR = str(exc)
        return None
    # Both kernels must share one set of sentinels and exception types so
    # events created by one dispatcher remain legible to the other (the
    # parity test interleaves them deliberately).
    ck._configure(
        pending=_pykernel._PENDING,
        processed=_pykernel._PROCESSED,
        interrupt=Interrupt,
        simulation_error=SimulationError,
    )
    _ckernel = ck
    return ck


def _select() -> str:
    requested = (os.environ.get("REPRO_ENGINE") or "auto").strip().lower()
    if requested not in BACKENDS:
        raise ImportError(
            f"REPRO_ENGINE={requested!r} is not a valid engine backend; "
            f"expected one of {', '.join(BACKENDS)}"
        )
    if requested == "py":
        return "py"
    if load_ckernel() is not None:
        return "c"
    if requested == "c":
        raise ImportError(
            "REPRO_ENGINE=c but the compiled scheduler kernel is unavailable "
            f"({C_IMPORT_ERROR}); build it with `python scripts/build_ckernel.py` "
            "or drop REPRO_ENGINE back to auto/py"
        )
    return "py"


#: The kernel actually in use for this process: ``"py"`` or ``"c"``.
ENGINE_BACKEND = _select()

if ENGINE_BACKEND == "c":
    Environment = _ckernel.Environment
    Event = _ckernel.Event
    Timeout = _ckernel.Timeout
    BatchWakeup = _ckernel.BatchWakeup
    Process = _ckernel.Process
else:
    Environment = _pykernel.Environment
    Event = _pykernel.Event
    Timeout = _pykernel.Timeout
    BatchWakeup = _pykernel.BatchWakeup
    Process = _pykernel.Process


def backend_status() -> dict:
    """Describe backend availability (used by ``--list engines`` and CI)."""
    c_available = load_ckernel() is not None
    return {
        "selected": ENGINE_BACKEND,
        "py": "pure-Python reference kernel (always available)",
        "c": (
            "compiled C kernel (loaded)"
            if c_available
            else f"compiled C kernel unavailable: {C_IMPORT_ERROR}"
        ),
        "c_available": c_available,
    }
