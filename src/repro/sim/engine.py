"""Discrete-event simulation engine.

The whole reproduction runs on simulated time: partitions, worker threads,
network messages, log flushes and replication rounds are all events scheduled
on a single :class:`Environment`.  Processes are plain Python generators that
yield :class:`Event` objects (typically produced by :meth:`Environment.timeout`
or by the networking / locking substrates) and are resumed when the event
fires.

The design intentionally mirrors a small subset of SimPy so that the protocol
code reads like straight-line pseudo code from the paper:

    def worker(env):
        yield env.timeout(10.0)
        value = yield from network.rpc(src, dst, handler, payload)

Only the features the reproduction needs are implemented: timeouts, generic
events, processes (which are themselves events and can therefore be awaited),
and process failure propagation.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "SimulationError",
    "Interrupt",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. yielding a non-event)."""


class Interrupt(Exception):
    """Thrown into a process that has been interrupted (e.g. by a crash)."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event state markers.
_PENDING = object()


class Event:
    """A single occurrence a process can wait for.

    An event starts *untriggered*; once :meth:`succeed` (or :meth:`fail`) is
    called it is scheduled on the environment and every waiting callback runs
    at the current simulated time.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value accessed before it was triggered")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self.env._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception; waiters will see it raised."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately at the current time.
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.env.now:.3f}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """Wraps a generator and drives it through the events it yields.

    A process is itself an event: it triggers with the generator's return
    value when the generator finishes, so processes can wait for each other
    (``result = yield env.process(child())``).
    """

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._interrupted_by: Optional[Interrupt] = None
        # Kick off the process at the current simulated time.
        init = Event(env)
        init.succeed(None)
        init.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        self._interrupted_by = Interrupt(cause)
        wakeup = Event(self.env)
        wakeup.succeed(None)
        wakeup.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            if self._interrupted_by is not None:
                exc, self._interrupted_by = self._interrupted_by, None
                target = self._generator.throw(exc)
            elif event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: treat as termination.
            self.succeed(None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            self._generator.close()
            self.fail(error)
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._active_processes = 0

    @property
    def now(self) -> float:
        """Current simulated time (microseconds by convention in this repo)."""
        return self._now

    # -- event creation -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    # -- scheduling -----------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event in the queue."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)

    def run(self, until: Optional[float] = None) -> float:
        """Run until simulated time ``until`` (or until the queue drains)."""
        if until is not None and until < self._now:
            raise SimulationError("cannot run into the past")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return self._now
            self.step()
        if until is not None:
            self._now = until
        return self._now

    def run_all(self, max_events: int = 50_000_000) -> float:
        """Drain the queue entirely (bounded by ``max_events`` as a safety net)."""
        processed = 0
        while self._queue:
            self.step()
            processed += 1
            if processed > max_events:
                raise SimulationError("simulation did not terminate (event budget exceeded)")
        return self._now


def all_of(env: Environment, events: Iterable[Event]) -> Event:
    """Return an event that fires after every event in ``events`` has fired."""
    events = list(events)
    done = env.event()
    remaining = len(events)
    results: list[Any] = [None] * remaining
    if remaining == 0:
        done.succeed([])
        return done

    def make_callback(index: int) -> Callable[[Event], None]:
        def callback(event: Event) -> None:
            nonlocal remaining
            results[index] = event.value if event.ok else event._value
            remaining -= 1
            if remaining == 0 and not done.triggered:
                done.succeed(results)

        return callback

    for i, event in enumerate(events):
        event.add_callback(make_callback(i))
    return done


def any_of(env: Environment, events: Iterable[Event]) -> Event:
    """Return an event that fires as soon as one event in ``events`` fires."""
    events = list(events)
    done = env.event()
    if not events:
        done.succeed(None)
        return done

    def callback(event: Event) -> None:
        if not done.triggered:
            done.succeed(event.value if event.ok else event._value)

    for event in events:
        event.add_callback(callback)
    return done
