"""Membership service (ZooKeeper stand-in).

Primo relies on an external membership service to detect partition-leader
failures and to coordinate recovery (§5.2).  This module models the two
behaviours the protocol needs:

* heartbeat-based failure detection with a configurable timeout;
* a tiny strongly-consistent key-value register used by the recovery
  coordinator to publish partition watermarks under a TERM-ID so that every
  partition adopts the same agreed global watermark.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..sim.engine import Environment, Event

__all__ = ["MembershipService"]


class MembershipService:
    """Failure detector plus a consensus-backed scratchpad for recovery."""

    def __init__(
        self,
        env: Environment,
        n_partitions: int,
        heartbeat_interval_us: float = 2_000.0,
        heartbeat_timeout_us: float = 10_000.0,
    ):
        self.env = env
        self.n_partitions = n_partitions
        self.heartbeat_interval_us = heartbeat_interval_us
        self.heartbeat_timeout_us = heartbeat_timeout_us
        self._last_heartbeat = {p: 0.0 for p in range(n_partitions)}
        self._alive = {p: True for p in range(n_partitions)}
        self._failure_listeners: list[Callable[[int], None]] = []
        # The ZooKeeper-like register: term -> {partition -> published watermark}.
        self._published_watermarks: dict[int, dict[int, float]] = {}
        self.current_term = 0
        self._monitor_started = False

    # -- failure detection -----------------------------------------------------
    def start(self) -> None:
        if not self._monitor_started:
            self._monitor_started = True
            self.env.process(self._monitor_loop(), name="membership-monitor")

    def on_failure(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked (once) when a partition is declared failed."""
        self._failure_listeners.append(listener)

    def heartbeat(self, partition_id: int) -> None:
        self._last_heartbeat[partition_id] = self.env.now

    def mark_recovered(self, partition_id: int) -> None:
        self._alive[partition_id] = True
        self._last_heartbeat[partition_id] = self.env.now

    def is_alive(self, partition_id: int) -> bool:
        return self._alive.get(partition_id, False)

    def _monitor_loop(self) -> Generator[Event, object, None]:
        while True:
            yield self.env.timeout(self.heartbeat_interval_us)
            now = self.env.now
            for partition_id, last in self._last_heartbeat.items():
                if not self._alive[partition_id]:
                    continue
                if now - last > self.heartbeat_timeout_us:
                    self._alive[partition_id] = False
                    for listener in list(self._failure_listeners):
                        listener(partition_id)

    # -- watermark agreement (recovery, §5.2) -----------------------------------
    def new_recovery_term(self) -> int:
        self.current_term += 1
        self._published_watermarks[self.current_term] = {}
        return self.current_term

    def publish_watermark(self, term: int, partition_id: int, watermark: float) -> None:
        self._published_watermarks.setdefault(term, {})[partition_id] = watermark

    def published_watermarks(self, term: int) -> dict[int, float]:
        return dict(self._published_watermarks.get(term, {}))

    def agreed_global_watermark(self, term: int) -> Optional[float]:
        """Per §5.2 every partition adopts the *maximum* published watermark."""
        published = self._published_watermarks.get(term)
        if not published:
            return None
        return max(published.values())
