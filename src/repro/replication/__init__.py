"""Replication (simplified Raft) and membership/failure-detection services."""

from .membership import MembershipService
from .raft import ReplicaState, ReplicationGroup

__all__ = ["MembershipService", "ReplicaState", "ReplicationGroup"]
