"""Simplified Raft-style replication for a partition's log.

Each partition has a leader (the simulated server) and ``replicas_per_partition
- 1`` followers.  The only Raft behaviours the reproduction needs are:

* **quorum append** — a log prefix becomes durable once a majority of the
  replication group has acknowledged it (one network round trip per append
  batch), which is the persistence latency that WM/COCO/CLV move off or keep
  on the transaction's critical path;
* **leader fail-over** — on a crash the recovery coordinator elects a new
  leader which, per §5.2, is guaranteed to have every log record up to the
  last persisted partition watermark.

Followers are modelled as passive log stores rather than full servers; their
acknowledgement latency is a network round trip from the leader.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from ..sim.engine import Environment, Event
from ..sim.network import Network

__all__ = ["ReplicaState", "ReplicationGroup"]


@dataclass
class ReplicaState:
    """A follower's view of the replicated log."""

    replica_id: int
    acked_lsn: int = 0
    log_entries: list = field(default_factory=list)


class ReplicationGroup:
    """Leader-driven quorum replication for a single partition."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        partition_id: int,
        n_replicas: int,
        follower_node_base: int,
        storage_persist_us: float,
    ):
        if n_replicas < 1:
            raise ValueError("a replication group needs at least one replica (the leader)")
        self.env = env
        self.network = network
        self.partition_id = partition_id
        self.n_replicas = n_replicas
        self.storage_persist_us = storage_persist_us
        self.term = 1
        self.leader_alive = True
        # Follower node ids live in a separate id space so network latency
        # between the leader and its followers is the normal inter-node latency.
        self.followers = [
            ReplicaState(replica_id=follower_node_base + i)
            for i in range(n_replicas - 1)
        ]
        self.quorum_size = n_replicas // 2 + 1
        self.durable_lsn = 0
        # Follower-side record retention mirrors LogManager.retain_history:
        # the cluster turns it off for fault-free runs so replicated entries
        # don't accumulate per follower for the whole run (acked_lsn alone
        # carries the durability state the simulation acts on).
        self.retain_entries = True
        self.stats = {"append_rounds": 0, "entries_replicated": 0, "elections": 0}

    # -- normal operation ----------------------------------------------------
    def replicate(self, up_to_lsn: int, entries: list) -> Generator[Event, object, int]:
        """Replicate ``entries`` so the prefix up to ``up_to_lsn`` is durable.

        Returns the new durable LSN.  With a single replica (no followers) the
        persist latency is just the local storage write.
        """
        self.stats["append_rounds"] += 1
        self.stats["entries_replicated"] += len(entries)
        if not self.followers:
            yield self.env.timeout(self.storage_persist_us)
            self.durable_lsn = max(self.durable_lsn, up_to_lsn)
            return self.durable_lsn
        # Leader sends AppendEntries to all followers in parallel; durability
        # is reached when a quorum (including the leader itself) has persisted.
        # The dominant cost is one round trip to the fastest follower plus the
        # follower's storage write.
        acks_needed = self.quorum_size - 1  # leader counts as one vote
        follower = self.followers[0]
        roundtrip = self.network.roundtrip_us(self.partition_id, follower.replica_id)
        yield self.env.timeout(roundtrip + self.storage_persist_us)
        retain = self.retain_entries
        for state in self.followers[: max(acks_needed, 1)]:
            state.acked_lsn = max(state.acked_lsn, up_to_lsn)
            if retain:
                state.log_entries.extend(entries)
        # Remaining followers catch up asynchronously (not on the critical path).
        for state in self.followers[max(acks_needed, 1):]:
            if retain:
                state.log_entries.extend(entries)
            state.acked_lsn = max(state.acked_lsn, up_to_lsn)
        self.durable_lsn = max(self.durable_lsn, up_to_lsn)
        return self.durable_lsn

    # -- failure handling -------------------------------------------------------
    def leader_crashed(self) -> None:
        self.leader_alive = False

    def elect_new_leader(self) -> Generator[Event, object, int]:
        """Run a (simplified) election; returns the new term.

        The election costs one round trip among the replicas plus a small
        randomised-timeout allowance, matching Raft's expected fail-over time.
        """
        self.stats["elections"] += 1
        election_delay = self.network.one_way_latency_us * 4 + self.storage_persist_us
        yield self.env.timeout(election_delay)
        self.term += 1
        self.leader_alive = True
        return self.term

    def highest_replicated_lsn(self) -> int:
        """The LSN guaranteed to exist on the new leader after fail-over."""
        if not self.followers:
            return self.durable_lsn
        return max((f.acked_lsn for f in self.followers), default=self.durable_lsn)
