"""Simplified Raft-style replication for a partition's log.

Each partition has a leader (the simulated server) and ``replicas_per_partition
- 1`` followers.  The only Raft behaviours the reproduction needs are:

* **quorum append** — a log prefix becomes durable once a majority of the
  replication group has acknowledged it (one network round trip per append
  batch), which is the persistence latency that WM/COCO/CLV move off or keep
  on the transaction's critical path;
* **leader fail-over** — on a crash the recovery coordinator elects a new
  leader which, per §5.2, is guaranteed to have every log record up to the
  last persisted partition watermark.

Followers are lightweight log stores rather than full servers, but they are
*fault-targetable*: each :class:`ReplicaState` can lag (``extra_lag_us``
stretches its acknowledgement round trip) or crash (``crashed`` removes it
from the quorum until it recovers and catches up) — the ``follower_lag`` /
``follower_crash`` / ``follower_recover`` fault kinds in :mod:`repro.faults`
drive exactly these knobs.  Quorum latency is the *quorum-th fastest* alive
follower's round trip (not ``followers[0]``'s), so heterogeneous links — a
lagging follower, or a cross-region replica under a
:class:`~repro.sim.topology.RegionTopology` — reshape durability latency the
way a real quorum does.  With homogeneous links every round trip is equal
and the quorum-th fastest *is* the old ``followers[0]`` value, so all
pre-existing fixed-seed goldens are bit-identical (pinned by
tests/replication/test_replication.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from ..sim.engine import Environment, Event
from ..sim.network import Network

__all__ = ["ReplicaState", "ReplicationGroup", "QUORUM_RETRY_US"]

#: Fixed re-check interval while an append waits for a quorum of alive
#: followers (all crashed-follower stalls resolve through recovery events,
#: so a constant poll keeps the wait deterministic).
QUORUM_RETRY_US = 1_000.0


@dataclass
class ReplicaState:
    """A follower's view of the replicated log (and its fault state)."""

    replica_id: int
    acked_lsn: int = 0
    log_entries: list = field(default_factory=list)
    #: Extra acknowledgement latency injected by the ``follower_lag`` fault.
    extra_lag_us: float = 0.0
    #: Crashed followers ack nothing and drop out of the quorum math.
    crashed: bool = False


class ReplicationGroup:
    """Leader-driven quorum replication for a single partition."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        partition_id: int,
        n_replicas: int,
        follower_node_base: int,
        storage_persist_us: float,
    ):
        if n_replicas < 1:
            raise ValueError("a replication group needs at least one replica (the leader)")
        self.env = env
        self.network = network
        self.partition_id = partition_id
        self.n_replicas = n_replicas
        self.storage_persist_us = storage_persist_us
        self.term = 1
        self.leader_alive = True
        # Follower node ids live in a separate id space so network latency
        # between the leader and its followers is the normal inter-node latency.
        self.followers = [
            ReplicaState(replica_id=follower_node_base + i)
            for i in range(n_replicas - 1)
        ]
        self.quorum_size = n_replicas // 2 + 1
        self.durable_lsn = 0
        # Follower-side record retention mirrors LogManager.retain_history:
        # the cluster turns it off for fault-free runs so replicated entries
        # don't accumulate per follower for the whole run (acked_lsn alone
        # carries the durability state the simulation acts on).
        self.retain_entries = True
        self.stats = {"append_rounds": 0, "entries_replicated": 0, "elections": 0,
                      "quorum_stalls": 0}

    # -- follower fault surface ---------------------------------------------
    def _follower(self, index: int) -> ReplicaState:
        if not 0 <= index < len(self.followers):
            raise ValueError(
                f"partition {self.partition_id} has {len(self.followers)} "
                f"follower(s); follower index {index} is out of range"
            )
        return self.followers[index]

    def set_follower_lag(self, index: int, delay_us: float) -> None:
        """Stretch one follower's ack round trip by ``delay_us`` (0 clears)."""
        self._follower(index).extra_lag_us = float(delay_us)

    def crash_follower(self, index: int) -> None:
        """Drop one follower out of the quorum until it recovers."""
        self._follower(index).crashed = True

    def recover_follower(self, index: int) -> None:
        """Bring a crashed follower back, caught up to the durable prefix."""
        state = self._follower(index)
        state.crashed = False
        # Catch-up: a recovering follower replays the leader's durable log
        # before rejoining the quorum, so it acks everything already durable.
        state.acked_lsn = max(state.acked_lsn, self.durable_lsn)

    def alive_followers(self) -> list:
        return [state for state in self.followers if not state.crashed]

    def _ack_roundtrip_us(self, state: ReplicaState) -> float:
        """One append/ack round trip for a follower, including injected lag."""
        return (
            self.network.roundtrip_us(self.partition_id, state.replica_id)
            + state.extra_lag_us
        )

    # -- normal operation ----------------------------------------------------
    def replicate(self, up_to_lsn: int, entries: list) -> Generator[Event, object, int]:
        """Replicate ``entries`` so the prefix up to ``up_to_lsn`` is durable.

        Returns the new durable LSN.  With a single replica (no followers) the
        persist latency is just the local storage write.
        """
        self.stats["append_rounds"] += 1
        self.stats["entries_replicated"] += len(entries)
        if not self.followers:
            yield self.env.timeout(self.storage_persist_us)
            self.durable_lsn = max(self.durable_lsn, up_to_lsn)
            return self.durable_lsn
        # Leader sends AppendEntries to all followers in parallel; durability
        # is reached when a quorum (including the leader itself) has persisted.
        # The dominant cost is one round trip to the *quorum-th fastest* alive
        # follower plus the follower's storage write.
        acks_needed = self.quorum_size - 1  # leader counts as one vote
        alive = self.alive_followers()
        while len(alive) < acks_needed:
            # Too many followers down to form a quorum: durability stalls
            # until a follower recovers (the fixed poll keeps it deterministic).
            self.stats["quorum_stalls"] += 1
            yield self.env.timeout(QUORUM_RETRY_US)
            alive = self.alive_followers()
        roundtrips = sorted(self._ack_roundtrip_us(state) for state in alive)
        quorum_wait = roundtrips[max(acks_needed, 1) - 1]
        yield self.env.timeout(quorum_wait + self.storage_persist_us)
        retain = self.retain_entries
        # Every alive follower acknowledges this append — the quorum-th
        # fastest bounded the wait, the rest arrive off the critical path.
        # Crashed followers miss the entries and catch up on recovery.
        for state in alive:
            state.acked_lsn = max(state.acked_lsn, up_to_lsn)
            if retain:
                state.log_entries.extend(entries)
        self.durable_lsn = max(self.durable_lsn, up_to_lsn)
        return self.durable_lsn

    # -- failure handling -------------------------------------------------------
    def leader_crashed(self) -> None:
        self.leader_alive = False

    def elect_new_leader(self) -> Generator[Event, object, int]:
        """Run a (simplified) election; returns the new term.

        The election needs a vote round trip to every reachable follower plus
        a persisted term bump, so its cost is two round trips to the
        *slowest* live follower — derived from the network's actual per-link
        latency (injected delays, region matrices), not the scalar default.
        With homogeneous fault-free links this is exactly the historical
        ``4 × one_way + persist``.
        """
        self.stats["elections"] += 1
        pool = self.alive_followers() or self.followers
        if not pool:
            # Single-replica group: no votes to gather, just the term persist
            # plus the historical fixed allowance.
            election_delay = self.network.one_way_latency_us * 4 + self.storage_persist_us
        else:
            slowest = max(self._ack_roundtrip_us(state) for state in pool)
            election_delay = 2.0 * slowest + self.storage_persist_us
        yield self.env.timeout(election_delay)
        self.term += 1
        self.leader_alive = True
        return self.term

    def highest_replicated_lsn(self) -> int:
        """The LSN guaranteed to exist on the new leader after fail-over."""
        if not self.followers:
            return self.durable_lsn
        return max((f.acked_lsn for f in self.followers), default=self.durable_lsn)
