"""Workload interface.

A workload knows how to (1) load its tables onto every partition and (2)
produce an endless stream of transaction specifications for a given partition.
Transaction logic is written once against :class:`~repro.txn.context.TxnContext`
and therefore runs unchanged under every protocol.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator

from ..sim.randgen import DeterministicRandom, derive_seed, stable_hash

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster
    from ..txn.context import TxnContext

__all__ = ["TransactionSpec", "TxnSource", "Workload"]


@dataclass(slots=True)
class TransactionSpec:
    """One transaction to execute: a name (for stats) and its logic generator."""

    name: str
    logic: Callable[["TxnContext"], Generator]
    read_only: bool = False
    metadata: dict = field(default_factory=dict)


class TxnSource(abc.ABC):
    """An endless, deterministic stream of transactions for one worker fiber."""

    @abc.abstractmethod
    def next(self) -> TransactionSpec:
        """Produce the next transaction specification."""


class Workload(abc.ABC):
    """Base class for YCSB, TPC-C, TATP and Smallbank."""

    name = "workload"

    @abc.abstractmethod
    def load(self, cluster: "Cluster") -> None:
        """Create tables and populate the initial database on every partition."""

    @abc.abstractmethod
    def make_source(self, cluster: "Cluster", partition_id: int, stream_id: int) -> TxnSource:
        """Create a per-worker transaction stream rooted at ``partition_id``."""

    def rng(self, cluster: "Cluster", partition_id: int, stream_id: int) -> DeterministicRandom:
        """Deterministic RNG derived from the run seed, partition and stream.

        Uses :func:`~repro.sim.randgen.stable_hash` so the derived seed is
        identical in every interpreter process (``hash(str)`` is randomized).
        """
        return DeterministicRandom(
            derive_seed(
                cluster.config.seed, stable_hash(self.name) & 0xFFFF, partition_id, stream_id
            )
        )
