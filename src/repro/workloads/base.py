"""Workload interface.

A workload knows how to (1) load its tables onto every partition and (2)
produce an endless stream of transaction specifications for a given partition.
Transaction logic is written once against :class:`~repro.txn.context.TxnContext`
and therefore runs unchanged under every protocol.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator, Optional

from ..sim.randgen import DeterministicRandom, derive_seed, stable_hash

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster
    from ..txn.context import TxnContext

__all__ = ["TransactionSpec", "TxnSource", "Workload"]


@dataclass(slots=True)
class TransactionSpec:
    """One transaction to execute: a name (for stats) and its logic generator."""

    name: str
    logic: Callable[["TxnContext"], Generator]
    read_only: bool = False
    metadata: dict = field(default_factory=dict)


class TxnSource(abc.ABC):
    """An endless, deterministic stream of transactions for one worker fiber.

    Draw-order contract
    -------------------
    A source owns its RNG(s), and each ``next()`` call consumes the underlying
    uniform stream in a fixed, documented pattern — nothing else may draw from
    the stream between calls.  Callers in turn pin *when* ``next()`` runs: the
    closed loop draws once per transaction it starts, and the open loop
    (:mod:`repro.arrivals`) draws exactly once per arrival, at enqueue time,
    in arrival order.  Both schedules are fully determined by the run seed,
    so fixed-seed transaction sequences are reproducible across interpreter
    processes, pool workers and engine backends.
    """

    @abc.abstractmethod
    def next(self) -> TransactionSpec:
        """Produce the next transaction specification."""

    def set_hot_skew(self, theta: Optional[float]) -> None:
        """Shift the stream's key-popularity skew mid-run (flash crowds).

        ``theta`` selects the new skew; ``None`` restores the configured
        baseline.  The default is a no-op: sources without a tunable
        key-popularity notion ignore the shift.  Implementations must keep
        drawing from the source's own RNG so the draw-order contract above
        (and with it fixed-seed determinism) holds across the shift.
        """


class Workload(abc.ABC):
    """Base class for YCSB, TPC-C, TATP and Smallbank."""

    name = "workload"

    @abc.abstractmethod
    def load(self, cluster: "Cluster") -> None:
        """Create tables and populate the initial database on every partition."""

    @abc.abstractmethod
    def make_source(self, cluster: "Cluster", partition_id: int, stream_id: int) -> TxnSource:
        """Create a per-worker transaction stream rooted at ``partition_id``."""

    def rng(self, cluster: "Cluster", partition_id: int, stream_id: int) -> DeterministicRandom:
        """Deterministic RNG derived from the run seed, partition and stream.

        Uses :func:`~repro.sim.randgen.stable_hash` so the derived seed is
        identical in every interpreter process (``hash(str)`` is randomized).
        """
        return DeterministicRandom(
            derive_seed(
                cluster.config.seed, stable_hash(self.name) & 0xFFFF, partition_id, stream_id
            )
        )
