"""OLTP workloads: YCSB, TPC-C, TATP, Smallbank — and weighted mixes of them."""

from .base import TransactionSpec, TxnSource, Workload
from .mixed import MixedConfig, MixedWorkload
from .smallbank import SmallbankConfig, SmallbankWorkload
from .tatp import TATPConfig, TATPWorkload
from .tpcc import TPCCConfig, TPCCWorkload
from .ycsb import YCSBConfig, YCSBWorkload

__all__ = [
    "TransactionSpec",
    "TxnSource",
    "Workload",
    "MixedConfig",
    "MixedWorkload",
    "SmallbankConfig",
    "SmallbankWorkload",
    "TATPConfig",
    "TATPWorkload",
    "TPCCConfig",
    "TPCCWorkload",
    "YCSBConfig",
    "YCSBWorkload",
]
