"""OLTP workloads: YCSB, TPC-C, TATP and Smallbank."""

from .base import TransactionSpec, TxnSource, Workload
from .smallbank import SmallbankConfig, SmallbankWorkload
from .tatp import TATPConfig, TATPWorkload
from .tpcc import TPCCConfig, TPCCWorkload
from .ycsb import YCSBConfig, YCSBWorkload

__all__ = [
    "TransactionSpec",
    "TxnSource",
    "Workload",
    "SmallbankConfig",
    "SmallbankWorkload",
    "TATPConfig",
    "TATPWorkload",
    "TPCCConfig",
    "TPCCWorkload",
    "YCSBConfig",
    "YCSBWorkload",
]
