"""Composite workload: blend registered workloads by weight.

``MixedWorkload`` registers under the name ``"mixed"`` like any other
workload, so a weighted blend is just another scenario axis::

    spec = repro.ScenarioSpec(
        protocol="primo",
        workload={"ycsb": 0.7, "tatp": 0.3},   # sugar for workload="mixed"
        scale="small",
    )

or, spelled out (the JSON-file form)::

    {"workload": "mixed",
     "workload_overrides": {"components": [["ycsb", 0.7], ["tatp", 0.3]]}}

Each component is ``[name, weight]`` or ``[name, weight, [[knob, value], ...]]``
with the knobs validated against that component's registered config dataclass
— eagerly, with did-you-mean hints, when the scenario is constructed.

Determinism: every worker fiber owns one *selector* stream (derived from the
run seed, the composite's name, partition and stream via ``stable_hash``) and
one sub-stream per component (each derived from that component workload's own
name).  The selector consumes exactly one uniform per transaction to pick the
component, and the chosen component's stream produces the transaction — so
draws are reproducible across interpreter processes and pool workers, and
adding a component never perturbs the other components' key sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Mapping, Sequence

from ..registry import WORKLOAD_REGISTRY, register_workload, suggestion_hint
from ..scales import resolve_scale
from .base import TransactionSpec, TxnSource, Workload

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster

__all__ = ["MixedConfig", "MixedWorkload", "MixedSource", "normalize_components"]


def normalize_components(components) -> tuple:
    """Validate and canonicalize a component listing.

    Accepts ``{name: weight}`` mappings or sequences of ``(name, weight)`` /
    ``(name, weight, overrides)`` entries (overrides as a mapping or pairs).
    Returns sorted-by-name ``(name, weight, ((knob, value), ...))`` tuples —
    the stored form is order-insensitive so equal mixes hash, serialize and
    *draw* identically regardless of how they were written.
    """
    if isinstance(components, Mapping):
        components = [(name, weight) for name, weight in components.items()]
    if not isinstance(components, Sequence) or isinstance(components, str):
        raise TypeError(
            f"mixed-workload components must be a mapping or a list, got "
            f"{type(components).__name__}"
        )
    if not components:
        raise ValueError("mixed workload needs at least one component")

    normalized = []
    seen = set()
    for entry in components:
        if not isinstance(entry, Sequence) or isinstance(entry, str) or not 2 <= len(entry) <= 3:
            raise ValueError(
                f"mixed component must be [name, weight] or "
                f"[name, weight, overrides], got {entry!r}"
            )
        name, weight = entry[0], entry[1]
        overrides = entry[2] if len(entry) == 3 else ()
        if name == "mixed":
            raise ValueError("mixed workloads cannot nest another 'mixed'")
        workload_entry = WORKLOAD_REGISTRY.entry(name)
        if name in seen:
            raise ValueError(f"mixed component {name!r} listed twice")
        seen.add(name)
        weight = float(weight)
        if not weight > 0.0:
            raise ValueError(f"mixed component {name!r} needs a positive weight, got {weight}")
        if isinstance(overrides, Mapping):
            overrides = tuple(overrides.items())
        pairs = []
        valid = tuple(f.name for f in fields(workload_entry.metadata["config_cls"]))
        for pair in overrides:
            knob, value = pair
            if knob not in valid:
                raise ValueError(
                    f"unknown override {knob!r} for mixed component {name!r}"
                    f"{suggestion_hint(str(knob), valid)}; valid keys: "
                    f"{', '.join(valid)}"
                )
            pairs.append((knob, value))
        normalized.append((name, weight, tuple(sorted(pairs))))
    normalized.sort(key=lambda item: item[0])
    return tuple(normalized)


@dataclass
class MixedConfig:
    """Component listing plus the scale used to size each component's tables.

    ``scale`` is filled automatically by ``repro.scenarios.build_workload``
    (registration metadata ``scale_defaults={"scale": "__scale__"}`` passes
    the resolved scale's dict form through), so component populations track
    ``--scale`` exactly like standalone workloads.
    """

    components: tuple = ()
    scale: object = "small"

    def validate(self) -> None:
        self.components = normalize_components(self.components)
        self.scale = resolve_scale(self.scale)


@register_workload(
    "mixed",
    config_cls=MixedConfig,
    scale_defaults={"scale": "__scale__"},
    description="weighted blend of registered workloads "
                "(components=[[name, weight, overrides?], ...])",
)
class MixedWorkload(Workload):
    name = "mixed"

    def __init__(self, config: MixedConfig | None = None):
        self.config = config or MixedConfig()
        self.config.validate()
        # Sub-workloads are built through the same scale-defaults machinery a
        # standalone spec would use (imported lazily: scenario imports this
        # module's siblings at startup).
        from ..scenario import build_workload

        self.components = tuple(
            (name, weight, build_workload(self.config.scale, name, **dict(pairs)))
            for name, weight, pairs in self.config.components
        )
        self.name = "mixed(" + "+".join(
            f"{name}:{weight:g}" for name, weight, _ in self.components
        ) + ")"
        self._total_weight = sum(weight for _, weight, _ in self.components)

    # -- loading ------------------------------------------------------------------
    def load(self, cluster: "Cluster") -> None:
        for _, _, workload in self.components:
            workload.load(cluster)

    # -- transaction streams --------------------------------------------------------
    def make_source(self, cluster: "Cluster", partition_id: int, stream_id: int) -> "MixedSource":
        selector = self.rng(cluster, partition_id, stream_id)
        cumulative = []
        upto = 0.0
        for name, weight, workload in self.components:
            upto += weight
            cumulative.append((upto, workload.make_source(cluster, partition_id, stream_id)))
        return MixedSource(selector, cumulative, self._total_weight)

    def component_source(self, cluster: "Cluster", partition_id: int,
                         stream_id: int, name: str) -> TxnSource:
        """A transaction stream for one named component.

        Used by open-loop ``component_rates`` shaping (:mod:`repro.arrivals`):
        each component becomes its own arrival stream, drawing from the same
        per-component stream family a blended :meth:`make_source` would use.
        """
        for component_name, _, workload in self.components:
            if component_name == name:
                return workload.make_source(cluster, partition_id, stream_id)
        choices = tuple(component_name for component_name, _, _ in self.components)
        raise ValueError(
            f"unknown mix component {name!r}{suggestion_hint(name, choices)}; "
            f"components: {', '.join(choices)}"
        )


class MixedSource(TxnSource):
    """One uniform draw picks the component; the component produces the txn."""

    def __init__(self, selector, cumulative, total_weight: float):
        self._random = selector.random
        self._cumulative = cumulative
        self._total = total_weight

    def next(self) -> TransactionSpec:
        u = self._random() * self._total
        for upto, source in self._cumulative:
            if u < upto:
                return source.next()
        # u == total after float scaling: the last component wins.
        return self._cumulative[-1][1].next()

    def set_hot_skew(self, theta) -> None:
        for _, source in self._cumulative:
            source.set_hot_skew(theta)
