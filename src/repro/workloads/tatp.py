"""TATP (Telecom Application Transaction Processing) workload.

A read-heavy telecom benchmark the paper cites as a typical workload whose
read-set covers its write-set (§1).  Included as an extension workload for the
examples and for ablation benches: ~80% of the transactions are single-record
reads, the rest are updates of the same records, so it exercises Primo's
TicToc local path and the low-contention regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from ..registry import register_workload
from ..sim.randgen import DeterministicRandom
from .base import TransactionSpec, TxnSource, Workload

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster
    from ..txn.context import TxnContext

__all__ = ["TATPConfig", "TATPWorkload"]


@dataclass
class TATPConfig:
    subscribers_per_partition: int = 20_000
    distributed_pct: float = 0.1
    # Mix (percent): GetSubscriberData, GetAccessData, UpdateSubscriberData,
    # UpdateLocation.
    get_subscriber_pct: float = 35.0
    get_access_pct: float = 35.0
    update_subscriber_pct: float = 15.0
    update_location_pct: float = 15.0

    def validate(self) -> None:
        if self.subscribers_per_partition < 10:
            raise ValueError("need at least ten subscribers per partition")
        total = (
            self.get_subscriber_pct + self.get_access_pct
            + self.update_subscriber_pct + self.update_location_pct
        )
        if not 99.0 <= total <= 101.0:
            raise ValueError("transaction mix must sum to ~100")


class _TATPSource(TxnSource):
    def __init__(self, workload: "TATPWorkload", cluster: "Cluster",
                 partition_id: int, rng: DeterministicRandom):
        self.workload = workload
        self.cluster = cluster
        self.partition_id = partition_id
        self.rng = rng

    def _pick_partition(self) -> int:
        n = self.cluster.config.n_partitions
        if n > 1 and self.rng.boolean(self.workload.config.distributed_pct):
            other = self.rng.uniform_int(0, n - 2)
            return other + 1 if other >= self.partition_id else other
        return self.partition_id

    def next(self) -> TransactionSpec:
        config = self.workload.config
        s_id = self.rng.uniform_int(0, config.subscribers_per_partition - 1)
        partition = self._pick_partition()
        roll = self.rng.uniform(0.0, 100.0)
        if roll < config.get_subscriber_pct:
            return TransactionSpec(
                "tatp_get_subscriber", self.workload.get_subscriber(partition, s_id),
                read_only=True,
            )
        if roll < config.get_subscriber_pct + config.get_access_pct:
            ai_type = self.rng.uniform_int(1, 4)
            return TransactionSpec(
                "tatp_get_access", self.workload.get_access_data(partition, s_id, ai_type),
                read_only=True,
            )
        if roll < 100.0 - config.update_location_pct:
            return TransactionSpec(
                "tatp_update_subscriber",
                self.workload.update_subscriber(partition, s_id, self.rng.uniform_int(0, 255)),
            )
        return TransactionSpec(
            "tatp_update_location",
            self.workload.update_location(partition, s_id, self.rng.uniform_int(0, 1 << 16)),
        )


@register_workload(
    "tatp",
    config_cls=TATPConfig,
    scale_defaults={"subscribers_per_partition": "tatp_subscribers_per_partition"},
    description="read-heavy telecom mix (read-set covers write-set, §1)",
)
class TATPWorkload(Workload):
    name = "tatp"

    def __init__(self, config: TATPConfig | None = None):
        self.config = config or TATPConfig()
        self.config.validate()

    def load(self, cluster: "Cluster") -> None:
        for partition_id, server in cluster.servers.items():
            subscriber = server.store.create_table("subscriber")
            access_info = server.store.create_table("access_info")
            for s_id in range(self.config.subscribers_per_partition):
                subscriber.insert(s_id, {
                    "s_id": s_id, "bit_1": s_id % 2, "vlr_location": 0,
                    "msc_location": 0, "sub_nbr": f"{s_id:015d}",
                })
                for ai_type in range(1, 5):
                    access_info.insert((s_id, ai_type), {
                        "s_id": s_id, "ai_type": ai_type, "data1": ai_type * 7,
                    })

    def make_source(self, cluster: "Cluster", partition_id: int, stream_id: int) -> _TATPSource:
        return _TATPSource(self, cluster, partition_id, self.rng(cluster, partition_id, stream_id))

    # -- transaction logic ------------------------------------------------------------
    def get_subscriber(self, partition: int, s_id: int):
        def logic(ctx: "TxnContext") -> Generator:
            yield from ctx.read(partition, "subscriber", s_id)

        return logic

    def get_access_data(self, partition: int, s_id: int, ai_type: int):
        def logic(ctx: "TxnContext") -> Generator:
            yield from ctx.read(partition, "access_info", (s_id, ai_type))

        return logic

    def update_subscriber(self, partition: int, s_id: int, bit: int):
        def logic(ctx: "TxnContext") -> Generator:
            row = yield from ctx.read(partition, "subscriber", s_id)
            yield from ctx.update(partition, "subscriber", s_id, {"bit_1": bit ^ row["bit_1"]})

        return logic

    def update_location(self, partition: int, s_id: int, location: int):
        def logic(ctx: "TxnContext") -> Generator:
            yield from ctx.read(partition, "subscriber", s_id)
            yield from ctx.update(partition, "subscriber", s_id, {"vlr_location": location})

        return logic
