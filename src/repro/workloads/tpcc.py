"""TPC-C workload (§6.1.2).

Implements the full five-transaction mix (NewOrder, Payment, OrderStatus,
Delivery, StockLevel) over warehouse-partitioned tables.  Following the
specification — and the paper's setup — roughly 10% of NewOrder transactions
touch a remote warehouse (1% per order line) and 15% of Payment transactions
pay through a remote warehouse, which is what makes TPC-C a distributed
workload.  The item table is read-only and replicated to every partition.

Scale parameters are configurable so unit tests can run tiny instances; the
defaults are a scaled-down but structurally faithful database (the paper's
contention behaviour is driven by the per-district/warehouse hot rows, which
are modelled exactly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from ..registry import register_workload
from ..sim.randgen import DeterministicRandom
from .base import TransactionSpec, TxnSource, Workload

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster
    from ..txn.context import TxnContext

__all__ = ["TPCCConfig", "TPCCWorkload", "TPCCSource"]

DISTRICTS_PER_WAREHOUSE = 10


@dataclass
class TPCCConfig:
    """Scale and mix parameters."""

    warehouses_per_partition: int = 16
    customers_per_district: int = 100
    items: int = 1_000
    initial_orders_per_district: int = 10
    # Transaction mix in percent; the remainder is never generated.
    new_order_pct: float = 45.0
    payment_pct: float = 43.0
    order_status_pct: float = 4.0
    delivery_pct: float = 4.0
    stock_level_pct: float = 4.0
    # Remote-access probabilities from the TPC-C specification.
    remote_item_pct: float = 0.01      # per order line -> ~10% remote NewOrders
    remote_payment_pct: float = 0.15   # remote customer warehouse in Payment
    payment_by_name_pct: float = 0.60

    def validate(self) -> None:
        if self.warehouses_per_partition < 1:
            raise ValueError("need at least one warehouse per partition")
        if self.customers_per_district < 3:
            raise ValueError("need at least three customers per district")
        if self.items < 10:
            raise ValueError("need at least ten items")
        total = (
            self.new_order_pct + self.payment_pct + self.order_status_pct
            + self.delivery_pct + self.stock_level_pct
        )
        if not 99.0 <= total <= 101.0:
            raise ValueError(f"transaction mix must sum to ~100 (got {total})")


@register_workload(
    "tpcc",
    config_cls=TPCCConfig,
    scale_defaults={
        "warehouses_per_partition": "tpcc_warehouses_per_partition",
        "items": "tpcc_items",
        "customers_per_district": "tpcc_customers_per_district",
    },
    description="full five-transaction TPC-C mix",
)
class TPCCWorkload(Workload):
    name = "tpcc"

    def __init__(self, config: TPCCConfig | None = None):
        self.config = config or TPCCConfig()
        self.config.validate()

    # -- partitioning helpers ---------------------------------------------------------
    def partition_of_warehouse(self, cluster: "Cluster", w_id: int) -> int:
        return (w_id - 1) // self.config.warehouses_per_partition

    def warehouses_of_partition(self, partition_id: int) -> range:
        per = self.config.warehouses_per_partition
        return range(partition_id * per + 1, (partition_id + 1) * per + 1)

    def total_warehouses(self, cluster: "Cluster") -> int:
        return self.config.warehouses_per_partition * cluster.config.n_partitions

    # -- loading ------------------------------------------------------------------------
    def load(self, cluster: "Cluster") -> None:
        rng = DeterministicRandom(cluster.config.seed ^ 0xC0FFEE)
        for partition_id, server in cluster.servers.items():
            store = server.store
            warehouse = store.create_table("warehouse")
            district = store.create_table("district")
            customer = store.create_table("customer")
            customer.create_index(
                "by_name", lambda row: (row["c_w_id"], row["c_d_id"], row["c_last"])
            )
            stock = store.create_table("stock")
            item = store.create_table("item")
            orders = store.create_table("orders")
            orders.create_index(
                "by_customer", lambda row: (row["o_w_id"], row["o_d_id"], row["o_c_id"])
            )
            new_order = store.create_table("new_order")
            new_order.create_index(
                "by_district", lambda row: (row["no_w_id"], row["no_d_id"])
            )
            store.create_table("order_line")
            store.create_table("history")

            # The item table is read-only and replicated to every partition.
            for i_id in range(1, self.config.items + 1):
                item.insert(i_id, {
                    "i_id": i_id,
                    "i_name": f"item-{i_id}",
                    "i_price": 1.0 + (i_id % 100) / 10.0,
                })

            for w_id in self.warehouses_of_partition(partition_id):
                warehouse.insert(w_id, {
                    "w_id": w_id, "w_tax": 0.1, "w_ytd": 300_000.0,
                    "w_name": f"warehouse-{w_id}",
                })
                for i_id in range(1, self.config.items + 1):
                    stock.insert((w_id, i_id), {
                        "s_w_id": w_id, "s_i_id": i_id,
                        "s_quantity": 50 + (i_id % 50),
                        "s_ytd": 0, "s_order_cnt": 0, "s_remote_cnt": 0,
                    })
                for d_id in range(1, DISTRICTS_PER_WAREHOUSE + 1):
                    district.insert((w_id, d_id), {
                        "d_w_id": w_id, "d_id": d_id, "d_tax": 0.05,
                        "d_ytd": 30_000.0,
                        "d_next_o_id": self.config.initial_orders_per_district + 1,
                    })
                    for c_id in range(1, self.config.customers_per_district + 1):
                        last_name = rng.last_name(
                            c_id % 1000 if c_id > 1000 else c_id - 1
                        )
                        customer.insert((w_id, d_id, c_id), {
                            "c_w_id": w_id, "c_d_id": d_id, "c_id": c_id,
                            "c_last": last_name, "c_balance": -10.0,
                            "c_ytd_payment": 10.0, "c_payment_cnt": 1,
                            "c_delivery_cnt": 0, "c_data": "",
                        })
                    for o_id in range(1, self.config.initial_orders_per_district + 1):
                        c_id = rng.uniform_int(1, self.config.customers_per_district)
                        ol_cnt = rng.uniform_int(5, 15)
                        orders.insert((w_id, d_id, o_id), {
                            "o_w_id": w_id, "o_d_id": d_id, "o_id": o_id,
                            "o_c_id": c_id, "o_ol_cnt": ol_cnt, "o_carrier_id": None,
                        })
                        for ol_number in range(1, ol_cnt + 1):
                            store.table("order_line").insert((w_id, d_id, o_id, ol_number), {
                                "ol_w_id": w_id, "ol_d_id": d_id, "ol_o_id": o_id,
                                "ol_number": ol_number,
                                "ol_i_id": rng.uniform_int(1, self.config.items),
                                "ol_quantity": 5, "ol_amount": 0.0,
                                "ol_delivery_d": None,
                            })
                        # The last few orders stay undelivered.
                        if o_id > self.config.initial_orders_per_district - 5:
                            new_order.insert((w_id, d_id, o_id), {
                                "no_w_id": w_id, "no_d_id": d_id, "no_o_id": o_id,
                            })

    # -- transaction streams ----------------------------------------------------------------
    def make_source(self, cluster: "Cluster", partition_id: int, stream_id: int) -> "TPCCSource":
        return TPCCSource(self, cluster, partition_id, self.rng(cluster, partition_id, stream_id))


class TPCCSource(TxnSource):
    """Per-worker TPC-C transaction stream rooted at one partition."""

    def __init__(self, workload: TPCCWorkload, cluster: "Cluster",
                 partition_id: int, rng: DeterministicRandom):
        self.workload = workload
        self.cluster = cluster
        self.partition_id = partition_id
        self.rng = rng
        self.config = workload.config
        self._history_counter = 0

    # -- helpers ---------------------------------------------------------------------
    def _home_warehouse(self) -> int:
        warehouses = self.workload.warehouses_of_partition(self.partition_id)
        return self.rng.uniform_int(warehouses.start, warehouses.stop - 1)

    def _remote_warehouse(self, home_w: int) -> int:
        total = self.workload.total_warehouses(self.cluster)
        if total <= 1:
            return home_w
        other = self.rng.uniform_int(1, total - 1)
        if other >= home_w:
            other += 1
        return other

    def _partition_of(self, w_id: int) -> int:
        return self.workload.partition_of_warehouse(self.cluster, w_id)

    def _customer_id(self) -> int:
        return self.rng.nurand(1023 % self.config.customers_per_district or 1,
                               1, self.config.customers_per_district)

    def _item_id(self) -> int:
        return self.rng.nurand(8191 % self.config.items or 1, 1, self.config.items)

    # -- stream ------------------------------------------------------------------------
    def next(self) -> TransactionSpec:
        c = self.config
        roll = self.rng.uniform(0.0, 100.0)
        if roll < c.new_order_pct:
            return self._new_order()
        if roll < c.new_order_pct + c.payment_pct:
            return self._payment()
        if roll < c.new_order_pct + c.payment_pct + c.order_status_pct:
            return self._order_status()
        if roll < c.new_order_pct + c.payment_pct + c.order_status_pct + c.delivery_pct:
            return self._delivery()
        return self._stock_level()

    # -- NewOrder -------------------------------------------------------------------------
    def _new_order(self) -> TransactionSpec:
        w_id = self._home_warehouse()
        d_id = self.rng.uniform_int(1, DISTRICTS_PER_WAREHOUSE)
        c_id = self._customer_id()
        ol_cnt = self.rng.uniform_int(5, 15)
        lines = []
        for _ in range(ol_cnt):
            i_id = self._item_id()
            supply_w = w_id
            if self.rng.boolean(self.config.remote_item_pct):
                supply_w = self._remote_warehouse(w_id)
            quantity = self.rng.uniform_int(1, 10)
            lines.append((i_id, supply_w, quantity))
        home_partition = self.partition_id
        workload = self.workload

        def logic(ctx: "TxnContext") -> Generator:
            warehouse = yield from ctx.read(home_partition, "warehouse", w_id)
            district = yield from ctx.read(home_partition, "district", (w_id, d_id))
            yield from ctx.read(home_partition, "customer", (w_id, d_id, c_id))
            o_id = district["d_next_o_id"]
            yield from ctx.update(
                home_partition, "district", (w_id, d_id), {"d_next_o_id": o_id + 1}
            )
            total_amount = 0.0
            for ol_number, (i_id, supply_w, quantity) in enumerate(lines, start=1):
                item = yield from ctx.read(home_partition, "item", i_id)
                supply_partition = workload.partition_of_warehouse(ctx.protocol.cluster, supply_w)
                stock = yield from ctx.read(supply_partition, "stock", (supply_w, i_id))
                new_quantity = stock["s_quantity"] - quantity
                if new_quantity < 10:
                    new_quantity += 91
                yield from ctx.update(
                    supply_partition, "stock", (supply_w, i_id),
                    {
                        "s_quantity": new_quantity,
                        "s_ytd": stock["s_ytd"] + quantity,
                        "s_order_cnt": stock["s_order_cnt"] + 1,
                        "s_remote_cnt": stock["s_remote_cnt"] + (1 if supply_w != w_id else 0),
                    },
                )
                amount = quantity * item["i_price"]
                total_amount += amount
                yield from ctx.insert(
                    home_partition, "order_line", (w_id, d_id, o_id, ol_number),
                    {
                        "ol_w_id": w_id, "ol_d_id": d_id, "ol_o_id": o_id,
                        "ol_number": ol_number, "ol_i_id": i_id,
                        "ol_quantity": quantity, "ol_amount": amount,
                        "ol_delivery_d": None,
                    },
                )
            total_amount *= (1 + warehouse["w_tax"] + district["d_tax"])
            yield from ctx.insert(
                home_partition, "orders", (w_id, d_id, o_id),
                {
                    "o_w_id": w_id, "o_d_id": d_id, "o_id": o_id,
                    "o_c_id": c_id, "o_ol_cnt": ol_cnt, "o_carrier_id": None,
                },
            )
            yield from ctx.insert(
                home_partition, "new_order", (w_id, d_id, o_id),
                {"no_w_id": w_id, "no_d_id": d_id, "no_o_id": o_id},
            )

        return TransactionSpec(name="new_order", logic=logic)

    # -- Payment ---------------------------------------------------------------------------
    def _payment(self) -> TransactionSpec:
        w_id = self._home_warehouse()
        d_id = self.rng.uniform_int(1, DISTRICTS_PER_WAREHOUSE)
        amount = self.rng.uniform(1.0, 5000.0)
        if self.rng.boolean(self.config.remote_payment_pct):
            c_w_id = self._remote_warehouse(w_id)
        else:
            c_w_id = w_id
        c_d_id = self.rng.uniform_int(1, DISTRICTS_PER_WAREHOUSE)
        by_name = self.rng.boolean(self.config.payment_by_name_pct)
        c_id = self._customer_id()
        c_last = self.rng.last_name(self.rng.nurand(255, 0, 999) % 1000)
        home_partition = self.partition_id
        customer_partition = self._partition_of(c_w_id)
        self._history_counter += 1
        history_key = (self.partition_id, w_id, d_id, self._history_counter, self.rng.uniform_int(0, 1 << 30))

        def logic(ctx: "TxnContext") -> Generator:
            warehouse = yield from ctx.read(home_partition, "warehouse", w_id)
            yield from ctx.update(
                home_partition, "warehouse", w_id, {"w_ytd": warehouse["w_ytd"] + amount}
            )
            district = yield from ctx.read(home_partition, "district", (w_id, d_id))
            yield from ctx.update(
                home_partition, "district", (w_id, d_id), {"d_ytd": district["d_ytd"] + amount}
            )
            target_c_id = c_id
            if by_name:
                matches = yield from ctx.index_lookup(
                    customer_partition, "customer", "by_name", (c_w_id, c_d_id, c_last)
                )
                if matches:
                    ordered = sorted(matches)
                    target_c_id = ordered[len(ordered) // 2][2]
            customer = yield from ctx.read(
                customer_partition, "customer", (c_w_id, c_d_id, target_c_id)
            )
            yield from ctx.update(
                customer_partition, "customer", (c_w_id, c_d_id, target_c_id),
                {
                    "c_balance": customer["c_balance"] - amount,
                    "c_ytd_payment": customer["c_ytd_payment"] + amount,
                    "c_payment_cnt": customer["c_payment_cnt"] + 1,
                },
            )
            yield from ctx.insert(
                home_partition, "history", history_key,
                {
                    "h_c_id": target_c_id, "h_c_w_id": c_w_id, "h_c_d_id": c_d_id,
                    "h_w_id": w_id, "h_d_id": d_id, "h_amount": amount,
                },
            )

        return TransactionSpec(name="payment", logic=logic)

    # -- OrderStatus (read-only) --------------------------------------------------------------
    def _order_status(self) -> TransactionSpec:
        w_id = self._home_warehouse()
        d_id = self.rng.uniform_int(1, DISTRICTS_PER_WAREHOUSE)
        c_id = self._customer_id()
        home_partition = self.partition_id

        def logic(ctx: "TxnContext") -> Generator:
            yield from ctx.read(home_partition, "customer", (w_id, d_id, c_id))
            order_keys = yield from ctx.index_lookup(
                home_partition, "orders", "by_customer", (w_id, d_id, c_id)
            )
            if not order_keys:
                return
            last_order_key = max(order_keys, key=lambda k: k[2])
            order = yield from ctx.read(home_partition, "orders", last_order_key)
            for ol_number in range(1, order["o_ol_cnt"] + 1):
                key = (w_id, d_id, order["o_id"], ol_number)
                line = yield from ctx.read(home_partition, "order_line", key)
                if line is None:
                    break

        return TransactionSpec(name="order_status", logic=logic, read_only=True)

    # -- Delivery ---------------------------------------------------------------------------------
    def _delivery(self) -> TransactionSpec:
        w_id = self._home_warehouse()
        carrier_id = self.rng.uniform_int(1, 10)
        home_partition = self.partition_id

        def logic(ctx: "TxnContext") -> Generator:
            for d_id in range(1, DISTRICTS_PER_WAREHOUSE + 1):
                pending = yield from ctx.index_lookup(
                    home_partition, "new_order", "by_district", (w_id, d_id)
                )
                if not pending:
                    continue
                oldest = min(pending, key=lambda k: k[2])
                o_id = oldest[2]
                yield from ctx.read(home_partition, "new_order", oldest)
                yield from ctx.delete(home_partition, "new_order", oldest)
                order = yield from ctx.read(home_partition, "orders", (w_id, d_id, o_id))
                yield from ctx.update(
                    home_partition, "orders", (w_id, d_id, o_id), {"o_carrier_id": carrier_id}
                )
                total = 0.0
                for ol_number in range(1, order["o_ol_cnt"] + 1):
                    key = (w_id, d_id, o_id, ol_number)
                    line = yield from ctx.read(home_partition, "order_line", key)
                    total += line["ol_amount"]
                    yield from ctx.update(
                        home_partition, "order_line", key, {"ol_delivery_d": 1}
                    )
                customer_key = (w_id, d_id, order["o_c_id"])
                customer = yield from ctx.read(home_partition, "customer", customer_key)
                yield from ctx.update(
                    home_partition, "customer", customer_key,
                    {
                        "c_balance": customer["c_balance"] + total,
                        "c_delivery_cnt": customer["c_delivery_cnt"] + 1,
                    },
                )

        return TransactionSpec(name="delivery", logic=logic)

    # -- StockLevel (read-only) ---------------------------------------------------------------------
    def _stock_level(self) -> TransactionSpec:
        w_id = self._home_warehouse()
        d_id = self.rng.uniform_int(1, DISTRICTS_PER_WAREHOUSE)
        threshold = self.rng.uniform_int(10, 20)
        home_partition = self.partition_id

        def logic(ctx: "TxnContext") -> Generator:
            district = yield from ctx.read(home_partition, "district", (w_id, d_id))
            next_o_id = district["d_next_o_id"]
            low_stock_items: set[int] = set()
            for o_id in range(max(1, next_o_id - 20), next_o_id):
                order = yield from ctx.read(home_partition, "orders", (w_id, d_id, o_id))
                if order is None:
                    continue
                for ol_number in range(1, min(order["o_ol_cnt"], 5) + 1):
                    line = yield from ctx.read(
                        home_partition, "order_line", (w_id, d_id, o_id, ol_number)
                    )
                    if line is None:
                        continue
                    stock = yield from ctx.read(
                        home_partition, "stock", (w_id, line["ol_i_id"])
                    )
                    if stock["s_quantity"] < threshold:
                        low_stock_items.add(line["ol_i_id"])

        return TransactionSpec(name="stock_level", logic=logic, read_only=True)
