"""Smallbank workload.

A simple banking benchmark (cited in §1 as a workload whose read-set covers
its write-set): every account has a checking and a savings row; transactions
move money between them or across accounts.  Used by the examples and by an
ablation bench for cross-partition transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from ..registry import register_workload
from ..sim.randgen import DeterministicRandom
from ..storage.columnar import TableSchema
from .base import TransactionSpec, TxnSource, Workload

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster
    from ..txn.context import TxnContext

__all__ = ["SmallbankConfig", "SmallbankWorkload"]


@dataclass
class SmallbankConfig:
    accounts_per_partition: int = 20_000
    hot_account_pct: float = 0.25      # fraction of accesses hitting the hot set
    hot_accounts: int = 100
    distributed_pct: float = 0.15      # cross-partition SendPayment transactions
    # Mix (percent): Balance, DepositChecking, TransactSavings, Amalgamate,
    # WriteCheck, SendPayment.
    balance_pct: float = 15.0
    deposit_pct: float = 25.0
    transact_pct: float = 15.0
    amalgamate_pct: float = 15.0
    write_check_pct: float = 15.0
    send_payment_pct: float = 15.0

    def validate(self) -> None:
        if self.accounts_per_partition <= self.hot_accounts:
            raise ValueError("accounts_per_partition must exceed hot_accounts")
        total = (
            self.balance_pct + self.deposit_pct + self.transact_pct
            + self.amalgamate_pct + self.write_check_pct + self.send_payment_pct
        )
        if not 99.0 <= total <= 101.0:
            raise ValueError("transaction mix must sum to ~100")


class _SmallbankSource(TxnSource):
    def __init__(self, workload: "SmallbankWorkload", cluster: "Cluster",
                 partition_id: int, rng: DeterministicRandom):
        self.workload = workload
        self.cluster = cluster
        self.partition_id = partition_id
        self.rng = rng

    def _account(self) -> int:
        config = self.workload.config
        if self.rng.boolean(config.hot_account_pct):
            return self.rng.uniform_int(0, config.hot_accounts - 1)
        return self.rng.uniform_int(config.hot_accounts, config.accounts_per_partition - 1)

    def _other_partition(self) -> int:
        n = self.cluster.config.n_partitions
        if n <= 1:
            return self.partition_id
        other = self.rng.uniform_int(0, n - 2)
        return other + 1 if other >= self.partition_id else other

    def next(self) -> TransactionSpec:
        config = self.workload.config
        w = self.workload
        p = self.partition_id
        a1, a2 = self._account(), self._account()
        while a2 == a1:
            a2 = self._account()
        roll = self.rng.uniform(0.0, 100.0)
        if roll < config.balance_pct:
            return TransactionSpec("sb_balance", w.balance(p, a1), read_only=True)
        if roll < config.balance_pct + config.deposit_pct:
            return TransactionSpec("sb_deposit", w.deposit_checking(p, a1, 1.3))
        if roll < config.balance_pct + config.deposit_pct + config.transact_pct:
            return TransactionSpec("sb_transact", w.transact_savings(p, a1, 20.0))
        if roll < 100.0 - config.write_check_pct - config.send_payment_pct:
            return TransactionSpec("sb_amalgamate", w.amalgamate(p, a1, a2))
        if roll < 100.0 - config.send_payment_pct:
            return TransactionSpec("sb_write_check", w.write_check(p, a1, 5.0))
        dest_partition = (
            self._other_partition()
            if self.rng.boolean(config.distributed_pct)
            else p
        )
        return TransactionSpec("sb_send_payment", w.send_payment(p, a1, dest_partition, a2, 5.0))


@register_workload(
    "smallbank",
    config_cls=SmallbankConfig,
    scale_defaults={"accounts_per_partition": "smallbank_accounts_per_partition"},
    description="checking/savings banking mix with hot accounts",
)
class SmallbankWorkload(Workload):
    name = "smallbank"

    def __init__(self, config: SmallbankConfig | None = None):
        self.config = config or SmallbankConfig()
        self.config.validate()

    #: Single-float schema → columnar tables under storage_backend="auto".
    SCHEMA = TableSchema((("balance", "f"),))

    def load(self, cluster: "Cluster") -> None:
        row = {"balance": 1_000.0}
        for partition_id, server in cluster.servers.items():
            checking = server.store.create_table("checking", schema=self.SCHEMA)
            savings = server.store.create_table("savings", schema=self.SCHEMA)
            for account in range(self.config.accounts_per_partition):
                checking.insert(account, row)
                savings.insert(account, row)

    def make_source(self, cluster: "Cluster", partition_id: int, stream_id: int) -> _SmallbankSource:
        return _SmallbankSource(self, cluster, partition_id, self.rng(cluster, partition_id, stream_id))

    # -- transaction logic ---------------------------------------------------------------
    def balance(self, partition: int, account: int):
        def logic(ctx: "TxnContext") -> Generator:
            yield from ctx.read(partition, "checking", account)
            yield from ctx.read(partition, "savings", account)

        return logic

    def deposit_checking(self, partition: int, account: int, amount: float):
        def logic(ctx: "TxnContext") -> Generator:
            row = yield from ctx.read(partition, "checking", account)
            yield from ctx.update(partition, "checking", account, {"balance": row["balance"] + amount})

        return logic

    def transact_savings(self, partition: int, account: int, amount: float):
        def logic(ctx: "TxnContext") -> Generator:
            row = yield from ctx.read(partition, "savings", account)
            new_balance = row["balance"] + amount
            if new_balance < 0:
                ctx.abort("insufficient savings")
            yield from ctx.update(partition, "savings", account, {"balance": new_balance})

        return logic

    def amalgamate(self, partition: int, account_from: int, account_to: int):
        def logic(ctx: "TxnContext") -> Generator:
            if account_from == account_to:
                return  # moving an account onto itself is a no-op
            savings = yield from ctx.read(partition, "savings", account_from)
            checking = yield from ctx.read(partition, "checking", account_from)
            dest = yield from ctx.read(partition, "checking", account_to)
            total = savings["balance"] + checking["balance"]
            yield from ctx.update(partition, "savings", account_from, {"balance": 0.0})
            yield from ctx.update(partition, "checking", account_from, {"balance": 0.0})
            yield from ctx.update(partition, "checking", account_to, {"balance": dest["balance"] + total})

        return logic

    def write_check(self, partition: int, account: int, amount: float):
        def logic(ctx: "TxnContext") -> Generator:
            savings = yield from ctx.read(partition, "savings", account)
            checking = yield from ctx.read(partition, "checking", account)
            penalty = 1.0 if savings["balance"] + checking["balance"] < amount else 0.0
            yield from ctx.update(
                partition, "checking", account,
                {"balance": checking["balance"] - amount - penalty},
            )

        return logic

    def send_payment(self, src_partition: int, src_account: int,
                     dst_partition: int, dst_account: int, amount: float):
        def logic(ctx: "TxnContext") -> Generator:
            source = yield from ctx.read(src_partition, "checking", src_account)
            if source["balance"] < amount:
                ctx.abort("insufficient checking balance")
            dest = yield from ctx.read(dst_partition, "checking", dst_account)
            yield from ctx.update(
                src_partition, "checking", src_account, {"balance": source["balance"] - amount}
            )
            yield from ctx.update(
                dst_partition, "checking", dst_account, {"balance": dest["balance"] + amount}
            )

        return logic
