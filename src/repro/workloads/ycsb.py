"""YCSB workload (§6.1.2).

Each transaction performs ``ops_per_txn`` (default 10) key accesses drawn from
a Zipf distribution over the home partition's key space.  By default half the
operations are reads and half read-modify-writes (the paper's 50% write
ratio); a configurable fraction of transactions is *distributed*, in which
case ``remote_ops`` of the accesses go to uniformly-chosen remote partitions.
The knobs map one-to-one to the sweeps in §6.3:

* ``zipf_theta``        — contention (Fig. 6),
* ``distributed_pct``   — fraction of distributed transactions (Fig. 7),
* ``write_pct``         — fraction of write operations (Fig. 8),
* ``blind_write_pct``   — fraction of writes issued without a prior read (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from ..registry import register_workload
from ..sim.randgen import DeterministicRandom, ZipfGenerator
from ..storage.columnar import TableSchema
from .base import TransactionSpec, TxnSource, Workload

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster
    from ..txn.context import TxnContext

__all__ = ["YCSBConfig", "YCSBWorkload", "YCSBSource"]

TABLE = "usertable"
FIELDS = 2  # number of payload columns per record

#: Fixed integer schema: lets the partition store pick the array-backed
#: columnar tables (storage_backend="auto"), which is what makes the
#: xlarge/web million-key tiers fit in memory.  Column order matches the
#: loader's insert dict, so snapshots are bit-identical to the dict backend.
SCHEMA = TableSchema(tuple((f"field{i}", "i") for i in range(FIELDS)))


@dataclass
class YCSBConfig:
    """Tunable parameters of the YCSB workload."""

    keys_per_partition: int = 50_000
    ops_per_txn: int = 10
    zipf_theta: float = 0.6
    write_pct: float = 0.5        # fraction of the ops that modify data
    distributed_pct: float = 0.2  # fraction of transactions that are distributed
    remote_ops: int = 2           # remote accesses per distributed transaction
    blind_write_pct: float = 0.0  # fraction of writes issued without a read

    def validate(self) -> None:
        if self.keys_per_partition <= self.ops_per_txn:
            raise ValueError("keys_per_partition must exceed ops_per_txn")
        for name in ("write_pct", "distributed_pct", "blind_write_pct"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if not 0 <= self.remote_ops <= self.ops_per_txn:
            raise ValueError("remote_ops must be within the transaction size")


# Operation kinds; operations are plain (partition, key, kind) tuples — a
# spec is built per transaction attempt stream step, so construction stays
# allocation-lean on the hot path.
_READ = 0
_RMW = 1
_BLIND_WRITE = 2


class YCSBSource(TxnSource):
    """Per-worker transaction stream."""

    def __init__(self, workload: "YCSBWorkload", cluster: "Cluster",
                 partition_id: int, rng: DeterministicRandom):
        self.workload = workload
        self.cluster = cluster
        self.partition_id = partition_id
        self.rng = rng
        self.zipf = ZipfGenerator(
            workload.config.keys_per_partition, workload.config.zipf_theta, rng
        )
        self.n_partitions = cluster.config.n_partitions

    def set_hot_skew(self, theta) -> None:
        # A fresh Zipf table over the same key space, fed by the *same* RNG:
        # the uniform stream keeps its pinned draw order across the shift.
        config = self.workload.config
        target = config.zipf_theta if theta is None else float(theta)
        self.zipf = ZipfGenerator(config.keys_per_partition, target, self.rng)

    def next(self) -> TransactionSpec:
        # The RNG draw sequence below is pinned by the determinism goldens:
        # distributed flag, remote slot draws, then per slot key/kind draws.
        config = self.workload.config
        rng = self.rng
        ops_per_txn = config.ops_per_txn
        n_partitions = self.n_partitions
        home = self.partition_id
        distributed = n_partitions > 1 and rng.boolean(config.distributed_pct)
        remote_slots: set[int] = set()
        if distributed:
            want = min(config.remote_ops, ops_per_txn)
            while len(remote_slots) < want:
                remote_slots.add(rng.uniform_int(0, ops_per_txn - 1))
        operations: list[tuple[int, int, int]] = []
        chosen: set[tuple[int, int]] = set()
        zipf_next = self.zipf.next
        boolean = rng.boolean
        write_pct = config.write_pct
        blind_write_pct = config.blind_write_pct
        read_only = True
        for slot in range(ops_per_txn):
            if slot in remote_slots:
                partition = rng.uniform_int(0, n_partitions - 2)
                if partition >= home:
                    partition += 1
            else:
                partition = home
            key = zipf_next()
            while (partition, key) in chosen:
                key = zipf_next()
            chosen.add((partition, key))
            if boolean(write_pct):
                kind = _BLIND_WRITE if boolean(blind_write_pct) else _RMW
                read_only = False
            else:
                kind = _READ
            operations.append((partition, key, kind))
        return TransactionSpec(
            name="ycsb",
            logic=self.workload.make_logic(operations),
            read_only=read_only,
            metadata={"distributed": distributed},
        )


@register_workload(
    "ycsb",
    config_cls=YCSBConfig,
    scale_defaults={"keys_per_partition": "ycsb_keys_per_partition"},
    description="Zipf key-value mix; knobs map to the sweeps of §6.3",
)
class YCSBWorkload(Workload):
    name = "ycsb"

    def __init__(self, config: YCSBConfig | None = None):
        self.config = config or YCSBConfig()
        self.config.validate()

    # -- loading ------------------------------------------------------------------
    def load(self, cluster: "Cluster") -> None:
        row = {f"field{i}": 0 for i in range(FIELDS)}
        for partition_id, server in cluster.servers.items():
            table = server.store.create_table(TABLE, schema=SCHEMA)
            insert = table.insert
            for key in range(self.config.keys_per_partition):
                insert(key, row)

    # -- transaction streams --------------------------------------------------------
    def make_source(self, cluster: "Cluster", partition_id: int, stream_id: int) -> YCSBSource:
        return YCSBSource(self, cluster, partition_id, self.rng(cluster, partition_id, stream_id))

    # -- transaction logic -------------------------------------------------------------
    def make_logic(self, operations: list[tuple[int, int, int]]):
        def logic(ctx: "TxnContext") -> Generator:
            for partition, key, kind in operations:
                if kind == _READ:
                    yield from ctx.read(partition, TABLE, key)
                elif kind == _RMW:
                    value = yield from ctx.read(partition, TABLE, key)
                    yield from ctx.update(
                        partition, TABLE, key, {"field0": value.get("field0", 0) + 1}
                    )
                else:  # blind write: no prior read
                    yield from ctx.update(partition, TABLE, key, {"field1": 1})

        return logic
