"""YCSB workload (§6.1.2).

Each transaction performs ``ops_per_txn`` (default 10) key accesses drawn from
a Zipf distribution over the home partition's key space.  By default half the
operations are reads and half read-modify-writes (the paper's 50% write
ratio); a configurable fraction of transactions is *distributed*, in which
case ``remote_ops`` of the accesses go to uniformly-chosen remote partitions.
The knobs map one-to-one to the sweeps in §6.3:

* ``zipf_theta``        — contention (Fig. 6),
* ``distributed_pct``   — fraction of distributed transactions (Fig. 7),
* ``write_pct``         — fraction of write operations (Fig. 8),
* ``blind_write_pct``   — fraction of writes issued without a prior read (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from ..registry import register_workload
from ..sim.randgen import DeterministicRandom, ZipfGenerator
from .base import TransactionSpec, TxnSource, Workload

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster
    from ..txn.context import TxnContext

__all__ = ["YCSBConfig", "YCSBWorkload", "YCSBSource"]

TABLE = "usertable"
FIELDS = 2  # number of payload columns per record


@dataclass
class YCSBConfig:
    """Tunable parameters of the YCSB workload."""

    keys_per_partition: int = 50_000
    ops_per_txn: int = 10
    zipf_theta: float = 0.6
    write_pct: float = 0.5        # fraction of the ops that modify data
    distributed_pct: float = 0.2  # fraction of transactions that are distributed
    remote_ops: int = 2           # remote accesses per distributed transaction
    blind_write_pct: float = 0.0  # fraction of writes issued without a read

    def validate(self) -> None:
        if self.keys_per_partition <= self.ops_per_txn:
            raise ValueError("keys_per_partition must exceed ops_per_txn")
        for name in ("write_pct", "distributed_pct", "blind_write_pct"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if not 0 <= self.remote_ops <= self.ops_per_txn:
            raise ValueError("remote_ops must be within the transaction size")


@dataclass(slots=True)
class _Operation:
    partition: int
    key: int
    kind: str  # "read" | "rmw" | "blind_write"


class YCSBSource(TxnSource):
    """Per-worker transaction stream."""

    def __init__(self, workload: "YCSBWorkload", cluster: "Cluster",
                 partition_id: int, rng: DeterministicRandom):
        self.workload = workload
        self.cluster = cluster
        self.partition_id = partition_id
        self.rng = rng
        self.zipf = ZipfGenerator(
            workload.config.keys_per_partition, workload.config.zipf_theta, rng
        )
        self.n_partitions = cluster.config.n_partitions

    def next(self) -> TransactionSpec:
        config = self.workload.config
        distributed = (
            self.n_partitions > 1 and self.rng.boolean(config.distributed_pct)
        )
        remote_slots: set[int] = set()
        if distributed:
            while len(remote_slots) < min(config.remote_ops, config.ops_per_txn):
                remote_slots.add(self.rng.uniform_int(0, config.ops_per_txn - 1))
        operations: list[_Operation] = []
        chosen: set[tuple[int, int]] = set()
        for slot in range(config.ops_per_txn):
            if slot in remote_slots:
                partition = self.rng.uniform_int(0, self.n_partitions - 2)
                if partition >= self.partition_id:
                    partition += 1
            else:
                partition = self.partition_id
            key = self.zipf.next()
            while (partition, key) in chosen:
                key = self.zipf.next()
            chosen.add((partition, key))
            if self.rng.boolean(config.write_pct):
                kind = "blind_write" if self.rng.boolean(config.blind_write_pct) else "rmw"
            else:
                kind = "read"
            operations.append(_Operation(partition=partition, key=key, kind=kind))
        read_only = all(op.kind == "read" for op in operations)
        return TransactionSpec(
            name="ycsb",
            logic=self.workload.make_logic(operations),
            read_only=read_only,
            metadata={"distributed": distributed},
        )


@register_workload(
    "ycsb",
    config_cls=YCSBConfig,
    scale_defaults={"keys_per_partition": "ycsb_keys_per_partition"},
    description="Zipf key-value mix; knobs map to the sweeps of §6.3",
)
class YCSBWorkload(Workload):
    name = "ycsb"

    def __init__(self, config: YCSBConfig | None = None):
        self.config = config or YCSBConfig()
        self.config.validate()

    # -- loading ------------------------------------------------------------------
    def load(self, cluster: "Cluster") -> None:
        for partition_id, server in cluster.servers.items():
            table = server.store.create_table(TABLE)
            for key in range(self.config.keys_per_partition):
                table.insert(key, {f"field{i}": 0 for i in range(FIELDS)})

    # -- transaction streams --------------------------------------------------------
    def make_source(self, cluster: "Cluster", partition_id: int, stream_id: int) -> YCSBSource:
        return YCSBSource(self, cluster, partition_id, self.rng(cluster, partition_id, stream_id))

    # -- transaction logic -------------------------------------------------------------
    def make_logic(self, operations: list[_Operation]):
        def logic(ctx: "TxnContext") -> Generator:
            for op in operations:
                if op.kind == "read":
                    yield from ctx.read(op.partition, TABLE, op.key)
                elif op.kind == "rmw":
                    value = yield from ctx.read(op.partition, TABLE, op.key)
                    yield from ctx.update(
                        op.partition, TABLE, op.key, {"field0": value.get("field0", 0) + 1}
                    )
                else:  # blind write: no prior read
                    yield from ctx.update(op.partition, TABLE, op.key, {"field1": 1})

        return logic
